"""Setuptools configuration.

There is no ``pyproject.toml``: keeping the whole configuration here lets
fully offline environments (no ``wheel`` package available, so PEP 660
editable installs fail) still do ``python setup.py develop`` or
``pip install -e . --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Metropolis-Hastings Algorithms for Estimating "
        "Betweenness Centrality' (EDBT 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # numpy powers the CSR traversal backend (repro.graphs.csr and the
    # *_csr kernels); the library degrades to the pure-Python dict backend
    # when it is missing, but installs declare it so the fast path is the
    # default everywhere.
    install_requires=["numpy>=1.22"],
    # scipy upgrades the batched multi-source engine to sparse-matmul
    # sweeps (repro.shortest_paths.batch); without it the pure-numpy wave
    # kernels serve the same API.  numba unlocks the compiled kernel rung
    # (repro.shortest_paths.compiled) — jitted twins of the BFS wave and
    # dependency accumulation that are bit-identical to the numpy rung;
    # without it kernel="auto" resolves to the numpy kernels.
    extras_require={
        "fast": ["scipy>=1.8"],
        "compiled": ["numba"],
    },
)
