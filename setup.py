"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that fully offline environments (no ``wheel`` package available, so PEP 660
editable installs fail) can still do ``python setup.py develop`` or
``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
