"""E4 — µ(r) and the Equation 14 sample bound vs. vertex position (Figure 2 analogue).

Theorem 2: µ(r) is a constant when r is a balanced vertex separator.  The
experiment sweeps growing graphs from three structured families and one
random family, computing the exact µ(r) and the induced chain length for

* a balanced separator vertex (barbell bridge, star centre, caveman
  connector, highest-betweenness vertex of a scale-free graph), and
* an unbalanced/peripheral vertex with positive betweenness,

showing the first staying flat and the second growing with the graph.
"""

from __future__ import annotations

import pytest

from harness import bench_seed, emit_table

from repro.graphs import barabasi_albert_graph, barbell_graph, path_graph, star_graph
from repro.graphs.components import component_size_profile, is_balanced_separator
from repro.mcmc import mu_statistics, required_samples

EPSILON = 0.05
DELTA = 0.1


def _families():
    """Yield (family, size-label, graph, separator vertex, peripheral vertex)."""
    for clique in (5, 10, 20, 40):
        graph = barbell_graph(clique, 2)
        yield "barbell", f"clique={clique}", graph, clique, clique - 1
    for leaves in (10, 20, 40, 80):
        graph = star_graph(leaves)
        # the star has no second positive-betweenness vertex; reuse the centre
        yield "star", f"leaves={leaves}", graph, 0, 0
    for n in (11, 21, 41, 81):
        graph = path_graph(n)
        yield "path", f"n={n}", graph, n // 2, 1
    for n in (30, 60, 120):
        graph = barabasi_albert_graph(n, 2, seed=bench_seed())
        from repro.datasets import positive_betweenness_vertices

        positive = positive_betweenness_vertices(graph)
        ranked = sorted(positive, key=positive.get, reverse=True)
        yield "scale-free", f"n={n}", graph, ranked[0], ranked[-1]


def _experiment_rows():
    rows = []
    for family, size_label, graph, separator, peripheral in _families():
        for role, vertex in (("separator/top", separator), ("peripheral", peripheral)):
            if role == "peripheral" and vertex == separator:
                continue
            stats = mu_statistics(graph, vertex)
            profile = component_size_profile(graph, vertex)
            rows.append(
                {
                    "family": family,
                    "size": size_label,
                    "n": graph.number_of_vertices(),
                    "role": role,
                    "balanced_separator": is_balanced_separator(graph, vertex),
                    "components_without_r": int(profile["num_components"]),
                    "mu": stats.mu,
                    "chain_length_eq14": required_samples(EPSILON, DELTA, stats.mu),
                }
            )
    return rows


@pytest.mark.benchmark(group="e4")
def test_e4_mu_scaling(benchmark):
    """Regenerate the E4 table and time one exact µ(r) computation."""
    rows = _experiment_rows()
    emit_table(
        "E4",
        f"mu(r) and Equation 14 chain length (epsilon={EPSILON}, delta={DELTA})",
        rows,
        [
            "family",
            "size",
            "n",
            "role",
            "balanced_separator",
            "components_without_r",
            "mu",
            "chain_length_eq14",
        ],
    )

    graph = barbell_graph(20, 2)
    benchmark.pedantic(lambda: mu_statistics(graph, 20), rounds=3, iterations=1)
    benchmark.extra_info["rows"] = len(rows)

    # Theorem 2 sanity: the barbell bridge keeps mu below 1.5 at every size,
    # while the peripheral path vertex exceeds it at the largest size.
    barbell_rows = [r for r in rows if r["family"] == "barbell" and r["role"] == "separator/top"]
    assert all(row["mu"] < 1.5 for row in barbell_rows)
    path_peripheral = [r for r in rows if r["family"] == "path" and r["role"] == "peripheral"]
    assert path_peripheral[-1]["mu"] > 10.0
