"""E2 — runtime per sample of every estimator (Table 2 analogue).

All estimators share the same asymptotic per-sample cost (one SPD
construction, O(|E|) for unweighted graphs); this experiment measures the
constants in this pure-Python implementation.  For the MH sampler two
numbers matter: the cost per chain iteration *with* the dependency-vector
cache (revisits are free) and without it — the quantity the per-sample
O(|E|) claim refers to.
"""

from __future__ import annotations

import pytest

from harness import BENCH_DATASETS, bench_seed, bench_size, emit_table

from repro.datasets import load_dataset, pick_targets
from repro.mcmc import SingleSpaceMHSampler
from repro.samplers import (
    DistanceBasedSampler,
    KadabraSampler,
    RiondatoKornaropoulosSampler,
    UniformSourceSampler,
)

SAMPLES = 100


def _estimators():
    return {
        "mh (cached)": SingleSpaceMHSampler(),
        "mh (no cache)": SingleSpaceMHSampler(cache_size=0),
        "uniform-source": UniformSourceSampler(),
        "distance-based": DistanceBasedSampler(),
        "rk-paths": RiondatoKornaropoulosSampler(),
        "kadabra": KadabraSampler(),
    }


def _experiment_rows():
    rows = []
    for dataset in BENCH_DATASETS:
        graph = load_dataset(dataset, size=bench_size(), seed=bench_seed())
        target = pick_targets(graph, seed=bench_seed())["high"]
        for name, estimator in _estimators().items():
            result = estimator.estimate(graph, target, SAMPLES, seed=bench_seed())
            per_sample = result.elapsed_seconds / max(result.samples, 1)
            rows.append(
                {
                    "dataset": dataset,
                    "vertices": graph.number_of_vertices(),
                    "edges": graph.number_of_edges(),
                    "estimator": name,
                    "samples": result.samples,
                    "total_seconds": result.elapsed_seconds,
                    "seconds_per_sample": per_sample,
                }
            )
    return rows


@pytest.mark.benchmark(group="e2")
def test_e2_runtime_per_sample(benchmark):
    """Regenerate the E2 table and time the uncached per-sample cost."""
    rows = _experiment_rows()
    emit_table(
        "E2",
        "wall-clock cost per sample of each estimator",
        rows,
        [
            "dataset",
            "vertices",
            "edges",
            "estimator",
            "samples",
            "total_seconds",
            "seconds_per_sample",
        ],
    )

    graph = load_dataset("collaboration", size=bench_size(), seed=bench_seed())
    target = pick_targets(graph, seed=bench_seed())["high"]
    sampler = SingleSpaceMHSampler(cache_size=0)
    benchmark.pedantic(
        lambda: sampler.estimate(graph, target, 20, seed=bench_seed()),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["rows"] = len(rows)
    assert len(rows) == len(BENCH_DATASETS) * len(_estimators())
