"""E3 — empirical (ε, δ) coverage of Theorem 1 (Figure 1 analogue).

Theorem 1 bounds ``P[|BC_hat(r) - BC(r)| > ε]`` by the Equation 12
expression.  The experiment runs many independent chains, measures the
empirical failure rate at a grid of ε values and compares it against the
bound.  Both MH read-outs are measured:

* ``chain``   — the paper's Equation 7 estimator.  Because its limit is the
  π-weighted dependency mean, the empirical failure rate stays at 1 for any
  ε smaller than that asymptotic bias, which is where the reproduction
  deviates from the claimed bound (see EXPERIMENTS.md).
* ``proposal`` — the corrected unbiased read-out, whose error does satisfy
  the Hoeffding-style bound comfortably.

Targets are balanced separator vertices (barbell bridge, caveman connector),
the regime where the paper argues µ(r) is constant.
"""

from __future__ import annotations

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.analysis import coverage_curve
from repro.datasets import load_dataset, pick_targets
from repro.exact import betweenness_of_vertex
from repro.mcmc import SingleSpaceMHSampler, mcmc_error_probability, mu_of_vertex

DATASETS = ("barbell", "caveman")
CHAIN_LENGTH = 200
RUNS = 25
EPSILON_FRACTIONS = (0.05, 0.1, 0.2, 0.4)  # relative to the exact value


def _experiment_rows():
    rows = []
    for dataset in DATASETS:
        graph = load_dataset(dataset, size=bench_size(), seed=bench_seed())
        target = pick_targets(graph, seed=bench_seed())["high"]
        exact = betweenness_of_vertex(graph, target)
        mu = mu_of_vertex(graph, target)
        epsilons = [fraction * exact for fraction in EPSILON_FRACTIONS]
        for read_out in ("chain", "proposal"):
            sampler = SingleSpaceMHSampler(estimator=read_out)
            results = coverage_curve(
                lambda rng: sampler.estimate(graph, target, CHAIN_LENGTH, seed=rng).estimate,
                exact,
                epsilons=epsilons,
                runs=RUNS,
                seed=bench_seed(),
                bound_for_epsilon=lambda eps: mcmc_error_probability(CHAIN_LENGTH, eps, mu),
            )
            for fraction, result in zip(EPSILON_FRACTIONS, results):
                rows.append(
                    {
                        "dataset": dataset,
                        "read_out": read_out,
                        "mu": mu,
                        "epsilon/BC": fraction,
                        "epsilon": result.epsilon,
                        "empirical_failure": result.empirical_failure_rate,
                        "theorem1_bound": result.theoretical_bound,
                        "within_bound": result.within_bound(),
                    }
                )
    return rows


@pytest.mark.benchmark(group="e3")
def test_e3_epsilon_delta_coverage(benchmark):
    """Regenerate the E3 coverage table and time one coverage run."""
    rows = _experiment_rows()
    emit_table(
        "E3",
        f"empirical failure rate vs. Theorem 1 bound (T={CHAIN_LENGTH}, {RUNS} runs)",
        rows,
        [
            "dataset",
            "read_out",
            "mu",
            "epsilon/BC",
            "epsilon",
            "empirical_failure",
            "theorem1_bound",
            "within_bound",
        ],
    )

    graph = load_dataset("barbell", size=bench_size(), seed=bench_seed())
    target = pick_targets(graph, seed=bench_seed())["high"]
    sampler = SingleSpaceMHSampler()
    benchmark.pedantic(
        lambda: sampler.estimate(graph, target, CHAIN_LENGTH, seed=bench_seed()),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["rows"] = len(rows)
    # The corrected read-out must respect the bound everywhere.
    proposal_rows = [row for row in rows if row["read_out"] == "proposal"]
    assert all(row["within_bound"] for row in proposal_rows)
