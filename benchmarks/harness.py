"""Shared helpers for the benchmark harness.

Every ``bench_e*.py`` module reproduces one experiment from DESIGN.md
(Section 2, "Experiment index").  The modules use the ``benchmark`` fixture of
pytest-benchmark to time one representative unit of work, and additionally
emit the full experiment table — the rows a reader would compare against the
paper — both to stdout and to ``benchmarks/results/<experiment>.txt`` so the
numbers survive the run.

Environment knobs
-----------------
``REPRO_BENCH_SIZE``
    Dataset size used by the benchmarks: ``tiny`` (default, seconds),
    ``small`` (minutes) or ``medium`` (pure-Python: be patient).
``REPRO_BENCH_SEED``
    Base seed for every stochastic component (default 2019, the venue year).
``REPRO_BENCH_BACKEND``
    Traversal backend the benchmarks run (and record in their tables):
    ``auto`` (default; CSR kernels when numpy is importable), ``dict`` or
    ``csr``.  Importing this module exports the value as ``REPRO_BACKEND``,
    which every ``backend="auto"`` call site in the library resolves
    through — so the knob steers what the ``bench_e*`` estimators actually
    run, and the *resolved* backend stamped in every emitted table is the
    truth.  That stamp is what lets BENCH_* trajectories across commits
    attribute speedups to the backend switch rather than to dataset or
    seed drift.
``REPRO_BENCH_JOBS``
    Worker processes for the sharded execution engine (default ``1``,
    sequential).  Exported as ``REPRO_JOBS`` so every estimator constructed
    inside the ``bench_e*`` modules runs under the requested parallelism;
    the value is stamped as a ``jobs:`` line in every emitted table, next
    to the backend, for the same trajectory-attribution reason.
``REPRO_BENCH_SHARED_GRAPH``
    Whether CSR snapshots ship to workers as zero-copy shared-memory
    handles (default ``0``, pickled shipping).  Exported as
    ``REPRO_SHARED_GRAPH`` so every planned estimator in the ``bench_e*``
    modules honours it, and stamped as a ``shared_graph:`` line in every
    emitted table.
``REPRO_BENCH_KERNEL``
    CSR kernel rung the benchmarks run: ``auto`` (default; the compiled
    numba twins when numba is importable), ``csr`` (numpy) or
    ``compiled``.  Exported as ``REPRO_KERNEL`` so every ``kernel="auto"``
    call site resolves it, and the *resolved* rung is stamped as a
    ``kernel:`` line in every emitted table — the rungs are bit-identical,
    so the stamp attributes wall-clock only, never result drift.
``REPRO_BENCH_KERNEL_THREADS``
    Thread count of the compiled jit-parallel batch kernels (default ``1``,
    the sequential kernels).  Exported as ``REPRO_KERNEL_THREADS`` so every
    plan the other knobs engage fills its ``kernel_threads`` field, and
    stamped as a ``kernel_threads:`` line in every emitted table — the
    parallel kernels accumulate per-source rows in source order at any
    thread count, so the stamp attributes wall-clock only, never result
    drift.
``REPRO_BENCH_INVALIDATION``
    Mutation invalidation scoping the benchmarks run under: ``delta``
    (default; journal-proved affected-region retention) or ``full``
    (destroy-everything on every mutation).  Exported as
    ``REPRO_INVALIDATION`` and stamped as an ``invalidation:`` line in
    every emitted table — the modes are result-identical by contract, so
    the stamp attributes warm-start wall-clock, never result drift.
(``n_chains`` is deliberately *not* an env knob: it is an explicit API
argument, and the multi-chain benchmark — ``bench_e12_multichain.py`` —
sweeps chain counts itself, recording the count plus the cross-chain
diagnostics as columns of every row.)
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Sequence

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Dataset families exercised by the cross-dataset experiments (one per
#: topology family keeps the tables readable and the runtime bounded).
BENCH_DATASETS = ("collaboration", "email", "social", "road")


def bench_size() -> str:
    """Return the dataset size tier selected through ``REPRO_BENCH_SIZE``."""
    return os.environ.get("REPRO_BENCH_SIZE", "tiny")


def bench_seed() -> int:
    """Return the base seed selected through ``REPRO_BENCH_SEED``."""
    return int(os.environ.get("REPRO_BENCH_SEED", "2019"))


def bench_backend() -> str:
    """Return the requested traversal backend (``REPRO_BENCH_BACKEND``)."""
    return os.environ.get("REPRO_BENCH_BACKEND", "auto")


def bench_jobs() -> int:
    """Return the worker-process count selected through ``REPRO_BENCH_JOBS``."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def bench_kernel() -> str:
    """Return the requested CSR kernel rung (``REPRO_BENCH_KERNEL``)."""
    return os.environ.get("REPRO_BENCH_KERNEL", "auto")


def bench_kernel_threads() -> int:
    """Return the compiled-kernel thread count (``REPRO_BENCH_KERNEL_THREADS``)."""
    return int(os.environ.get("REPRO_BENCH_KERNEL_THREADS", "1"))


def bench_invalidation() -> str:
    """Return the requested invalidation mode (``REPRO_BENCH_INVALIDATION``)."""
    return os.environ.get("REPRO_BENCH_INVALIDATION", "delta")


def bench_shared_graph() -> bool:
    """Return whether ``REPRO_BENCH_SHARED_GRAPH`` asks for shared snapshots."""
    raw = os.environ.get("REPRO_BENCH_SHARED_GRAPH", "0").strip().lower()
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off", ""):
        return False
    raise ValueError(
        f"REPRO_BENCH_SHARED_GRAPH must be a boolean flag (0/1), got {raw!r}"
    )


# Export the bench knob as the library-wide "auto" override so the
# estimators constructed inside the bench_e* modules (which all default to
# backend="auto") genuinely run the requested backend.  Validated here so a
# typo fails at import naming the variable the user actually set.
if bench_backend() != "auto":
    if bench_backend() not in ("dict", "csr"):
        raise ValueError(
            f"REPRO_BENCH_BACKEND must be 'auto', 'dict' or 'csr', "
            f"got {bench_backend()!r}"
        )
    os.environ["REPRO_BACKEND"] = bench_backend()

# Same export for the parallelism knob: REPRO_JOBS engages the sharded
# execution engine at every call site that accepts an ExecutionPlan.
if bench_jobs() != 1:
    if bench_jobs() < 1:
        raise ValueError(f"REPRO_BENCH_JOBS must be a positive integer, got {bench_jobs()!r}")
    os.environ["REPRO_JOBS"] = str(bench_jobs())

# And for the snapshot-shipping knob: REPRO_SHARED_GRAPH fills the
# shared_graph field of every plan the other knobs engage (it never engages
# the engine by itself — see repro.execution.plan.resolve_shared_graph).
if bench_shared_graph():
    os.environ["REPRO_SHARED_GRAPH"] = "1"

# And for the kernel rung: REPRO_KERNEL steers every kernel="auto" call
# site through repro.graphs.csr.resolve_kernel (requesting "compiled"
# without numba warn-and-falls-back to the numpy rung, results unchanged).
if bench_kernel() != "auto":
    if bench_kernel() not in ("csr", "compiled"):
        raise ValueError(
            f"REPRO_BENCH_KERNEL must be 'auto', 'csr' or 'compiled', "
            f"got {bench_kernel()!r}"
        )
    os.environ["REPRO_KERNEL"] = bench_kernel()

# And for the kernel-thread count: REPRO_KERNEL_THREADS fills the
# kernel_threads field of every plan the other knobs engage (like
# REPRO_SHARED_GRAPH, it never engages the engine by itself — see
# repro.execution.plan.resolve_kernel_threads).
if bench_kernel_threads() != 1:
    if bench_kernel_threads() < 1:
        raise ValueError(
            f"REPRO_BENCH_KERNEL_THREADS must be a positive integer, "
            f"got {bench_kernel_threads()!r}"
        )
    os.environ["REPRO_KERNEL_THREADS"] = str(bench_kernel_threads())

# And for the invalidation mode: REPRO_INVALIDATION steers how every
# session scopes mutation invalidation (repro.incremental
# .resolve_invalidation); both modes answer identically, only warm-start
# cost differs.
if bench_invalidation() != "delta":
    if bench_invalidation() != "full":
        raise ValueError(
            f"REPRO_BENCH_INVALIDATION must be 'delta' or 'full', "
            f"got {bench_invalidation()!r}"
        )
    os.environ["REPRO_INVALIDATION"] = bench_invalidation()


def resolved_bench_backend() -> str:
    """Return the backend the benchmarks actually run (``dict`` or ``csr``)."""
    from repro.graphs.csr import resolve_backend

    return resolve_backend(bench_backend())


def resolved_bench_kernel() -> str:
    """Return the kernel rung the benchmarks actually run (``csr`` or ``compiled``)."""
    from repro.execution.stamp import resolve_kernel_quiet

    # Quiet: the fallback warning is already the bench's explicit receipt
    # (the kernel: stamp); no need to repeat it once per emitted table.
    return resolve_kernel_quiet(bench_kernel())


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render a list of row-dictionaries as a fixed-width text table."""
    widths = {
        column: max(len(column), *(len(_fmt(row.get(column))) for row in rows)) if rows else len(column)
        for column in columns
    }
    lines = ["  ".join(column.ljust(widths[column]) for column in columns)]
    lines.append("  ".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.5f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def emit_table(
    experiment: str,
    title: str,
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str],
) -> str:
    """Print the experiment table and persist it under ``benchmarks/results/``.

    ``backend: <dict|csr>``, ``jobs: <n>``, ``shared_graph: <bool>``,
    ``kernel: <csr|compiled>``, ``kernel_threads: <n>`` and
    ``invalidation: <delta|full>`` lines are stamped under the title so
    every stored result records which traversal backend, degree of
    parallelism, snapshot-shipping mode, kernel rung, kernel-thread count
    and invalidation scoping produced it.
    """
    from repro.execution.stamp import format_stamp_lines

    table = format_table(rows, columns)
    stamp = format_stamp_lines(
        {
            "backend": resolved_bench_backend(),
            "jobs": bench_jobs(),
            "shared_graph": bench_shared_graph(),
            "kernel": resolved_bench_kernel(),
            "kernel_threads": bench_kernel_threads(),
            "invalidation": bench_invalidation(),
        }
    )
    text = (
        f"{experiment}: {title}\n"
        f"{'=' * (len(experiment) + 2 + len(title))}\n"
        f"{stamp}\n"
        f"{table}\n"
    )
    print("\n" + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{experiment.lower()}.txt").write_text(text, encoding="utf-8")
    return text
