"""Shared helpers for the benchmark harness.

Every ``bench_e*.py`` module reproduces one experiment from DESIGN.md
(Section 2, "Experiment index").  The modules use the ``benchmark`` fixture of
pytest-benchmark to time one representative unit of work, and additionally
emit the full experiment table — the rows a reader would compare against the
paper — both to stdout and to ``benchmarks/results/<experiment>.txt`` so the
numbers survive the run.

Environment knobs
-----------------
``REPRO_BENCH_SIZE``
    Dataset size used by the benchmarks: ``tiny`` (default, seconds),
    ``small`` (minutes) or ``medium`` (pure-Python: be patient).
``REPRO_BENCH_SEED``
    Base seed for every stochastic component (default 2019, the venue year).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Sequence

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Dataset families exercised by the cross-dataset experiments (one per
#: topology family keeps the tables readable and the runtime bounded).
BENCH_DATASETS = ("collaboration", "email", "social", "road")


def bench_size() -> str:
    """Return the dataset size tier selected through ``REPRO_BENCH_SIZE``."""
    return os.environ.get("REPRO_BENCH_SIZE", "tiny")


def bench_seed() -> int:
    """Return the base seed selected through ``REPRO_BENCH_SEED``."""
    return int(os.environ.get("REPRO_BENCH_SEED", "2019"))


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render a list of row-dictionaries as a fixed-width text table."""
    widths = {
        column: max(len(column), *(len(_fmt(row.get(column))) for row in rows)) if rows else len(column)
        for column in columns
    }
    lines = ["  ".join(column.ljust(widths[column]) for column in columns)]
    lines.append("  ".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.5f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def emit_table(
    experiment: str,
    title: str,
    rows: Sequence[Dict[str, object]],
    columns: Sequence[str],
) -> str:
    """Print the experiment table and persist it under ``benchmarks/results/``."""
    table = format_table(rows, columns)
    text = f"{experiment}: {title}\n{'=' * (len(experiment) + 2 + len(title))}\n{table}\n"
    print("\n" + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{experiment.lower()}.txt").write_text(text, encoding="utf-8")
    return text
