"""E8 — ablations of the design choices discussed in DESIGN.md.

Four knobs of the single-space sampler are ablated on one scale-free and one
community dataset:

* proposal distribution: uniform (paper) vs. degree-proportional vs.
  random-walk;
* estimator read-out: Equation 7 chain average vs. accepted-only vs.
  corrected proposal average;
* burn-in: 0 (paper: not needed) vs. 25% of the chain;
* dependency-vector caching: enabled vs. disabled (number of Brandes passes
  actually performed).
"""

from __future__ import annotations

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.analysis import summarize_runs
from repro.datasets import load_dataset, pick_targets
from repro.exact import betweenness_of_vertex
from repro.mcmc import SingleSpaceMHSampler

DATASETS = ("collaboration", "social")
CHAIN_LENGTH = 300
REPETITIONS = 3

CONFIGURATIONS = {
    "paper (uniform, eq7, no burn-in)": {},
    "proposal=degree": {"proposal": "degree"},
    "proposal=random-walk": {"proposal": "random-walk"},
    "estimator=accepted": {"estimator": "accepted"},
    "estimator=proposal (unbiased)": {"estimator": "proposal"},
    "burn-in=25%": {"burn_in": CHAIN_LENGTH // 4},
    "cache disabled": {"cache_size": 0},
}


def _experiment_rows():
    rows = []
    for dataset in DATASETS:
        graph = load_dataset(dataset, size=bench_size(), seed=bench_seed())
        target = pick_targets(graph, seed=bench_seed())["high"]
        exact = betweenness_of_vertex(graph, target)
        for label, options in CONFIGURATIONS.items():
            sampler = SingleSpaceMHSampler(**options)
            errors = []
            evaluations = []
            elapsed = []
            for repetition in range(REPETITIONS):
                result = sampler.estimate(
                    graph, target, CHAIN_LENGTH, seed=bench_seed() + repetition
                )
                errors.append(abs(result.estimate - exact))
                evaluations.append(result.diagnostics["evaluations"])
                elapsed.append(result.elapsed_seconds)
            rows.append(
                {
                    "dataset": dataset,
                    "configuration": label,
                    "chain_length": CHAIN_LENGTH,
                    "mean_error": summarize_runs(errors)["mean"],
                    "max_error": summarize_runs(errors)["max"],
                    "brandes_passes": sum(evaluations) / len(evaluations),
                    "seconds": sum(elapsed) / len(elapsed),
                }
            )
    return rows


@pytest.mark.benchmark(group="e8")
def test_e8_ablations(benchmark):
    """Regenerate the E8 ablation table and time the paper configuration."""
    rows = _experiment_rows()
    emit_table(
        "E8",
        "single-space sampler ablations",
        rows,
        [
            "dataset",
            "configuration",
            "chain_length",
            "mean_error",
            "max_error",
            "brandes_passes",
            "seconds",
        ],
    )

    graph = load_dataset("collaboration", size=bench_size(), seed=bench_seed())
    target = pick_targets(graph, seed=bench_seed())["high"]
    sampler = SingleSpaceMHSampler()
    benchmark.pedantic(
        lambda: sampler.estimate(graph, target, CHAIN_LENGTH, seed=bench_seed()),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["rows"] = len(rows)

    # Caching must not change the estimate, only the number of Brandes passes.
    by_config = {(row["dataset"], row["configuration"]): row for row in rows}
    for dataset in DATASETS:
        cached = by_config[(dataset, "paper (uniform, eq7, no burn-in)")]
        uncached = by_config[(dataset, "cache disabled")]
        assert uncached["brandes_passes"] >= cached["brandes_passes"]
        assert abs(cached["mean_error"] - uncached["mean_error"]) < 1e-9
