"""E10 — dict vs CSR backend micro-benchmark (the PR-level speedup receipt).

Times the two traversal backends on the two operations every estimator in
the library is built from:

* one ``bfs_spd`` construction (the per-sample cost of Section 2.1), and
* a Brandes sweep (SPD + dependency accumulation per source — the exact
  algorithm and the uniform-source baseline are straight loops over this).

The reference configuration is a 2000-vertex Barabási–Albert graph
(``m = 3``); the table reports per-operation wall-clock for both backends
and the speedup ratio.  The expectation this benchmark guards is
**CSR Brandes >= 3x faster than dict** on that graph.

Run directly (``python benchmarks/bench_e10_backend.py``) or through pytest
with the other ``bench_e*`` modules.
"""

from __future__ import annotations

import time

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.graphs import barabasi_albert_graph
from repro.graphs.csr import np
from repro.shortest_paths import (
    accumulate_dependencies,
    accumulate_dependencies_csr,
    bfs_spd,
    bfs_spd_csr,
)

#: Vertices of the reference Barabási–Albert graph.
GRAPH_SIZE = 2000
#: Attachment parameter of the reference graph.
BA_M = 3
#: Sources timed per backend; ``tiny`` keeps the dict side affordable while
#: still averaging over enough BFS shapes to be stable.
SOURCES = {"tiny": 150, "small": 600, "medium": GRAPH_SIZE}


def _num_sources() -> int:
    return SOURCES.get(bench_size(), SOURCES["tiny"])


def _time_per_source(fn, sources) -> float:
    start = time.perf_counter()
    for s in sources:
        fn(s)
    return (time.perf_counter() - start) / max(len(sources), 1)


def _experiment_rows():
    graph = barabasi_albert_graph(GRAPH_SIZE, BA_M, seed=bench_seed())
    csr = graph.csr()
    vertices = graph.vertices()[: _num_sources()]
    indices = [csr.index_of(v) for v in vertices]

    rows = []
    for operation, dict_fn, csr_fn in (
        (
            "bfs_spd",
            lambda s: bfs_spd(graph, s),
            lambda i: bfs_spd_csr(csr, i),
        ),
        (
            "brandes (spd + accumulate)",
            lambda s: accumulate_dependencies(bfs_spd(graph, s)),
            lambda i: accumulate_dependencies_csr(bfs_spd_csr(csr, i)),
        ),
    ):
        dict_seconds = _time_per_source(dict_fn, vertices)
        csr_seconds = _time_per_source(csr_fn, indices)
        rows.append(
            {
                "operation": operation,
                "vertices": graph.number_of_vertices(),
                "edges": graph.number_of_edges(),
                "sources_timed": len(vertices),
                "dict_seconds_per_source": dict_seconds,
                "csr_seconds_per_source": csr_seconds,
                "speedup": dict_seconds / csr_seconds if csr_seconds > 0 else float("inf"),
            }
        )
    return rows


COLUMNS = [
    "operation",
    "vertices",
    "edges",
    "sources_timed",
    "dict_seconds_per_source",
    "csr_seconds_per_source",
    "speedup",
]


@pytest.mark.skipif(np is None, reason="the CSR backend requires numpy")
@pytest.mark.benchmark(group="e10")
def test_e10_backend_speedup(benchmark):
    """Regenerate the E10 table and time one CSR Brandes pass."""
    rows = _experiment_rows()
    emit_table(
        "E10",
        f"dict vs CSR backend on a BA({GRAPH_SIZE}, {BA_M}) graph",
        rows,
        COLUMNS,
    )

    graph = barabasi_albert_graph(GRAPH_SIZE, BA_M, seed=bench_seed())
    csr = graph.csr()
    benchmark.pedantic(
        lambda: accumulate_dependencies_csr(bfs_spd_csr(csr, 0)),
        rounds=5,
        iterations=1,
    )
    brandes = next(r for r in rows if r["operation"].startswith("brandes"))
    benchmark.extra_info["speedup"] = brandes["speedup"]
    # The emitted table is the receipt for the >= 3x expectation; the pytest
    # assert only guards a sanity floor so a descheduled timing loop on a
    # loaded CI runner cannot flake the suite.
    assert brandes["speedup"] > 1.0, (
        f"CSR Brandes is not faster than dict at all "
        f"({brandes['speedup']:.2f}x on BA({GRAPH_SIZE}, {BA_M}))"
    )


def main() -> None:
    if np is None:
        raise SystemExit("the CSR backend requires numpy")
    rows = _experiment_rows()
    emit_table(
        "E10",
        f"dict vs CSR backend on a BA({GRAPH_SIZE}, {BA_M}) graph",
        rows,
        COLUMNS,
    )
    brandes = next(r for r in rows if r["operation"].startswith("brandes"))
    print(f"CSR Brandes speedup: {brandes['speedup']:.2f}x (target: >= 3x)")


if __name__ == "__main__":
    main()
