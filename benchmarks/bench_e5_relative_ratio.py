"""E5 — joint-space sampler: relative scores and betweenness ratios (Table 3 analogue).

For reference sets of growing size the joint-space chain is run once and
three quantities are compared for every ordered pair (ri, rj):

* the estimated ratio ``BC(ri)/BC(rj)`` (Equation 22) against the exact
  ratio — Theorem 3 says this is consistent;
* the estimated relative score against the stationary expectation it
  converges to, and against the Equation 23 uniform average (the reproduction
  note in ``exact_stationary_relative_betweenness`` explains why these can
  differ).
"""

from __future__ import annotations

import math

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.analysis import summarize_runs
from repro.datasets import load_dataset, pick_reference_set
from repro.exact import (
    exact_betweenness_ratio,
    exact_relative_betweenness,
    exact_stationary_relative_betweenness,
)
from repro.mcmc import JointSpaceMHSampler

DATASETS = ("barbell", "caveman")
SET_SIZES = (2, 4)
CHAIN_LENGTH = 4000


def _experiment_rows():
    rows = []
    for dataset in DATASETS:
        graph = load_dataset(dataset, size=bench_size(), seed=bench_seed())
        for set_size in SET_SIZES:
            refs = pick_reference_set(graph, set_size, seed=bench_seed())
            estimate = JointSpaceMHSampler().estimate_relative(
                graph, refs, CHAIN_LENGTH, seed=bench_seed()
            )
            ratio_errors = []
            relative_errors_stationary = []
            relative_errors_eq23 = []
            for ri in refs:
                for rj in refs:
                    if ri == rj:
                        continue
                    est_ratio = estimate.ratios[(ri, rj)]
                    if not math.isnan(est_ratio):
                        exact_ratio = exact_betweenness_ratio(graph, ri, rj)
                        ratio_errors.append(abs(est_ratio - exact_ratio) / exact_ratio)
                    est_rel = estimate.relative[ri][rj]
                    relative_errors_stationary.append(
                        abs(est_rel - exact_stationary_relative_betweenness(graph, ri, rj))
                    )
                    relative_errors_eq23.append(
                        abs(est_rel - exact_relative_betweenness(graph, ri, rj))
                    )
            rows.append(
                {
                    "dataset": dataset,
                    "|R|": set_size,
                    "chain_length": CHAIN_LENGTH,
                    "acceptance": estimate.acceptance_rate,
                    "ratio_rel_error_mean": summarize_runs(ratio_errors)["mean"],
                    "ratio_rel_error_max": summarize_runs(ratio_errors)["max"],
                    "relative_err_vs_stationary": summarize_runs(relative_errors_stationary)["mean"],
                    "relative_err_vs_eq23": summarize_runs(relative_errors_eq23)["mean"],
                }
            )
    return rows


@pytest.mark.benchmark(group="e5")
def test_e5_relative_ratio(benchmark):
    """Regenerate the E5 table and time one joint-chain run."""
    rows = _experiment_rows()
    emit_table(
        "E5",
        "joint-space sampler: ratio and relative-score accuracy",
        rows,
        [
            "dataset",
            "|R|",
            "chain_length",
            "acceptance",
            "ratio_rel_error_mean",
            "ratio_rel_error_max",
            "relative_err_vs_stationary",
            "relative_err_vs_eq23",
        ],
    )

    graph = load_dataset("barbell", size=bench_size(), seed=bench_seed())
    refs = pick_reference_set(graph, 2, seed=bench_seed())
    sampler = JointSpaceMHSampler()
    benchmark.pedantic(
        lambda: sampler.estimate_relative(graph, refs, 500, seed=bench_seed()),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["rows"] = len(rows)
    # Theorem 3: ratios must be estimated within a modest relative error.
    assert all(row["ratio_rel_error_mean"] < 0.35 for row in rows)
    # The estimator converges to the stationary expectation at least as well
    # as to the Equation 23 uniform average.
    assert all(
        row["relative_err_vs_stationary"] <= row["relative_err_vs_eq23"] + 0.02 for row in rows
    )
