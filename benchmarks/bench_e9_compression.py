"""E9 (ablation) — degree-one compression as a Brandes accelerator.

Section 3 of the paper cites compression (Çatalyürek et al.) as the standard
practical accelerator of exact betweenness.  This ablation measures, per
dataset family, how much of the graph the 1-shell peeling removes, the
speed-up of the compression-based exact algorithm over plain Brandes, and
verifies that the two agree to machine precision.
"""

from __future__ import annotations

import time

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.datasets import load_dataset
from repro.exact import (
    betweenness_centrality,
    betweenness_with_compression,
    compress_degree_one,
)
from repro.graphs import barabasi_albert_graph, random_tree

DATASETS = ("collaboration", "email", "road", "p2p")


def _cases():
    for dataset in DATASETS:
        yield dataset, load_dataset(dataset, size=bench_size(), seed=bench_seed())
    # Pendant-heavy synthetic cases where compression shines.
    yield "ba-tree (m=1)", barabasi_albert_graph(150, 1, seed=bench_seed())
    yield "random-tree", random_tree(150, seed=bench_seed())


def _experiment_rows():
    rows = []
    for name, graph in _cases():
        start = time.perf_counter()
        plain = betweenness_centrality(graph)
        plain_seconds = time.perf_counter() - start

        start = time.perf_counter()
        compressed_scores = betweenness_with_compression(graph)
        compressed_seconds = time.perf_counter() - start

        compressed = compress_degree_one(graph)
        max_gap = max(
            abs(plain[v] - compressed_scores[v]) for v in graph.vertices()
        )
        rows.append(
            {
                "graph": name,
                "vertices": graph.number_of_vertices(),
                "removed_pendants": len(compressed.removed),
                "compression_ratio": compressed.compression_ratio(),
                "brandes_seconds": plain_seconds,
                "compressed_seconds": compressed_seconds,
                "speedup": plain_seconds / compressed_seconds if compressed_seconds else 0.0,
                "max_abs_gap": max_gap,
            }
        )
    return rows


@pytest.mark.benchmark(group="e9")
def test_e9_compression_ablation(benchmark):
    """Regenerate the E9 ablation table and time the compressed exact algorithm."""
    rows = _experiment_rows()
    emit_table(
        "E9",
        "degree-one compression: exactness and speed-up over plain Brandes",
        rows,
        [
            "graph",
            "vertices",
            "removed_pendants",
            "compression_ratio",
            "brandes_seconds",
            "compressed_seconds",
            "speedup",
            "max_abs_gap",
        ],
    )

    tree = random_tree(150, seed=bench_seed())
    benchmark.pedantic(lambda: betweenness_with_compression(tree), rounds=3, iterations=1)
    benchmark.extra_info["rows"] = len(rows)
    # Exactness is non-negotiable.
    assert all(row["max_abs_gap"] < 1e-9 for row in rows)
    # On trees the speed-up must be substantial (almost everything is peeled).
    tree_rows = [row for row in rows if row["graph"] in ("ba-tree (m=1)", "random-tree")]
    assert all(row["speedup"] > 3.0 for row in tree_rows)
