"""E13 — cross-process shared dependency-vector cache receipt.

The PR 3 receipt (E12) showed that on few-core machines the dominant
residual cost of the multi-chain engine is *duplicated Brandes passes*:
with ``n_jobs > 1`` every worker process keeps a private oracle cache, so a
dependency vector computed for one chain is recomputed for every other
chain that proposes the same source.  The shared arena
(:mod:`repro.execution.shared_cache`) removes the duplication; this
benchmark is its receipt, on the reference BA graph with K=4 chains over
``n_jobs=4`` worker processes:

* **E13 (dedup + wall-clock)** — three runs of the same fixed-seed
  workload: the inline single-process run (all chains share one in-process
  oracle, so its ``evaluations`` count *is* the run's unique-source count
  ``U``), the private-cache multi-process run (``~K×`` duplicated passes),
  and the shared-arena multi-process run.  The acceptance property is
  ``evaluations(shared) <= 1.2 x U`` — the arena collapses total passes to
  the unique sources plus at most a few benign races — with the wall-clock
  improvement over the private-cache run in the ``speedup`` column and
  ``cpu_count`` stamped so parallelism and dedup contributions stay
  attributable.
* **E13-determinism** — the pooled estimate with ``shared_cache=True`` is
  asserted bit-identical to the private-cache estimate for every
  ``n_jobs`` ∈ {1, 2, 4} at a fixed seed (cache sharing moves work
  counters, never results).
* **E13-overflow** — a deliberately tiny arena (8 rows) overflows
  immediately; the estimate is asserted unchanged (the store refuses new
  rows, private caches absorb the rest).

Run directly (``python benchmarks/bench_e13_shared_cache.py``) or through
pytest with the other ``bench_e*`` modules.  ``REPRO_BENCH_SIZE=tiny`` (the
default) uses a smaller graph for smoke runs; the committed receipt under
``benchmarks/results/`` is produced with ``REPRO_BENCH_SIZE=small`` — the
BA(5000, 3), K=4, n_jobs=4 configuration of the acceptance criterion.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.execution.shared_cache import shared_memory_available
from repro.graphs import barabasi_albert_graph
from repro.graphs.csr import np
from repro.mcmc.multichain import MultiChainMHSampler

#: Graph size per REPRO_BENCH_SIZE tier (attachment parameter fixed at 3;
#: ``small`` is the BA(5000, 3) acceptance configuration).
GRAPH_SIZES = {"tiny": 600, "small": 5000, "medium": 5000}
#: Total sampling budget split over the K chains of every run.
TOTAL_SAMPLES = {"tiny": 96, "small": 4096, "medium": 8192}
#: Chains and worker processes of the acceptance configuration.
CHAINS = 4
BENCH_JOBS = 4
#: Proposal batch-prefetch block of every run (identical across rows so the
#: cache policy is the only thing the comparison varies).
BATCH_SIZE = 16
#: n_jobs values of the determinism check.
JOBS = (1, 2, 4)
#: The acceptance bound: total passes over unique sources with the arena.
EVALS_OVER_UNIQUE_BOUND = 1.2


def _graph_size() -> int:
    return GRAPH_SIZES.get(bench_size(), GRAPH_SIZES["tiny"])


def _total_samples() -> int:
    return TOTAL_SAMPLES.get(bench_size(), TOTAL_SAMPLES["tiny"])


def _bench_graph():
    graph = barabasi_albert_graph(_graph_size(), 3, seed=bench_seed())
    graph.csr()  # take the snapshot outside every timed region
    return graph, graph.vertices()[0]  # an early BA vertex: hub, positive BC


def _run(n_jobs: int, shared_cache: bool, **kwargs):
    graph, r = _bench_graph()
    sampler = MultiChainMHSampler(
        n_chains=CHAINS,
        n_jobs=n_jobs,
        backend="csr",
        batch_size=BATCH_SIZE,
        shared_cache=shared_cache,
        **kwargs,
    )
    start = time.perf_counter()
    estimate = sampler.estimate(graph, r, _total_samples(), seed=bench_seed())
    return estimate, time.perf_counter() - start


def _dedup_rows():
    inline, inline_seconds = _run(n_jobs=1, shared_cache=False)
    private, private_seconds = _run(n_jobs=BENCH_JOBS, shared_cache=False)
    shared, shared_seconds = _run(n_jobs=BENCH_JOBS, shared_cache=True)
    # One in-process oracle serves every chain of the inline run, so its
    # pass count is the number of unique sources the workload touches.
    unique = inline.diagnostics["evaluations"]
    assert inline.estimate == private.estimate == shared.estimate, (
        "cache policy changed the pooled estimate: "
        f"{inline.estimate} / {private.estimate} / {shared.estimate}"
    )
    rows = []
    for engine, estimate, seconds in (
        ("inline, one oracle", inline, inline_seconds),
        ("private worker caches", private, private_seconds),
        ("shared arena", shared, shared_seconds),
    ):
        diag = estimate.diagnostics
        stats = diag.get("shared_cache_stats")
        rows.append(
            {
                "engine": engine,
                "chains": CHAINS,
                "n_jobs": diag["n_jobs"],
                "shared_cache": diag["shared_cache"],
                "total_samples": _total_samples(),
                "evaluations": diag["evaluations"],
                "unique_sources": unique,
                "evals_over_unique": diag["evaluations"] / unique,
                "seconds": seconds,
                "speedup_vs_private": private_seconds / seconds if seconds else float("inf"),
                "estimate": estimate.estimate,
                "published": stats["published"] if stats else None,
            }
        )
    return rows


def _determinism_rows():
    total = min(_total_samples(), 512)  # the identity check needs no scale
    graph, r = _bench_graph()
    reference = MultiChainMHSampler(
        n_chains=CHAINS, backend="csr", batch_size=BATCH_SIZE
    ).estimate(graph, r, total, seed=bench_seed())
    rows = []
    for n_jobs in JOBS:
        shared = MultiChainMHSampler(
            n_chains=CHAINS,
            n_jobs=n_jobs,
            backend="csr",
            batch_size=BATCH_SIZE,
            shared_cache=True,
        ).estimate(graph, r, total, seed=bench_seed())
        identical = shared.estimate == reference.estimate
        assert identical, (
            f"shared-cache estimate diverged from the private-cache path at "
            f"n_jobs={n_jobs}: {shared.estimate} != {reference.estimate}"
        )
        rows.append(
            {
                "check": "shared arena vs private caches, seed fixed",
                "n_jobs": n_jobs,
                "bit_identical": identical,
                "value": shared.estimate,
            }
        )
    return rows


def _overflow_row():
    total = min(_total_samples(), 512)
    graph, r = _bench_graph()
    reference = MultiChainMHSampler(
        n_chains=CHAINS, backend="csr", batch_size=BATCH_SIZE
    ).estimate(graph, r, total, seed=bench_seed())
    sampler = MultiChainMHSampler(
        n_chains=CHAINS,
        n_jobs=2,
        backend="csr",
        batch_size=BATCH_SIZE,
        shared_cache=True,
        shared_cache_capacity=8,
    )
    tiny = sampler.estimate(graph, r, total, seed=bench_seed())
    identical = tiny.estimate == reference.estimate
    assert identical, (
        f"arena overflow changed the estimate: {tiny.estimate} != {reference.estimate}"
    )
    stats = tiny.diagnostics["shared_cache_stats"]
    return {
        "arena_capacity": 8,
        "published": stats["published"],
        "full": stats["full"],
        "bit_identical": identical,
        "evaluations": tiny.diagnostics["evaluations"],
        "estimate": tiny.estimate,
    }


DEDUP_COLUMNS = [
    "engine", "chains", "n_jobs", "shared_cache", "total_samples",
    "evaluations", "unique_sources", "evals_over_unique", "seconds",
    "speedup_vs_private", "estimate", "published",
]
DETERMINISM_COLUMNS = ["check", "n_jobs", "bit_identical", "value"]
OVERFLOW_COLUMNS = [
    "arena_capacity", "published", "full", "bit_identical", "evaluations",
    "estimate",
]


def _emit_all():
    size = _graph_size()
    dedup_rows = _dedup_rows()
    emit_table(
        "E13",
        f"shared dependency arena vs private worker caches on a BA({size}, 3) "
        f"graph (K={CHAINS}, n_jobs={BENCH_JOBS}, batch={BATCH_SIZE}, "
        f"cpu_count={multiprocessing.cpu_count()})",
        dedup_rows,
        DEDUP_COLUMNS,
    )
    emit_table(
        "E13-determinism",
        "fixed-seed bit-identity of the pooled estimate, shared vs private cache",
        _determinism_rows(),
        DETERMINISM_COLUMNS,
    )
    emit_table(
        "E13-overflow",
        f"deliberately tiny arena on a BA({size}, 3) graph (result-neutral overflow)",
        [_overflow_row()],
        OVERFLOW_COLUMNS,
    )
    return dedup_rows


def _shared_row(rows):
    return next(row for row in rows if row["engine"] == "shared arena")


@pytest.mark.skipif(
    np is None or not shared_memory_available(),
    reason="the shared-cache benchmark requires numpy and working shared memory",
)
@pytest.mark.benchmark(group="e13")
def test_e13_shared_cache(benchmark):
    """Regenerate the E13 tables and time one shared-cache pooled estimate."""
    rows = _emit_all()

    graph, r = _bench_graph()
    sampler = MultiChainMHSampler(
        n_chains=CHAINS, n_jobs=2, backend="csr", batch_size=BATCH_SIZE,
        shared_cache=True,
    )
    benchmark.pedantic(
        lambda: sampler.estimate(graph, r, 64, seed=bench_seed()),
        rounds=3,
        iterations=1,
    )
    shared = _shared_row(rows)
    benchmark.extra_info["evals_over_unique"] = shared["evals_over_unique"]
    # The bit-identity assertions inside _emit_all are the hard gate at
    # every size.  The dedup ratio is asserted at the receipt sizes only:
    # at tiny scale K chains barely overlap on 600 vertices, so the ratio
    # is trivially close to the private run and proves nothing.
    if bench_size() != "tiny":
        assert shared["evals_over_unique"] <= EVALS_OVER_UNIQUE_BOUND, (
            f"shared arena did not deduplicate: {shared['evaluations']} passes "
            f"for {shared['unique_sources']} unique sources"
        )


def main() -> None:
    if np is None or not shared_memory_available():
        raise SystemExit(
            "the shared-cache benchmark requires numpy and working shared memory"
        )
    rows = _emit_all()
    shared = _shared_row(rows)
    print(
        f"shared-arena passes / unique sources: {shared['evals_over_unique']:.3f} "
        f"(target: <= {EVALS_OVER_UNIQUE_BOUND} at REPRO_BENCH_SIZE=small), "
        f"speedup vs private caches: {shared['speedup_vs_private']:.2f}x"
    )


if __name__ == "__main__":
    main()
