"""E17 — HTTP serving daemon receipt (``repro-bc serve``).

PR 5 made warm sessions a process-local affair: one
:class:`~repro.centrality.session.BetweennessSession` per Python caller.
The serving tier (:mod:`repro.serving`) puts that warmth behind a socket —
one daemon, many clients, a session registry of named graphs, in-flight
request coalescing and a Prometheus ``/metrics`` endpoint.  This benchmark
is the receipt, against a live daemon on an ephemeral port:

* **E17 (throughput)** — the 32-query mixed workload of E14 (8 estimate
  templates x2, 2 relative x4, 2 ranking x4), answered over HTTP by one
  warm daemon and compared against cold per-call API twins.  The served
  answers must be **bit-identical** to the cold answers at the same seed —
  the socket adds transport, never drift.
* **E17-coalesce** — a burst of byte-identical concurrent requests is
  answered by **one** computation: every response shares the same rendered
  bytes, and the daemon's coalesce-hit counter equals the duplicate count
  (the acceptance criterion demands at least one recorded hit).
* **E17-metrics** — the post-workload ``/metrics`` scrape is parsed and its
  load-bearing series asserted non-zero: the request-latency histogram has
  observations and mass, and the per-graph Brandes-pass counter reflects
  the sampler work the workload performed.

Run directly (``python benchmarks/bench_e17_serving.py``) or through pytest
with the other ``bench_e*`` modules.  The committed receipt under
``benchmarks/results/`` is produced with ``REPRO_BENCH_SIZE=small``
(the BA(5000, 3) acceptance configuration).
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import threading
import time

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.centrality import BetweennessSession
from repro.execution import ExecutionPlan
from repro.execution.shared_cache import shared_memory_available
from repro.graphs import barabasi_albert_graph
from repro.graphs.csr import np

if np is not None:
    from repro.serving import ServingApp, ServingConfig, create_server
    from repro.serving.queries import execute_query

#: Graph size per REPRO_BENCH_SIZE tier (``small`` is the BA(5000, 3)
#: acceptance configuration, matching E14).
GRAPH_SIZES = {"tiny": 600, "small": 5000, "medium": 5000}
EST_SAMPLES = {"tiny": 48, "small": 96, "medium": 192}
SET_SAMPLES = {"tiny": 48, "small": 96, "medium": 192}
#: Execution knobs the daemon's sessions and the cold twins share.
BENCH_JOBS = 2
BATCH_SIZE = 16
CHAINS = 2
ARENA_CAPACITY = 4096
#: Identical concurrent requests in the coalesce burst (1 leader + 3 hits).
BURST = 4
GRAPH_NAME = "bench"


def _graph_size() -> int:
    return GRAPH_SIZES.get(bench_size(), GRAPH_SIZES["tiny"])


def _bench_graph():
    graph = barabasi_albert_graph(_graph_size(), 3, seed=bench_seed())
    graph.csr()  # take the snapshot outside every timed region
    return graph


def _workload(graph):
    """The 32-query E14 workload, phrased as serving query bodies."""
    v = graph.vertices()
    est = EST_SAMPLES.get(bench_size(), EST_SAMPLES["tiny"])
    rel = SET_SAMPLES.get(bench_size(), SET_SAMPLES["tiny"])
    estimates = [
        ("estimate", {"vertex": v[i], "samples": est, "seed": 100 + i})
        for i in range(8)
    ]
    relatives = [
        ("relative", {"vertices": [v[0], v[3], v[9], v[17]], "samples": rel, "seed": 50}),
        ("relative", {"vertices": [v[1], v[5], v[28]], "samples": rel, "seed": 51}),
    ]
    rankings = [
        ("ranking", {"vertices": [v[i] for i in range(12)], "k": 5, "samples": rel, "seed": 60}),
        ("ranking", {"vertices": [v[i] for i in range(12, 24)], "k": 5, "samples": rel, "seed": 61}),
    ]
    queries = []
    for round_index in range(4):
        offset = (round_index % 2) * 4
        queries.extend(estimates[offset : offset + 4])
        queries.append(relatives[round_index % 2])
        queries.append(relatives[(round_index + 1) % 2])
        queries.append(rankings[round_index % 2])
        queries.append(rankings[(round_index + 1) % 2])
    assert len(queries) == 32
    return queries


def _http(host, port, method, path, body=b""):
    conn = http.client.HTTPConnection(host, port, timeout=600)
    try:
        conn.request(method, path, body=body, headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def _answer_fields(op, payload):
    """The deterministic answer a query kind is compared on."""
    if op == "estimate":
        return payload["estimate"]
    if op == "relative":
        return payload["ratios"]
    return payload["ranking"]


def _cold_answers(graph, queries):
    """One fresh session per query: the cold per-call twins."""
    plan = ExecutionPlan(backend="csr", batch_size=BATCH_SIZE, n_jobs=BENCH_JOBS)
    answers = []
    start = time.perf_counter()
    for op, spec in queries:
        with BetweennessSession(graph, plan, arena_capacity=ARENA_CAPACITY) as session:
            payload = execute_query(
                session, dict(spec, op=op), default_chains=CHAINS, kernel="csr"
            )
        answers.append(_answer_fields(op, json.loads(json.dumps(payload))))
    return answers, time.perf_counter() - start


def _served_workload(host, port, queries):
    """The same 32 queries over HTTP against the warm daemon."""
    answers = []
    start = time.perf_counter()
    for op, spec in queries:
        status, _, raw = _http(
            host, port, "POST", f"/graphs/{GRAPH_NAME}/{op}", json.dumps(spec).encode()
        )
        assert status == 200, raw
        answers.append(_answer_fields(op, json.loads(raw)))
    return answers, time.perf_counter() - start


def _coalesce_burst(app, host, port, spec):
    """Fire BURST byte-identical concurrent requests; return the receipt row."""
    body = json.dumps(spec).encode()
    followers = BURST - 1
    hits_before = app.coalescer.coalesce_hits
    computations_before = app.coalescer.computations

    def hold(key):
        deadline = time.monotonic() + 30
        while app.coalescer.waiters(key) < followers and time.monotonic() < deadline:
            time.sleep(0.002)

    app.before_compute = hold
    responses = [None] * BURST

    def fire(index):
        responses[index] = _http(
            host, port, "POST", f"/graphs/{GRAPH_NAME}/estimate", body
        )

    threads = [
        threading.Thread(target=fire, args=(i,), daemon=True) for i in range(BURST)
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
    finally:
        app.before_compute = None
    assert all(r is not None and r[0] == 200 for r in responses)
    bodies = {raw for _, _, raw in responses}
    assert len(bodies) == 1, "coalesced responses must share one rendered body"
    hits = app.coalescer.coalesce_hits - hits_before
    return {
        "burst_requests": BURST,
        "computations": app.coalescer.computations - computations_before,
        "coalesce_hits": hits,
        "byte_identical_bodies": len(bodies) == 1,
    }


def _parse_metric(text, name, labels=""):
    needle = f"{name}{labels} "
    for line in text.splitlines():
        if line.startswith(needle):
            return float(line.rsplit(" ", 1)[1])
    return None


def _run_serving_benchmark():
    graph = _bench_graph()
    queries = _workload(graph)

    plan = ExecutionPlan(backend="csr", batch_size=BATCH_SIZE, n_jobs=BENCH_JOBS)
    config = ServingConfig(
        backend="csr",
        kernel="csr",
        default_chains=CHAINS,
        arena_capacity=ARENA_CAPACITY,
        request_timeout=600.0,
    )
    app = ServingApp(plan=plan, config=config)
    server = create_server("127.0.0.1", 0, app=app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        app.registry.load(GRAPH_NAME, graph)
        served, served_seconds = _served_workload(host, port, queries)
        burst_row = _coalesce_burst(app, host, port, queries[0][1])

        status, _, raw = _http(host, port, "GET", "/metrics")
        assert status == 200
        metrics_text = raw.decode()
    finally:
        server.close()
        thread.join(timeout=30)

    cold, cold_seconds = _cold_answers(graph, queries)

    identity_rows = []
    for (op, spec), served_answer, cold_answer in zip(queries, served, cold):
        assert served_answer == cold_answer, (
            f"served answer diverged from the cold API for {op} {spec}: "
            f"{served_answer!r} != {cold_answer!r}"
        )
        identity_rows.append({"op": op, "bit_identical": True})

    passes = _parse_metric(
        metrics_text, "repro_brandes_passes_total", f'{{graph="{GRAPH_NAME}"}}'
    )
    latency_count = _parse_metric(metrics_text, "repro_request_seconds_count")
    latency_sum = _parse_metric(metrics_text, "repro_request_seconds_sum")
    metrics_row = {
        "brandes_passes": passes,
        "latency_observations": latency_count,
        "latency_sum_seconds": latency_sum,
        "latency_p50_ms": (_parse_metric(metrics_text, "repro_request_latency_p50_seconds") or 0) * 1000,
        "latency_p95_ms": (_parse_metric(metrics_text, "repro_request_latency_p95_seconds") or 0) * 1000,
    }
    assert passes and passes > 0, "the Brandes-pass counter must be non-zero"
    assert latency_count and latency_count > 0, "the latency histogram is empty"
    assert latency_sum and latency_sum > 0, "the latency histogram has no mass"
    assert burst_row["coalesce_hits"] >= 1, "no coalesce hit recorded"

    throughput_row = {
        "queries": len(queries),
        "cold_seconds": cold_seconds,
        "served_seconds": served_seconds,
        "speedup": cold_seconds / served_seconds if served_seconds else float("inf"),
        **burst_row,
    }
    return throughput_row, identity_rows, metrics_row


THROUGHPUT_COLUMNS = [
    "queries", "cold_seconds", "served_seconds", "speedup",
    "burst_requests", "computations", "coalesce_hits", "byte_identical_bodies",
]
IDENTITY_COLUMNS = ["op", "bit_identical"]
METRICS_COLUMNS = [
    "brandes_passes", "latency_observations", "latency_sum_seconds",
    "latency_p50_ms", "latency_p95_ms",
]


def _emit_all():
    size = _graph_size()
    throughput_row, identity_rows, metrics_row = _run_serving_benchmark()
    emit_table(
        "E17",
        f"HTTP daemon vs cold per-call API on a BA({size}, 3) graph "
        f"(32-query workload over one warm daemon, K={CHAINS}, "
        f"n_jobs={BENCH_JOBS}, batch={BATCH_SIZE}, "
        f"cpu_count={multiprocessing.cpu_count()})",
        [throughput_row],
        THROUGHPUT_COLUMNS,
    )
    emit_table(
        "E17-identity",
        "per-query served-vs-cold bit-identity over HTTP",
        identity_rows,
        IDENTITY_COLUMNS,
    )
    emit_table(
        "E17-metrics",
        "post-workload /metrics scrape (daemon-side observability receipt)",
        [metrics_row],
        METRICS_COLUMNS,
    )
    return throughput_row


@pytest.mark.skipif(
    np is None or not shared_memory_available(),
    reason="the serving benchmark requires numpy and working shared memory",
)
@pytest.mark.benchmark(group="e17")
def test_e17_serving(benchmark):
    """Regenerate the E17 tables and time one served warm repeat query."""
    row = _emit_all()

    graph = _bench_graph()
    plan = ExecutionPlan(backend="csr", batch_size=BATCH_SIZE, n_jobs=BENCH_JOBS)
    config = ServingConfig(
        backend="csr", kernel="csr", default_chains=CHAINS,
        arena_capacity=ARENA_CAPACITY,
    )
    app = ServingApp(plan=plan, config=config)
    server = create_server("127.0.0.1", 0, app=app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        app.registry.load(GRAPH_NAME, graph)
        body = json.dumps(
            {"vertex": graph.vertices()[0], "samples": 48, "seed": 1}
        ).encode()
        warmup = _http(host, port, "POST", f"/graphs/{GRAPH_NAME}/estimate", body)
        assert warmup[0] == 200
        benchmark.pedantic(
            lambda: _http(host, port, "POST", f"/graphs/{GRAPH_NAME}/estimate", body),
            rounds=3,
            iterations=1,
        )
    finally:
        server.close()
        thread.join(timeout=30)
    benchmark.extra_info["speedup"] = row["speedup"]
    benchmark.extra_info["coalesce_hits"] = row["coalesce_hits"]


def main() -> None:
    if np is None or not shared_memory_available():
        raise SystemExit(
            "the serving benchmark requires numpy and working shared memory"
        )
    row = _emit_all()
    print(
        f"served workload: {row['speedup']:.2f}x over cold per-call API, "
        f"{row['coalesce_hits']} coalesce hits across a {row['burst_requests']}"
        f"-request identical burst (byte-identical bodies: "
        f"{row['byte_identical_bodies']})"
    )


if __name__ == "__main__":
    main()
