"""E1 — error vs. number of samples, single-vertex estimation (Table 1 analogue).

For each dataset family and each target vertex position (high / median
betweenness), every estimator is run at increasing sample budgets and the
mean/max absolute error over repetitions is reported.  The paper's headline
comparison is the MH sampler against the uniform-source and distance-based
source samplers and the shortest-path sampler of Riondato–Kornaropoulos.

The table reports both MH read-outs: the paper's Equation 7 (``mh-chain``)
and the corrected unbiased read-out (``mh-unbiased``); EXPERIMENTS.md
discusses the difference.
"""

from __future__ import annotations

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.analysis import convergence_sweep
from repro.datasets import load_dataset, pick_targets
from repro.exact import betweenness_of_vertex
from repro.mcmc import SingleSpaceMHSampler
from repro.samplers import (
    DistanceBasedSampler,
    RiondatoKornaropoulosSampler,
    UniformSourceSampler,
)

DATASETS = ("collaboration", "social")
SAMPLE_BUDGETS = (50, 100, 200)
REPETITIONS = 3

ESTIMATORS = {
    "mh-chain": SingleSpaceMHSampler(),
    "mh-unbiased": SingleSpaceMHSampler(estimator="proposal"),
    "uniform-source": UniformSourceSampler(),
    "distance-based": DistanceBasedSampler(),
    "rk-paths": RiondatoKornaropoulosSampler(),
}


def _experiment_rows():
    rows = []
    for dataset in DATASETS:
        graph = load_dataset(dataset, size=bench_size(), seed=bench_seed())
        targets = pick_targets(graph, seed=bench_seed())
        for position in ("high", "median"):
            target = targets[position]
            exact = betweenness_of_vertex(graph, target)
            for name, estimator in ESTIMATORS.items():
                points = convergence_sweep(
                    lambda samples, rng, est=estimator: est.estimate(
                        graph, target, samples, seed=rng
                    ).estimate,
                    exact,
                    sample_budgets=SAMPLE_BUDGETS,
                    repetitions=REPETITIONS,
                    seed=bench_seed(),
                )
                for point in points:
                    rows.append(
                        {
                            "dataset": dataset,
                            "target": position,
                            "estimator": name,
                            "samples": point.samples,
                            "exact_bc": exact,
                            "mean_error": point.mean_error,
                            "max_error": point.max_error,
                        }
                    )
    return rows


@pytest.mark.benchmark(group="e1")
def test_e1_error_vs_samples(benchmark):
    """Regenerate the E1 table and time one representative MH estimate."""
    rows = _experiment_rows()
    emit_table(
        "E1",
        "mean absolute error vs. sample budget (single-vertex estimation)",
        rows,
        ["dataset", "target", "estimator", "samples", "exact_bc", "mean_error", "max_error"],
    )

    graph = load_dataset(DATASETS[0], size=bench_size(), seed=bench_seed())
    target = pick_targets(graph, seed=bench_seed())["high"]
    sampler = SingleSpaceMHSampler()
    result = benchmark.pedantic(
        lambda: sampler.estimate(graph, target, SAMPLE_BUDGETS[-1], seed=bench_seed()),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["rows"] = len(rows)
    benchmark.extra_info["estimate"] = result.estimate
    assert rows, "the experiment must produce at least one table row"
