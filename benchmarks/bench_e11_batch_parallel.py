"""E11 — batched multi-source engine + source-sharded parallelism receipt.

Three measurements on the reference Barabási–Albert graph:

* **batched vs per-source CSR Brandes** — the per-source baseline loops
  ``accumulate_dependencies_csr(bfs_spd_csr(...))`` over the timed sources;
  the batched engine funnels the same sources through
  :func:`repro.shortest_paths.batch.batch_source_dependencies` at several
  batch sizes.  The expectation this benchmark guards is **batched >= 2x
  per-source** at the best batch size on BA(5000, 3).
* **n_jobs scaling** — wall-clock of the sharded
  :func:`repro.exact.brandes.betweenness_centrality` at ``n_jobs`` 1/2/4
  (informational: the curve depends on the machine's core count, which is
  recorded in the table).
* **determinism** — fixed-seed uniform-source estimates are asserted
  bit-identical across ``n_jobs`` ∈ {1, 2, 4}, the execution layer's
  ordered-merge promise.

Run directly (``python benchmarks/bench_e11_batch_parallel.py``) or through
pytest with the other ``bench_e*`` modules.  ``REPRO_BENCH_SIZE=tiny`` (the
default) uses a smaller graph for smoke runs; the committed receipt under
``benchmarks/results/`` is produced with ``REPRO_BENCH_SIZE=small``, which
is the BA(5000, 3) configuration of the acceptance criterion.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from harness import bench_jobs, bench_seed, bench_size, emit_table

from repro.exact.brandes import betweenness_centrality
from repro.graphs import barabasi_albert_graph
from repro.graphs.csr import np
from repro.samplers.uniform_source import UniformSourceSampler
from repro.shortest_paths import (
    accumulate_dependencies_csr,
    batch_source_dependencies,
    bfs_spd_csr,
)

#: Graph size per REPRO_BENCH_SIZE tier (attachment parameter is fixed at 3;
#: ``small`` is the BA(5000, 3) acceptance configuration).
GRAPH_SIZES = {"tiny": 1000, "small": 5000, "medium": 5000}
#: Sources timed in the batched-vs-per-source comparison.
SOURCES = {"tiny": 128, "small": 256, "medium": 1024}
#: Batch sizes compared against the per-source baseline.
BATCH_SIZES = (8, 16, 64)
#: n_jobs values of the scaling curve and the determinism check.
JOBS = (1, 2, 4)


def _graph_size() -> int:
    return GRAPH_SIZES.get(bench_size(), GRAPH_SIZES["tiny"])


def _num_sources() -> int:
    return SOURCES.get(bench_size(), SOURCES["tiny"])


def _batch_rows():
    graph = barabasi_albert_graph(_graph_size(), 3, seed=bench_seed())
    csr = graph.csr()
    sources = list(range(_num_sources()))

    start = time.perf_counter()
    baseline = np.zeros(csr.number_of_vertices())
    for s in sources:
        baseline += accumulate_dependencies_csr(bfs_spd_csr(csr, s))
    per_source_seconds = time.perf_counter() - start

    rows = [
        {
            "engine": "per-source",
            "batch_size": 1,
            "vertices": graph.number_of_vertices(),
            "edges": graph.number_of_edges(),
            "sources": len(sources),
            "seconds": per_source_seconds,
            "speedup": 1.0,
        }
    ]
    for batch_size in BATCH_SIZES:
        start = time.perf_counter()
        buffer = np.zeros(csr.number_of_vertices())
        for begin in range(0, len(sources), batch_size):
            batch_source_dependencies(
                csr, sources[begin : begin + batch_size], out=buffer
            )
        seconds = time.perf_counter() - start
        assert np.allclose(buffer, baseline), "batched Brandes diverged from per-source"
        rows.append(
            {
                "engine": "batched",
                "batch_size": batch_size,
                "vertices": graph.number_of_vertices(),
                "edges": graph.number_of_edges(),
                "sources": len(sources),
                "seconds": seconds,
                "speedup": per_source_seconds / seconds if seconds > 0 else float("inf"),
            }
        )
    return rows


def _jobs_rows():
    graph = barabasi_albert_graph(_graph_size(), 3, seed=bench_seed())
    graph.csr()  # take the snapshot outside the timed region
    # Span several shards (shard size is fixed at DEFAULT_SHARD_SIZE) so the
    # pool path genuinely engages at n_jobs > 1.
    from repro.execution import DEFAULT_SHARD_SIZE

    sources = graph.vertices()[: min(4 * DEFAULT_SHARD_SIZE, len(graph.vertices()))]
    rows = []
    for n_jobs in JOBS:
        start = time.perf_counter()
        betweenness_centrality(
            graph, sources=sources, backend="csr", n_jobs=n_jobs, batch_size=16
        )
        rows.append(
            {
                "n_jobs": n_jobs,
                "cpu_count": multiprocessing.cpu_count(),
                "sources": len(sources),
                "seconds": time.perf_counter() - start,
            }
        )
    return rows


def _determinism_row():
    graph = barabasi_albert_graph(_graph_size(), 3, seed=bench_seed())
    estimates = []
    for n_jobs in JOBS:
        sampler = UniformSourceSampler(backend="csr", n_jobs=n_jobs, batch_size=16)
        estimates.append(
            sampler.estimate(graph, graph.vertices()[1], 64, seed=bench_seed()).estimate
        )
    identical = all(value == estimates[0] for value in estimates)
    assert identical, f"fixed-seed estimates differ across n_jobs: {estimates}"
    return {
        "check": "uniform-source estimate, seed fixed",
        "n_jobs_grid": "/".join(str(j) for j in JOBS),
        "bit_identical": identical,
        "estimate": estimates[0],
    }


BATCH_COLUMNS = ["engine", "batch_size", "vertices", "edges", "sources", "seconds", "speedup"]
JOBS_COLUMNS = ["n_jobs", "cpu_count", "sources", "seconds"]
DETERMINISM_COLUMNS = ["check", "n_jobs_grid", "bit_identical", "estimate"]


def _emit_all():
    batch_rows = _batch_rows()
    jobs_rows = _jobs_rows()
    determinism = _determinism_row()
    size = _graph_size()
    emit_table(
        "E11",
        f"batched vs per-source CSR Brandes on a BA({size}, 3) graph",
        batch_rows,
        BATCH_COLUMNS,
    )
    emit_table(
        "E11-jobs",
        f"sharded Brandes n_jobs scaling on a BA({size}, 3) graph",
        jobs_rows,
        JOBS_COLUMNS,
    )
    emit_table(
        "E11-determinism",
        "fixed-seed bit-identity across n_jobs",
        [determinism],
        DETERMINISM_COLUMNS,
    )
    return batch_rows


@pytest.mark.skipif(np is None, reason="the batch engine requires numpy")
@pytest.mark.benchmark(group="e11")
def test_e11_batch_parallel(benchmark):
    """Regenerate the E11 tables and time one batched Brandes sweep."""
    batch_rows = _emit_all()

    graph = barabasi_albert_graph(_graph_size(), 3, seed=bench_seed())
    csr = graph.csr()
    benchmark.pedantic(
        lambda: batch_source_dependencies(csr, list(range(16))),
        rounds=5,
        iterations=1,
    )
    best = max(row["speedup"] for row in batch_rows if row["engine"] == "batched")
    benchmark.extra_info["best_batch_speedup"] = best
    # The emitted table is the receipt for the >= 2x expectation; the pytest
    # assert only guards a sanity floor so a loaded CI runner cannot flake
    # the suite.
    assert best > 1.0, (
        f"batched Brandes is not faster than per-source at all "
        f"({best:.2f}x on BA({_graph_size()}, 3))"
    )


def main() -> None:
    if np is None:
        raise SystemExit("the batch engine requires numpy")
    batch_rows = _emit_all()
    best = max(row["speedup"] for row in batch_rows if row["engine"] == "batched")
    print(f"best batched speedup: {best:.2f}x (target: >= 2x at REPRO_BENCH_SIZE=small)")
    print(f"jobs stamp: REPRO_BENCH_JOBS={bench_jobs()}")


if __name__ == "__main__":
    main()
