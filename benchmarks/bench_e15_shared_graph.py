"""E15 — zero-copy shared-memory CSR snapshot receipt.

PR 6 replaced per-worker pickled graph shipping with a shared-memory
arena: :class:`repro.graphs.shared.SharedCSRGraph` packs the CSR arrays
(plus the label table, when it is not the identity) into one
``multiprocessing.shared_memory`` segment, pickles down to
``(segment name, header)`` and re-attaches in workers as zero-copy numpy
views.  This benchmark is the receipt, on a ~1M-edge BA graph at
``REPRO_BENCH_SIZE=small``:

* **E15 (shipping)** — wall-clock of shipping the snapshot to
  ``n_jobs`` ∈ {1, 2, 4} workers (``pickle.dumps`` + ``n_jobs`` ×
  ``pickle.loads``), pickled CSR vs shared handle, with the payload blob
  size and the per-worker *incremental* heap cost (tracemalloc peak around
  one ``pickle.loads``).  Acceptance: the shared handle ships ≥ 2× faster
  at ``n_jobs=4`` and its per-worker incremental memory is O(1) — orders
  of magnitude below the pickled copy — at the receipt size.
* **E15-ingestion** — wall-clock of building the CSR snapshot from an
  on-disk edge list: the dict route (``read_edge_list(path).csr()``,
  which materialises the dict-of-dicts adjacency first) vs the streaming
  route (``read_edge_list_csr(path)``, O(chunk) transient memory), with
  the two snapshots asserted byte-identical.
* **E15-determinism** — fixed-seed estimates with ``shared_graph=True``
  asserted bit-identical to pickled shipping at the same plan for every
  ``n_jobs`` ∈ {1, 2, 4} (attach style moves bytes, never results), for
  both a planned sampler baseline and the pooled multi-chain estimate.

Run directly (``python benchmarks/bench_e15_shared_graph.py``) or through
pytest with the other ``bench_e*`` modules.  ``REPRO_BENCH_SIZE=tiny``
(the default) uses a small graph for smoke runs; the committed receipt
under ``benchmarks/results/`` is produced with ``REPRO_BENCH_SIZE=small``
— the BA(350000, 3) ≈ 1.05M-edge acceptance configuration.
"""

from __future__ import annotations

import pickle
import tempfile
import time
import tracemalloc
from pathlib import Path

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.graphs import barabasi_albert_graph
from repro.graphs.csr import np
from repro.graphs.io import read_edge_list, read_edge_list_csr, write_edge_list
from repro.graphs.shared import SharedCSRGraph, shared_graph_available
from repro.mcmc.multichain import MultiChainMHSampler
from repro.samplers import UniformSourceSampler

#: Graph size per REPRO_BENCH_SIZE tier (attachment parameter fixed at 3;
#: ``small`` is the ~1.05M-edge acceptance configuration of the PR 6 issue).
GRAPH_SIZES = {"tiny": 1500, "small": 350_000, "medium": 350_000}
#: Attachment parameter of the BA generator (edges ≈ 3n).
BA_M = 3
#: Worker counts of the shipping and determinism sweeps.
JOBS = (1, 2, 4)
#: Best-of rounds for the shipping wall-clock (the unit of work is small).
SHIP_ROUNDS = 3
#: Acceptance bounds at the receipt sizes (see the pytest entry).
SHIP_SPEEDUP_BOUND = 2.0
WORKER_MEMORY_RATIO_BOUND = 0.1
#: Sampling budget of the determinism table (identity needs no scale).
DETERMINISM_SAMPLES = 64
#: Graph size of the determinism table (estimates on the full receipt
#: graph would dominate the runtime without strengthening the identity).
DETERMINISM_VERTICES = 2000


def _graph_size() -> int:
    return GRAPH_SIZES.get(bench_size(), GRAPH_SIZES["tiny"])


def _bench_graph(n: int):
    graph = barabasi_albert_graph(n, BA_M, seed=bench_seed())
    graph.csr()  # take the snapshot outside every timed region
    return graph, graph.vertices()[0]  # an early BA vertex: hub, positive BC


# ----------------------------------------------------------------------
# E15: shipping wall-clock + per-worker incremental memory
# ----------------------------------------------------------------------

def _ship_once(payload, n_jobs: int, *, close: bool):
    """Time one shipping round: serialise once, materialise n_jobs workers."""
    start = time.perf_counter()
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    views = [pickle.loads(blob) for _ in range(n_jobs)]
    elapsed = time.perf_counter() - start
    if close:
        for view in views:
            view.close()
    return elapsed, len(blob)


def _ship_seconds(payload, n_jobs: int, *, close: bool):
    best, blob_bytes = _ship_once(payload, n_jobs, close=close)
    for _ in range(SHIP_ROUNDS - 1):
        elapsed, _ = _ship_once(payload, n_jobs, close=close)
        best = min(best, elapsed)
    return best, blob_bytes


def _per_worker_bytes(payload, *, close: bool) -> int:
    """Peak Python-heap allocation of one worker-side ``pickle.loads``.

    numpy registers its buffer allocations with tracemalloc, so the pickled
    route shows the full O(m) array copy; the shared route maps the segment
    (untracked, and shared across workers anyway) and allocates only the
    handle — the per-worker *incremental* cost the receipt is about.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    tracemalloc.start()
    view = pickle.loads(blob)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    if close:
        view.close()
    return peak


def _shipping_rows(csr):
    pack_start = time.perf_counter()
    shared = SharedCSRGraph.from_csr(csr, version=0)
    pack_seconds = time.perf_counter() - pack_start
    try:
        pickled_seconds = {}
        rows = []
        for mode, payload, close in (("pickled csr", csr, False), ("shared handle", shared, True)):
            worker_bytes = _per_worker_bytes(payload, close=close)
            for n_jobs in JOBS:
                seconds, blob_bytes = _ship_seconds(payload, n_jobs, close=close)
                if mode == "pickled csr":
                    pickled_seconds[n_jobs] = seconds
                rows.append(
                    {
                        "shipping": mode,
                        "n_jobs": n_jobs,
                        "payload_bytes": blob_bytes,
                        "ship_seconds": seconds,
                        "speedup_vs_pickled": pickled_seconds[n_jobs] / seconds
                        if seconds
                        else float("inf"),
                        "per_worker_bytes": worker_bytes,
                        "one_time_pack_seconds": pack_seconds
                        if mode == "shared handle"
                        else None,
                    }
                )
    finally:
        shared.destroy()
    return rows


# ----------------------------------------------------------------------
# E15-ingestion: streaming edge-list → CSR vs the dict route
# ----------------------------------------------------------------------

def _ingestion_rows(graph):
    edges = graph.number_of_edges()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench.edges"
        write_edge_list(graph, path)
        start = time.perf_counter()
        via_dict = read_edge_list(path).csr()
        dict_seconds = time.perf_counter() - start
        start = time.perf_counter()
        streamed = read_edge_list_csr(path)
        stream_seconds = time.perf_counter() - start
    identical = (
        np.array_equal(streamed.indptr, via_dict.indptr)
        and np.array_equal(streamed.indices, via_dict.indices)
        and np.array_equal(streamed.weights, via_dict.weights)
        and streamed.vertices == via_dict.vertices
    )
    assert identical, "streamed ingestion diverged from read_edge_list(path).csr()"
    return [
        {
            "route": "read_edge_list(path).csr()  [dict graph first]",
            "edges": edges,
            "seconds": dict_seconds,
            "speedup_vs_dict": 1.0,
            "byte_identical": identical,
        },
        {
            "route": "read_edge_list_csr(path)  [streaming]",
            "edges": edges,
            "seconds": stream_seconds,
            "speedup_vs_dict": dict_seconds / stream_seconds
            if stream_seconds
            else float("inf"),
            "byte_identical": identical,
        },
    ]


# ----------------------------------------------------------------------
# E15-determinism: shared vs pickled shipping at the same plan
# ----------------------------------------------------------------------

def _determinism_rows():
    graph, r = _bench_graph(min(_graph_size(), DETERMINISM_VERTICES))
    rows = []
    for n_jobs in JOBS:
        baseline = UniformSourceSampler(backend="csr", batch_size=8, n_jobs=n_jobs)
        baseline.shared_graph = False
        pickled = baseline.estimate(
            graph, r, DETERMINISM_SAMPLES, seed=bench_seed()
        ).estimate
        shared_sampler = UniformSourceSampler(
            backend="csr", batch_size=8, n_jobs=n_jobs
        )
        shared_sampler.shared_graph = True
        shared = shared_sampler.estimate(
            graph, r, DETERMINISM_SAMPLES, seed=bench_seed()
        ).estimate
        identical = shared == pickled
        assert identical, (
            f"shared shipping changed the sampler estimate at n_jobs={n_jobs}: "
            f"{shared} != {pickled}"
        )
        rows.append(
            {
                "check": "UniformSourceSampler, shared vs pickled shipping",
                "n_jobs": n_jobs,
                "bit_identical": identical,
                "value": shared,
            }
        )
    for n_jobs in JOBS:
        kwargs = dict(n_chains=2, n_jobs=n_jobs, backend="csr", batch_size=8)
        pickled = MultiChainMHSampler(shared_graph=False, **kwargs).estimate(
            graph, r, DETERMINISM_SAMPLES, seed=bench_seed()
        ).estimate
        shared = MultiChainMHSampler(shared_graph=True, **kwargs).estimate(
            graph, r, DETERMINISM_SAMPLES, seed=bench_seed()
        ).estimate
        identical = shared == pickled
        assert identical, (
            f"shared shipping changed the pooled estimate at n_jobs={n_jobs}: "
            f"{shared} != {pickled}"
        )
        rows.append(
            {
                "check": "MultiChainMHSampler, shared vs pickled shipping",
                "n_jobs": n_jobs,
                "bit_identical": identical,
                "value": shared,
            }
        )
    return rows


SHIPPING_COLUMNS = [
    "shipping", "n_jobs", "payload_bytes", "ship_seconds",
    "speedup_vs_pickled", "per_worker_bytes", "one_time_pack_seconds",
]
INGESTION_COLUMNS = ["route", "edges", "seconds", "speedup_vs_dict", "byte_identical"]
DETERMINISM_COLUMNS = ["check", "n_jobs", "bit_identical", "value"]


def _emit_all():
    n = _graph_size()
    graph, _ = _bench_graph(n)
    csr = graph.csr()
    shipping_rows = _shipping_rows(csr)
    emit_table(
        "E15",
        f"shipping a BA({n}, {BA_M}) CSR snapshot "
        f"({csr.number_of_edges()} edges) to worker processes, "
        "shared-memory handle vs pickled arrays",
        shipping_rows,
        SHIPPING_COLUMNS,
    )
    emit_table(
        "E15-ingestion",
        f"edge-list file to CSR snapshot on the BA({n}, {BA_M}) graph, "
        "streaming vs dict-graph route",
        _ingestion_rows(graph),
        INGESTION_COLUMNS,
    )
    emit_table(
        "E15-determinism",
        "fixed-seed bit-identity of estimates, shared vs pickled shipping "
        "at the same ExecutionPlan",
        _determinism_rows(),
        DETERMINISM_COLUMNS,
    )
    return shipping_rows


def _row(rows, shipping: str, n_jobs: int):
    return next(
        row for row in rows if row["shipping"] == shipping and row["n_jobs"] == n_jobs
    )


@pytest.mark.skipif(
    np is None or not shared_graph_available(),
    reason="the shared-graph benchmark requires numpy and working shared memory",
)
@pytest.mark.benchmark(group="e15")
def test_e15_shared_graph(benchmark):
    """Regenerate the E15 tables and time one shared-handle shipping round."""
    rows = _emit_all()

    graph, _ = _bench_graph(_graph_size())
    shared = SharedCSRGraph.from_csr(graph.csr(), version=0)
    try:
        benchmark.pedantic(
            lambda: _ship_once(shared, 4, close=True),
            rounds=3,
            iterations=1,
        )
    finally:
        shared.destroy()
    shared_row = _row(rows, "shared handle", 4)
    pickled_row = _row(rows, "pickled csr", 4)
    benchmark.extra_info["ship_speedup_n_jobs_4"] = shared_row["speedup_vs_pickled"]
    # The bit-identity assertions inside _emit_all are the hard gate at
    # every size.  The shipping bounds are asserted at the receipt sizes
    # only: at tiny scale the arrays fit in a few cache lines and constant
    # overheads (segment open, header pickling) dominate both routes.
    if bench_size() != "tiny":
        assert shared_row["speedup_vs_pickled"] >= SHIP_SPEEDUP_BOUND, (
            f"shared handle did not ship >= {SHIP_SPEEDUP_BOUND}x faster at "
            f"n_jobs=4: {shared_row['ship_seconds']}s vs "
            f"{pickled_row['ship_seconds']}s"
        )
        assert (
            shared_row["per_worker_bytes"]
            <= pickled_row["per_worker_bytes"] * WORKER_MEMORY_RATIO_BOUND
        ), (
            "attaching was not O(1) in per-worker memory: "
            f"{shared_row['per_worker_bytes']} bytes vs "
            f"{pickled_row['per_worker_bytes']} pickled"
        )


def main() -> None:
    if np is None or not shared_graph_available():
        raise SystemExit(
            "the shared-graph benchmark requires numpy and working shared memory"
        )
    rows = _emit_all()
    shared_row = _row(rows, "shared handle", 4)
    print(
        f"shared-handle ship speedup at n_jobs=4: "
        f"{shared_row['speedup_vs_pickled']:.2f}x "
        f"(target: >= {SHIP_SPEEDUP_BOUND}x at REPRO_BENCH_SIZE=small), "
        f"per-worker attach cost: {shared_row['per_worker_bytes']} bytes"
    )


if __name__ == "__main__":
    main()
