"""E19 — weighted fast path: array-native + compiled Dijkstra rungs.

Four measurements on a weighted Barabási–Albert graph (BA(n, 3) topology,
weights drawn from {0.5, 1.0, 1.5, 2.0, 3.0} with a fixed seed):

* **per-source: dict vs array-native vs compiled** — the three weighted
  rungs run the same Brandes pass (Dijkstra wave + dependency
  accumulation) over the timed sources.  The dict rung is the original
  heapq-over-dicts reference (:func:`dijkstra_spd` +
  :func:`accumulate_dependencies`); the array-native rung is the fused
  flat-array pass :func:`dijkstra_source_dependencies_csr`; the compiled
  rung is the ``@njit`` twin :func:`source_dependencies_compiled`.  The
  acceptance bars this table documents are **array-native >= 3x dict**
  and **compiled >= 2x array-native** on weighted BA(5000, 3)
  (``REPRO_BENCH_SIZE=small``) with numba importable; the pytest assert
  below only guards interpreter-level sanity floors so a numba-less or
  loaded runner cannot flake the suite.
* **threads curve** — the batched weighted sweep
  (:func:`batch_dependencies_compiled`) at kernel_threads ∈ {1, 2, 4}.
  The ``prange`` rows stride independent sources with private scratch, so
  every count must produce the bit-identical matrix; the curve documents
  what the knob buys in wall-clock on this machine.  Without numba the
  fallback bodies run the same stride loop sequentially and the curve
  reads ~1.0 by construction.
* **bit-identity grid** — fixed-seed estimates asserted identical over
  kernel ∈ {csr, compiled} × kernel_threads ∈ {1, 2, 4} × n_jobs ∈
  {1, 2, 4}: the weighted heap kernels share the interpreter rung's
  ``(dist, counter, vertex)`` total order, so the settle order — and
  therefore every float operation — is the same on all rungs at any
  parallelism.
* **fallback receipt** — which rung ``kernel="compiled"`` actually
  resolved to in this environment, so a committed result is
  self-describing.

Run directly (``python benchmarks/bench_e19_weighted.py``) or through
pytest with the other ``bench_e*`` modules.  ``REPRO_BENCH_SIZE=tiny``
(the default) uses a smaller graph for smoke runs; the weighted
BA(5000, 3) acceptance configuration is ``REPRO_BENCH_SIZE=small``.
"""

from __future__ import annotations

import random
import time
import warnings

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.graphs import Graph, barabasi_albert_graph
from repro.graphs.csr import np, resolve_kernel
from repro.samplers.uniform_source import UniformSourceSampler
from repro.shortest_paths import (
    NUMBA_AVAILABLE,
    accumulate_dependencies,
    dijkstra_spd,
)
from repro.shortest_paths.batch import batch_source_dependencies
from repro.shortest_paths.compiled import (
    batch_dependencies_compiled,
    source_dependencies_compiled,
    warm_up,
)
from repro.shortest_paths.dijkstra import dijkstra_source_dependencies_csr

#: Graph size per REPRO_BENCH_SIZE tier (attachment parameter fixed at 3;
#: ``small`` is the weighted BA(5000, 3) acceptance configuration).
GRAPH_SIZES = {"tiny": 1000, "small": 5000, "medium": 5000}
#: Sources timed in the per-source and threads-curve comparisons (the
#: weighted dict rung costs O(m log n) per source in pure Python, so the
#: tiny tier keeps the count modest).
SOURCES = {"tiny": 64, "small": 256, "medium": 512}
#: Batch size of the threads curve (a mid-range E11 winner).
BATCH_SIZE = 16
#: Edge-weight palette (strictly positive, paper Section 2 model).
WEIGHTS = (0.5, 1.0, 1.5, 2.0, 3.0)
#: The bit-identity grid.
KERNELS_GRID = ("csr", "compiled")
THREADS_GRID = (1, 2, 4)
JOBS_GRID = (1, 2, 4)


def _graph_size() -> int:
    return GRAPH_SIZES.get(bench_size(), GRAPH_SIZES["tiny"])


def _num_sources() -> int:
    return SOURCES.get(bench_size(), SOURCES["tiny"])


def _graph() -> Graph:
    """Weighted BA graph: the E16 topology with seeded weight assignment."""
    base = barabasi_albert_graph(_graph_size(), 3, seed=bench_seed())
    rng = random.Random(bench_seed() + 1)
    graph = Graph(weighted=True)
    for v in base.vertices():
        graph.add_vertex(v)
    for u, v in base.edges():
        graph.add_edge(u, v, weight=rng.choice(WEIGHTS))
    return graph


def _per_source_rows():
    graph = _graph()
    csr = graph.csr()
    n = csr.number_of_vertices()
    sources = list(range(_num_sources()))
    warm_up()  # JIT compilation is a one-off cost, never billed to a row

    start = time.perf_counter()
    dict_buffer = np.zeros(n)
    for s in sources:
        deltas = accumulate_dependencies(dijkstra_spd(graph, csr.vertex_at(s)))
        for v, value in deltas.items():
            dict_buffer[csr.index_of(v)] += value
    dict_seconds = time.perf_counter() - start

    start = time.perf_counter()
    array_buffer = np.zeros(n)
    for s in sources:
        array_buffer += dijkstra_source_dependencies_csr(csr, s)
    array_seconds = time.perf_counter() - start

    start = time.perf_counter()
    compiled_buffer = np.zeros(n)
    for s in sources:
        compiled_buffer += source_dependencies_compiled(csr, s)
    compiled_seconds = time.perf_counter() - start

    # The dict rung iterates label dicts (float tolerance); the array and
    # compiled rungs share the exact settle order (bitwise).
    assert np.allclose(array_buffer, dict_buffer, rtol=1e-9, atol=1e-12), (
        "array-native weighted Brandes diverged from the dict rung"
    )
    assert np.array_equal(compiled_buffer, array_buffer), (
        "compiled weighted Brandes diverged bitwise from the array-native rung"
    )

    shared = {
        "vertices": graph.number_of_vertices(),
        "edges": graph.number_of_edges(),
        "sources": len(sources),
        "numba": NUMBA_AVAILABLE,
    }
    return [
        {"rung": "dict", "seconds": dict_seconds, "speedup": 1.0, **shared},
        {
            "rung": "array-native",
            "seconds": array_seconds,
            "speedup": dict_seconds / array_seconds if array_seconds > 0 else float("inf"),
            **shared,
        },
        {
            "rung": "compiled" if NUMBA_AVAILABLE else "compiled (python fallback)",
            "seconds": compiled_seconds,
            "speedup": dict_seconds / compiled_seconds if compiled_seconds > 0 else float("inf"),
            **shared,
        },
    ]


def _threads_rows():
    graph = _graph()
    csr = graph.csr()
    sources = list(range(_num_sources()))
    warm_up()

    def sweep(threads: int):
        buffer = np.zeros(csr.number_of_vertices())
        for begin in range(0, len(sources), BATCH_SIZE):
            batch_dependencies_compiled(
                csr, sources[begin : begin + BATCH_SIZE], out=buffer, threads=threads
            )
        return buffer

    baseline = None
    base_seconds = None
    rows = []
    for threads in THREADS_GRID:
        start = time.perf_counter()
        buffer = sweep(threads)
        seconds = time.perf_counter() - start
        if baseline is None:
            baseline, base_seconds = buffer, seconds
        else:
            assert np.array_equal(buffer, baseline), (
                f"kernel_threads={threads} changed the weighted batch matrix"
            )
        rows.append(
            {
                "kernel_threads": threads,
                "vertices": graph.number_of_vertices(),
                "sources": len(sources),
                "batch_size": BATCH_SIZE,
                "numba": NUMBA_AVAILABLE,
                "seconds": seconds,
                "speedup_vs_1": base_seconds / seconds if seconds > 0 else float("inf"),
                "bit_identical": True,
            }
        )
    return rows


def _grid_row():
    graph = _graph()
    estimates = []
    for kernel in KERNELS_GRID:
        for threads in THREADS_GRID:
            for n_jobs in JOBS_GRID:
                sampler = UniformSourceSampler(
                    backend="csr", n_jobs=n_jobs, batch_size=16
                )
                sampler.kernel = kernel
                sampler.kernel_threads = threads
                with warnings.catch_warnings():
                    # Without numba, kernel="compiled" warns once per
                    # resolution; the fallback row is this table's receipt.
                    warnings.simplefilter("ignore", RuntimeWarning)
                    estimates.append(
                        sampler.estimate(
                            graph, graph.vertices()[1], 48, seed=bench_seed()
                        ).estimate
                    )
    identical = all(value == estimates[0] for value in estimates)
    assert identical, (
        f"fixed-seed weighted estimates differ across the "
        f"kernel x threads x n_jobs grid: {estimates}"
    )
    return {
        "check": "uniform-source weighted estimate, seed fixed",
        "kernel_grid": "/".join(KERNELS_GRID),
        "threads_grid": "/".join(str(t) for t in THREADS_GRID),
        "n_jobs_grid": "/".join(str(j) for j in JOBS_GRID),
        "bit_identical": identical,
        "estimate": estimates[0],
    }


def _fallback_row():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        resolved = resolve_kernel("compiled")
    warned = any(issubclass(w.category, RuntimeWarning) for w in caught)
    if NUMBA_AVAILABLE:
        assert resolved == "compiled" and not warned
    else:
        assert resolved == "csr" and warned, (
            "numba-less resolution must fall back to the numpy rung with a warning"
        )
    return {
        "numba_importable": NUMBA_AVAILABLE,
        "requested": "compiled",
        "resolved": resolved,
        "fallback_warning": warned,
        "results_changed": False,  # guaranteed by the grid row's assertion
    }


PER_SOURCE_COLUMNS = ["rung", "vertices", "edges", "sources", "numba", "seconds", "speedup"]
THREADS_COLUMNS = [
    "kernel_threads", "vertices", "sources", "batch_size", "numba",
    "seconds", "speedup_vs_1", "bit_identical",
]
GRID_COLUMNS = [
    "check", "kernel_grid", "threads_grid", "n_jobs_grid", "bit_identical", "estimate",
]
FALLBACK_COLUMNS = [
    "numba_importable", "requested", "resolved", "fallback_warning", "results_changed",
]


def _emit_all():
    per_source = _per_source_rows()
    threads = _threads_rows()
    grid = _grid_row()
    fallback = _fallback_row()
    size = _graph_size()
    emit_table(
        "E19",
        f"weighted Brandes rungs (dict/array/compiled) on weighted BA({size}, 3)",
        per_source,
        PER_SOURCE_COLUMNS,
    )
    emit_table(
        "E19-threads",
        f"compiled weighted batch at kernel_threads 1/2/4 on weighted BA({size}, 3)",
        threads,
        THREADS_COLUMNS,
    )
    emit_table(
        "E19-determinism",
        "fixed-seed bit-identity across kernel x kernel_threads x n_jobs (weighted)",
        [grid],
        GRID_COLUMNS,
    )
    emit_table(
        "E19-fallback",
        "kernel='compiled' resolution without numba (weighted route)",
        [fallback],
        FALLBACK_COLUMNS,
    )
    return per_source


@pytest.mark.skipif(np is None, reason="the weighted fast path requires numpy")
@pytest.mark.benchmark(group="e19")
def test_e19_weighted(benchmark):
    """Regenerate the E19 tables and time one fused weighted pass."""
    per_source = _emit_all()

    graph = _graph()
    csr = graph.csr()
    warm_up()
    benchmark.pedantic(
        lambda: dijkstra_source_dependencies_csr(csr, 0),
        rounds=5,
        iterations=1,
    )
    array_speedup = per_source[1]["speedup"]
    compiled_speedup = per_source[2]["speedup"]
    benchmark.extra_info["array_speedup"] = array_speedup
    benchmark.extra_info["compiled_speedup"] = compiled_speedup
    benchmark.extra_info["numba"] = NUMBA_AVAILABLE
    # The emitted table is the receipt for the acceptance bars (array >= 3x
    # dict, compiled >= 2x array at REPRO_BENCH_SIZE=small with numba); the
    # pytest asserts guard sanity floors so a loaded runner cannot flake.
    assert array_speedup >= 1.2, (
        f"array-native weighted rung slower than the dict rung ({array_speedup:.2f}x)"
    )
    if NUMBA_AVAILABLE:
        assert compiled_speedup >= 2.0 * array_speedup / 3.0 or compiled_speedup >= 2.0, (
            f"compiled weighted rung did not clear its floor ({compiled_speedup:.2f}x)"
        )


if __name__ == "__main__":
    _emit_all()
