"""E6 — ranking fidelity of the joint-space sampler (Figure 3 analogue).

The second motivating use case of the paper is ranking a handful of vertices
(community cores, candidate relays) by betweenness.  The experiment draws a
mixed-centrality reference set from each dataset family, ranks it

* with the joint-space MH sampler (scores = average relative betweenness),
* with the uniform-source baseline (estimate all |R| scores directly), and
* with the Riondato–Kornaropoulos path sampler,

and reports Spearman / Kendall correlation and top-k accuracy against the
exact ranking.
"""

from __future__ import annotations

import pytest

from harness import BENCH_DATASETS, bench_seed, bench_size, emit_table

from repro.analysis import ranking_report
from repro.datasets import load_dataset, pick_reference_set
from repro.exact import betweenness_of_vertex
from repro.mcmc import JointSpaceMHSampler
from repro.samplers import RiondatoKornaropoulosSampler, UniformSourceSampler

SET_SIZE = 6
JOINT_CHAIN_LENGTH = 6000
BASELINE_SAMPLES = 300


def _experiment_rows():
    rows = []
    for dataset in BENCH_DATASETS:
        graph = load_dataset(dataset, size=bench_size(), seed=bench_seed())
        refs = pick_reference_set(graph, SET_SIZE, seed=bench_seed())
        exact = {v: betweenness_of_vertex(graph, v) for v in refs}

        joint = JointSpaceMHSampler().estimate_relative(
            graph, refs, JOINT_CHAIN_LENGTH, seed=bench_seed()
        )
        joint_scores = {
            v: sum(joint.relative[v][w] for w in refs if w != v) for v in refs
        }

        uniform = UniformSourceSampler().estimate_all(graph, BASELINE_SAMPLES, seed=bench_seed())
        rk = RiondatoKornaropoulosSampler().estimate_all(
            graph, BASELINE_SAMPLES, seed=bench_seed()
        )

        for method, scores in (
            ("mh-joint", joint_scores),
            ("uniform-source", uniform.restricted_to(refs)),
            ("rk-paths", rk.restricted_to(refs)),
        ):
            report = ranking_report(scores, exact, k=3)
            rows.append(
                {
                    "dataset": dataset,
                    "method": method,
                    "|R|": SET_SIZE,
                    "spearman": report["spearman"],
                    "kendall": report["kendall"],
                    "top3_accuracy": report["top_k_accuracy"],
                }
            )
    return rows


@pytest.mark.benchmark(group="e6")
def test_e6_ranking_fidelity(benchmark):
    """Regenerate the E6 table and time one joint ranking."""
    rows = _experiment_rows()
    emit_table(
        "E6",
        "ranking fidelity against the exact betweenness ranking",
        rows,
        ["dataset", "method", "|R|", "spearman", "kendall", "top3_accuracy"],
    )

    graph = load_dataset("collaboration", size=bench_size(), seed=bench_seed())
    refs = pick_reference_set(graph, SET_SIZE, seed=bench_seed())
    sampler = JointSpaceMHSampler()
    benchmark.pedantic(
        lambda: sampler.estimate_relative(graph, refs, 1000, seed=bench_seed()).ranking(),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["rows"] = len(rows)
    joint_rows = [row for row in rows if row["method"] == "mh-joint"]
    assert all(row["spearman"] > 0.0 for row in joint_rows)
