"""E12 — parallel multi-chain MCMC receipt.

Four measurements on the reference Barabási–Albert graph:

* **K-chain speedup at equal total samples** — the baseline is one legacy
  sequential MH chain (no engine knobs: per-source kernels, no prefetch);
  the K-chain rows run :class:`repro.mcmc.multichain.MultiChainMHSampler`
  with ``n_jobs=4`` and a probe-calibrated ``batch_size``, splitting the
  *same total budget* over K chains.  The expectation this benchmark guards
  is **K-chain >= 2x the single legacy chain** at the best K on BA(5000, 3).
  Each row stamps the cross-chain diagnostics (split-R̂, pooled ESS, mean
  acceptance rate) next to its wall-clock, and ``cpu_count`` is recorded so
  a reader can attribute how much of the ratio came from process
  parallelism versus the batched prefetch kernels.
* **determinism** — the pooled fixed-seed K=4 estimate is asserted
  bit-identical across ``n_jobs`` ∈ {1, 2, 4} (the ordered-reduce promise),
  and the K=1 driver is asserted bit-identical to the legacy sampler.
* **adaptive early-stop** — the split-R̂-driven mode against a generous
  budget: iterations actually spent, the adopted burn-in and the final R̂.
* **batch-size autotune** — the :mod:`repro.execution.autotune` probe
  timings per candidate and the size it calibrates, which is the
  ``batch_size`` the K-chain rows run.

Run directly (``python benchmarks/bench_e12_multichain.py``) or through
pytest with the other ``bench_e*`` modules.  ``REPRO_BENCH_SIZE=tiny`` (the
default) uses a smaller graph for smoke runs; the committed receipt under
``benchmarks/results/`` is produced with ``REPRO_BENCH_SIZE=small`` — the
BA(5000, 3) configuration of the acceptance criterion.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.execution.autotune import calibrate_batch_size, probe_batch_sizes
from repro.graphs import barabasi_albert_graph
from repro.graphs.csr import np
from repro.mcmc.multichain import MultiChainMHSampler
from repro.mcmc.single import SingleSpaceMHSampler

#: Graph size per REPRO_BENCH_SIZE tier (attachment parameter fixed at 3;
#: ``small`` is the BA(5000, 3) acceptance configuration).
GRAPH_SIZES = {"tiny": 600, "small": 5000, "medium": 5000}
#: Total sampling budget shared by every chain configuration of a tier.
TOTAL_SAMPLES = {"tiny": 96, "small": 4096, "medium": 8192}
#: Chain counts compared against the single legacy chain.
CHAIN_COUNTS = (1, 2, 4, 8)
#: Worker processes of the K-chain rows and the adaptive row.
BENCH_JOBS = 4
#: n_jobs values of the determinism check.
JOBS = (1, 2, 4)


def _graph_size() -> int:
    return GRAPH_SIZES.get(bench_size(), GRAPH_SIZES["tiny"])


def _total_samples() -> int:
    return TOTAL_SAMPLES.get(bench_size(), TOTAL_SAMPLES["tiny"])


def _bench_graph():
    graph = barabasi_albert_graph(_graph_size(), 3, seed=bench_seed())
    graph.csr()  # take the snapshot outside every timed region
    return graph, graph.vertices()[0]  # an early BA vertex: hub, positive BC


def _chain_rows(batch_size: int):
    graph, r = _bench_graph()
    total = _total_samples()

    start = time.perf_counter()
    baseline = SingleSpaceMHSampler(backend="csr").estimate(
        graph, r, total, seed=bench_seed()
    )
    baseline_seconds = time.perf_counter() - start
    rows = [
        {
            "engine": "legacy 1-chain",
            "chains": 1,
            "n_jobs": 1,
            "total_samples": total,
            "seconds": baseline_seconds,
            "speedup": 1.0,
            "estimate": baseline.estimate,
            "rhat": None,
            "ess": None,
            "acceptance": baseline.diagnostics["acceptance_rate"],
        }
    ]
    for k in CHAIN_COUNTS:
        sampler = MultiChainMHSampler(
            n_chains=k, n_jobs=BENCH_JOBS, backend="csr", batch_size=batch_size
        )
        start = time.perf_counter()
        estimate = sampler.estimate(graph, r, total, seed=bench_seed())
        seconds = time.perf_counter() - start
        diag = estimate.diagnostics
        rows.append(
            {
                "engine": "multichain",
                "chains": k,
                "n_jobs": BENCH_JOBS,
                "total_samples": total,
                "seconds": seconds,
                "speedup": baseline_seconds / seconds if seconds > 0 else float("inf"),
                "estimate": estimate.estimate,
                "rhat": diag["rhat"],
                "ess": diag["ess"],
                "acceptance": diag["acceptance_rate"],
            }
        )
    return rows


def _determinism_rows(batch_size: int):
    graph, r = _bench_graph()
    total = min(_total_samples(), 512)  # the identity check needs no scale
    estimates = []
    for n_jobs in JOBS:
        sampler = MultiChainMHSampler(
            n_chains=4, n_jobs=n_jobs, backend="csr", batch_size=batch_size
        )
        estimates.append(sampler.estimate(graph, r, total, seed=bench_seed()).estimate)
    identical = all(value == estimates[0] for value in estimates)
    assert identical, f"fixed-seed pooled estimates differ across n_jobs: {estimates}"

    legacy = SingleSpaceMHSampler(backend="csr").estimate(
        graph, r, total, seed=bench_seed()
    )
    single = MultiChainMHSampler(n_chains=1, backend="csr").estimate(
        graph, r, total, seed=bench_seed()
    )
    legacy_identical = single.estimate == legacy.estimate
    assert legacy_identical, (
        f"K=1 driver diverged from the legacy sampler: "
        f"{single.estimate} != {legacy.estimate}"
    )
    return [
        {
            "check": "pooled K=4 estimate, seed fixed",
            "grid": "n_jobs " + "/".join(str(j) for j in JOBS),
            "bit_identical": identical,
            "value": estimates[0],
        },
        {
            "check": "K=1 driver vs legacy sequential sampler",
            "grid": "n_chains 1",
            "bit_identical": legacy_identical,
            "value": single.estimate,
        },
    ]


def _adaptive_row(batch_size: int):
    graph, r = _bench_graph()
    budget = _total_samples() * 2  # generous: let the R-hat gate stop the run
    sampler = MultiChainMHSampler(
        n_chains=4,
        n_jobs=BENCH_JOBS,
        backend="csr",
        batch_size=batch_size,
        rhat_target=1.05,
    )
    start = time.perf_counter()
    estimate = sampler.estimate(graph, r, budget, seed=bench_seed())
    seconds = time.perf_counter() - start
    diag = estimate.diagnostics
    return {
        "rhat_target": 1.05,
        "budget": budget,
        "samples_spent": estimate.samples,
        "converged": diag["converged"],
        "rounds": diag["rounds"],
        "burn_in": diag["burn_in"],
        "rhat": diag["rhat"],
        "seconds": seconds,
    }


def _autotune_rows():
    graph, _ = _bench_graph()
    timings = probe_batch_sizes(graph, probe_sources=min(32, _graph_size()), repeats=2)
    chosen = calibrate_batch_size(graph, probe_sources=min(32, _graph_size()), repeats=2)
    return chosen, [
        {
            "batch_size": size,
            "probe_seconds": seconds,
            "chosen": "<--" if size == chosen else "",
        }
        for size, seconds in timings
    ]


CHAIN_COLUMNS = [
    "engine", "chains", "n_jobs", "total_samples", "seconds", "speedup",
    "estimate", "rhat", "ess", "acceptance",
]
DETERMINISM_COLUMNS = ["check", "grid", "bit_identical", "value"]
ADAPTIVE_COLUMNS = [
    "rhat_target", "budget", "samples_spent", "converged", "rounds",
    "burn_in", "rhat", "seconds",
]
AUTOTUNE_COLUMNS = ["batch_size", "probe_seconds", "chosen"]


def _emit_all():
    size = _graph_size()
    chosen_batch, autotune_rows = _autotune_rows()
    emit_table(
        "E12-autotune",
        f"batch-size probe on a BA({size}, 3) graph (calibrated: {chosen_batch})",
        autotune_rows,
        AUTOTUNE_COLUMNS,
    )
    chain_rows = _chain_rows(chosen_batch)
    emit_table(
        "E12",
        f"multi-chain MH vs one legacy chain on a BA({size}, 3) graph "
        f"(equal total samples, cpu_count={multiprocessing.cpu_count()})",
        chain_rows,
        CHAIN_COLUMNS,
    )
    emit_table(
        "E12-determinism",
        "fixed-seed bit-identity of the pooled estimate",
        _determinism_rows(chosen_batch),
        DETERMINISM_COLUMNS,
    )
    emit_table(
        "E12-adaptive",
        f"split-R-hat early stop on a BA({size}, 3) graph",
        [_adaptive_row(chosen_batch)],
        ADAPTIVE_COLUMNS,
    )
    return chain_rows


@pytest.mark.skipif(np is None, reason="the multi-chain engine benchmark requires numpy")
@pytest.mark.benchmark(group="e12")
def test_e12_multichain(benchmark):
    """Regenerate the E12 tables and time one pooled multi-chain estimate."""
    chain_rows = _emit_all()

    graph, r = _bench_graph()
    sampler = MultiChainMHSampler(n_chains=4, backend="csr", batch_size=16)
    benchmark.pedantic(
        lambda: sampler.estimate(graph, r, 64, seed=bench_seed()),
        rounds=3,
        iterations=1,
    )
    best = max(row["speedup"] for row in chain_rows if row["engine"] == "multichain")
    benchmark.extra_info["best_multichain_speedup"] = best
    # The emitted table is the receipt for the >= 2x expectation at
    # REPRO_BENCH_SIZE=small; at tiny sizes the fixed pool cost dominates a
    # sub-second workload, so the pytest entry point only sanity-checks the
    # engine end to end (the determinism assertions inside _emit_all are the
    # hard gate at every size).
    if bench_size() != "tiny":
        assert best > 1.0, (
            f"multi-chain MH is not faster than the legacy chain at all "
            f"({best:.2f}x on BA({_graph_size()}, 3))"
        )


def main() -> None:
    if np is None:
        raise SystemExit("the multi-chain engine benchmark requires numpy")
    chain_rows = _emit_all()
    best = max(row["speedup"] for row in chain_rows if row["engine"] == "multichain")
    print(f"best multi-chain speedup: {best:.2f}x (target: >= 2x at REPRO_BENCH_SIZE=small)")


if __name__ == "__main__":
    main()
