"""E14 — persistent execution runtime / warm-session serving receipt.

The PR 4 state of the library answered every query cold: ``run_sharded``
built and tore down a multiprocessing pool per call, the shared dependency
arena lived for exactly one run, and every request re-shipped the CSR
snapshot to fresh workers.  The persistent runtime
(:mod:`repro.execution.runtime` behind
:class:`repro.centrality.session.BetweennessSession`) amortises all of it
across a session; this benchmark is the receipt, on the reference BA graph
with a 32-query mixed serving workload (single-vertex MH estimates,
relative-betweenness sets and top-k rankings, with the repeats a serving
workload actually sees — dashboards poll, users retry, hot vertices stay
hot):

* **E14 (throughput)** — the identical fixed-seed workload answered twice:
  once *cold* (one fresh API call per query — per-call pool, per-call
  arena) and once *warm* (one session).  The acceptance property is
  ``cold_seconds / warm_seconds >= 2`` at the receipt size, with
  ``cpu_count`` stamped so pool-spawn versus cache-hit contributions stay
  attributable.
* **E14-identity** — every one of the 32 warm answers is asserted
  bit-identical to its cold twin (per-request rng streams derive from the
  request seed, never from session state; warm caches serve vectors that
  are bit-identical to recomputation).
* **Zero cross-request redundancy** — for every repeated query template the
  warm repeat performs **0** Brandes passes (``redundant_passes`` column):
  a dependency vector computed for query 1 is a cache hit for queries
  2..N through the persistent arena and the warm worker caches.

Run directly (``python benchmarks/bench_e14_session.py``) or through pytest
with the other ``bench_e*`` modules.  ``REPRO_BENCH_SIZE=tiny`` (the
default) uses a smaller graph for smoke runs; the committed receipt under
``benchmarks/results/`` is produced with ``REPRO_BENCH_SIZE=small`` — the
BA(5000, 3) configuration of the acceptance criterion.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.centrality import BetweennessSession, betweenness_single, relative_betweenness
from repro.execution import ExecutionPlan
from repro.execution.shared_cache import shared_memory_available
from repro.graphs import barabasi_albert_graph
from repro.graphs.csr import np

#: Graph size per REPRO_BENCH_SIZE tier (attachment parameter fixed at 3;
#: ``small`` is the BA(5000, 3) acceptance configuration).
GRAPH_SIZES = {"tiny": 600, "small": 5000, "medium": 5000}
#: Chain budget of each MH estimate query / joint budget of each set query.
EST_SAMPLES = {"tiny": 48, "small": 96, "medium": 192}
SET_SAMPLES = {"tiny": 48, "small": 96, "medium": 192}
#: Execution knobs every query runs under (cold and warm identically).
BENCH_JOBS = 2
BATCH_SIZE = 16
CHAINS = 2
#: Persistent-arena rows of the warm session (ample for the workload's
#: unique sources at every size; the cold path sizes its per-call arenas
#: from each run's own budget as always).
ARENA_CAPACITY = 4096
#: The warm-over-cold throughput target of the acceptance criterion.
SPEEDUP_TARGET = 2.0


def _graph_size() -> int:
    return GRAPH_SIZES.get(bench_size(), GRAPH_SIZES["tiny"])


def _bench_graph():
    graph = barabasi_albert_graph(_graph_size(), 3, seed=bench_seed())
    graph.csr()  # take the snapshot outside every timed region
    return graph


def _workload(graph):
    """The 32-query mixed serving workload (8 estimate templates x2, 2
    relative templates x4, 2 ranking templates x4), deterministically
    interleaved the way traffic arrives: repeats spread out, kinds mixed."""
    v = graph.vertices()
    est = EST_SAMPLES.get(bench_size(), EST_SAMPLES["tiny"])
    rel = SET_SAMPLES.get(bench_size(), SET_SAMPLES["tiny"])
    estimates = [
        ("estimate", {"vertex": v[i], "samples": est, "seed": 100 + i})
        for i in range(8)
    ]
    relatives = [
        ("relative", {"vertices": [v[0], v[3], v[9], v[17]], "samples": rel, "seed": 50}),
        ("relative", {"vertices": [v[1], v[5], v[28]], "samples": rel, "seed": 51}),
    ]
    rankings = [
        ("ranking", {"vertices": [v[i] for i in range(12)], "k": 5, "samples": rel, "seed": 60}),
        ("ranking", {"vertices": [v[i] for i in range(12, 24)], "k": 5, "samples": rel, "seed": 61}),
    ]
    queries = []
    for round_index in range(4):
        if round_index < 2:
            queries.extend(estimates[round_index * 4 : round_index * 4 + 4])
        else:
            queries.extend(estimates[(round_index - 2) * 4 : (round_index - 2) * 4 + 4])
        queries.append(relatives[round_index % 2])
        queries.append(relatives[(round_index + 1) % 2])
        queries.append(rankings[round_index % 2])
        queries.append(rankings[(round_index + 1) % 2])
    assert len(queries) == 32
    return queries


def _cold_answer(graph, kind, spec):
    """One fresh API call — per-call pool, per-call arena, cold oracle."""
    if kind == "estimate":
        result = betweenness_single(
            graph,
            spec["vertex"],
            method="mh",
            samples=spec["samples"],
            seed=spec["seed"],
            backend="csr",
            batch_size=BATCH_SIZE,
            n_jobs=BENCH_JOBS,
            n_chains=CHAINS,
            shared_cache=True,
        )
        return result.estimate, result.diagnostics.get("evaluations")
    estimate = relative_betweenness(
        graph,
        spec["vertices"],
        samples=spec["samples"],
        seed=spec["seed"],
        backend="csr",
        batch_size=BATCH_SIZE,
        n_jobs=BENCH_JOBS,
        n_chains=CHAINS,
        shared_cache=True,
    )
    evaluations = estimate.diagnostics.get("evaluations")
    if kind == "ranking":
        return estimate.ranking()[: spec["k"]], evaluations
    return estimate.ratios, evaluations


def _warm_answer(session, kind, spec):
    """The same query through the warm session."""
    if kind == "estimate":
        result = session.estimate(
            spec["vertex"],
            method="mh",
            samples=spec["samples"],
            seed=spec["seed"],
            n_chains=CHAINS,
        )
        return result.estimate, result.diagnostics.get("evaluations")
    estimate = session.relative(
        spec["vertices"], samples=spec["samples"], seed=spec["seed"], n_chains=CHAINS
    )
    evaluations = estimate.diagnostics.get("evaluations")
    if kind == "ranking":
        return estimate.ranking()[: spec["k"]], evaluations
    return estimate.ratios, evaluations


def _spec_key(kind, spec):
    if kind == "estimate":
        return (kind, spec["vertex"], spec["samples"], spec["seed"])
    return (kind, tuple(spec["vertices"]), spec["samples"], spec["seed"])


def _run_workloads():
    graph = _bench_graph()
    queries = _workload(graph)

    cold_answers = []
    cold_start = time.perf_counter()
    for kind, spec in queries:
        cold_answers.append(_cold_answer(graph, kind, spec))
    cold_seconds = time.perf_counter() - cold_start

    plan = ExecutionPlan(backend="csr", batch_size=BATCH_SIZE, n_jobs=BENCH_JOBS)
    warm_answers = []
    warm_start = time.perf_counter()
    with BetweennessSession(graph, plan, arena_capacity=ARENA_CAPACITY) as session:
        for kind, spec in queries:
            warm_answers.append(_warm_answer(session, kind, spec))
        arena = session.stats()["context"]["arena"]
    warm_seconds = time.perf_counter() - warm_start

    identity_rows = []
    seen = set()
    redundant_passes = 0
    repeat_queries = 0
    for (kind, spec), cold, warm in zip(queries, cold_answers, warm_answers):
        identical = warm[0] == cold[0]
        assert identical, (
            f"warm answer diverged from the cold path for {kind} {spec}: "
            f"{warm[0]!r} != {cold[0]!r}"
        )
        key = _spec_key(kind, spec)
        repeat = key in seen
        seen.add(key)
        if repeat:
            repeat_queries += 1
            redundant_passes += warm[1] or 0
        identity_rows.append(
            {
                "op": kind,
                "repeat": repeat,
                "bit_identical": identical,
                "cold_evaluations": cold[1],
                "warm_evaluations": warm[1],
            }
        )

    throughput_row = {
        "queries": len(queries),
        "unique_templates": len(seen),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
        "repeat_queries": repeat_queries,
        "redundant_passes": redundant_passes,
        "arena_published": arena["published"] if arena else None,
        "arena_full": arena["full"] if arena else None,
    }
    return throughput_row, identity_rows


THROUGHPUT_COLUMNS = [
    "queries", "unique_templates", "cold_seconds", "warm_seconds", "speedup",
    "repeat_queries", "redundant_passes", "arena_published", "arena_full",
]
IDENTITY_COLUMNS = [
    "op", "repeat", "bit_identical", "cold_evaluations", "warm_evaluations",
]


def _emit_all():
    size = _graph_size()
    throughput_row, identity_rows = _run_workloads()
    emit_table(
        "E14",
        f"warm session vs cold per-call API on a BA({size}, 3) graph "
        f"(32-query mixed workload, K={CHAINS}, n_jobs={BENCH_JOBS}, "
        f"batch={BATCH_SIZE}, cpu_count={multiprocessing.cpu_count()})",
        [throughput_row],
        THROUGHPUT_COLUMNS,
    )
    emit_table(
        "E14-identity",
        "per-query warm-vs-cold bit-identity and Brandes-pass counts",
        identity_rows,
        IDENTITY_COLUMNS,
    )
    return throughput_row


@pytest.mark.skipif(
    np is None or not shared_memory_available(),
    reason="the session benchmark requires numpy and working shared memory",
)
@pytest.mark.benchmark(group="e14")
def test_e14_session(benchmark):
    """Regenerate the E14 tables and time one warm repeat query."""
    row = _emit_all()

    graph = _bench_graph()
    plan = ExecutionPlan(backend="csr", batch_size=BATCH_SIZE, n_jobs=BENCH_JOBS)
    with BetweennessSession(graph, plan, arena_capacity=ARENA_CAPACITY) as session:
        hub = graph.vertices()[0]
        session.estimate(hub, method="mh", samples=48, seed=1, n_chains=CHAINS)
        benchmark.pedantic(
            lambda: session.estimate(hub, method="mh", samples=48, seed=1, n_chains=CHAINS),
            rounds=3,
            iterations=1,
        )
    benchmark.extra_info["speedup"] = row["speedup"]
    # Bit-identity is asserted inside _run_workloads at every size.  The
    # throughput and zero-redundancy gates hold at the receipt sizes only:
    # at tiny scale the absolute per-query cost is milliseconds and pool
    # management noise dominates both sides of the ratio.
    if bench_size() != "tiny":
        assert row["redundant_passes"] == 0, (
            f"warm repeats re-ran {row['redundant_passes']} Brandes passes"
        )
        assert row["speedup"] >= SPEEDUP_TARGET, (
            f"warm session speedup {row['speedup']:.2f}x below the "
            f"{SPEEDUP_TARGET}x target"
        )


def main() -> None:
    if np is None or not shared_memory_available():
        raise SystemExit(
            "the session benchmark requires numpy and working shared memory"
        )
    row = _emit_all()
    print(
        f"warm session: {row['speedup']:.2f}x over cold per-call "
        f"(target: >= {SPEEDUP_TARGET}x at REPRO_BENCH_SIZE=small), "
        f"{row['redundant_passes']} redundant Brandes passes across "
        f"{row['repeat_queries']} repeat queries"
    )


if __name__ == "__main__":
    main()
