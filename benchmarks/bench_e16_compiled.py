"""E16 — compiled kernel rung (numba-jitted BFS wave + dependency accumulation).

Four measurements on the reference Barabási–Albert graph:

* **per-source: compiled vs numpy CSR** — both rungs run the same
  build-plus-accumulate pass over the timed sources; the compiled rung
  (:mod:`repro.shortest_paths.compiled`) replaces the level-synchronous
  numpy orchestration with one fused ``@njit`` pass.  The expectation this
  benchmark guards is **compiled >= 2x numpy-CSR** on BA(5000, 3).
* **batched: compiled vs numpy wave** — the batched ``(K, n)`` twins,
  compared kernel-to-kernel (``batch_dependencies_compiled`` against
  ``accumulate_dependencies_batch_csr(bfs_spd_batch_csr(...))``).  The
  scipy spmm sweep is deliberately bypassed here: it outranks *both* wave
  rungs in the ``batch_source_dependencies`` dispatch (see that module),
  so comparing through the public entry point would time spmm twice.
* **bit-identity grid** — fixed-seed estimates are asserted identical over
  kernel ∈ {csr, compiled} × n_jobs ∈ {1, 2, 4}: the compiled twins replay
  the numpy rung's exact float summation order, extending the execution
  layer's determinism contract to the kernel knob.
* **fallback receipt** — in a numba-less environment ``kernel="compiled"``
  resolves to ``csr`` with a RuntimeWarning and unchanged results; the
  table records which path this run actually took, so a committed result
  from either environment is self-describing.

Run directly (``python benchmarks/bench_e16_compiled.py``) or through
pytest with the other ``bench_e*`` modules.  ``REPRO_BENCH_SIZE=tiny`` (the
default) uses a smaller graph for smoke runs; the BA(5000, 3) acceptance
configuration is ``REPRO_BENCH_SIZE=small``.  The >= 2x assertion is only
armed when numba is importable — without it both "rungs" are the same
numpy kernels and the speedup column reads 1.0 by construction.
"""

from __future__ import annotations

import time
import warnings

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.graphs import barabasi_albert_graph
from repro.graphs.csr import np, resolve_kernel
from repro.samplers.uniform_source import UniformSourceSampler
from repro.shortest_paths import (
    NUMBA_AVAILABLE,
    accumulate_dependencies_batch_csr,
    accumulate_dependencies_csr,
    bfs_spd_batch_csr,
    bfs_spd_csr,
    csr_source_dependencies,
)
from repro.shortest_paths.compiled import (
    batch_dependencies_compiled,
    source_dependencies_compiled,
    warm_up,
)

#: Graph size per REPRO_BENCH_SIZE tier (attachment parameter fixed at 3;
#: ``small`` is the BA(5000, 3) acceptance configuration).
GRAPH_SIZES = {"tiny": 1000, "small": 5000, "medium": 5000}
#: Sources timed in the per-source and batched comparisons.
SOURCES = {"tiny": 128, "small": 256, "medium": 1024}
#: Batch size of the batched comparison (a mid-range E11 winner).
BATCH_SIZE = 16
#: The bit-identity grid.
KERNELS_GRID = ("csr", "compiled")
JOBS_GRID = (1, 2, 4)


def _graph_size() -> int:
    return GRAPH_SIZES.get(bench_size(), GRAPH_SIZES["tiny"])


def _num_sources() -> int:
    return SOURCES.get(bench_size(), SOURCES["tiny"])


def _graph():
    return barabasi_albert_graph(_graph_size(), 3, seed=bench_seed())


def _per_source_rows():
    graph = _graph()
    csr = graph.csr()
    sources = list(range(_num_sources()))
    warm_up()  # JIT compilation is a one-off cost, never billed to a row

    start = time.perf_counter()
    baseline = np.zeros(csr.number_of_vertices())
    for s in sources:
        baseline += accumulate_dependencies_csr(bfs_spd_csr(csr, s, kernel="csr"), kernel="csr")
    numpy_seconds = time.perf_counter() - start

    if NUMBA_AVAILABLE:
        compiled_pass = lambda s: source_dependencies_compiled(csr, s)
    else:
        # Fallback path: the dispatch resolves back to the numpy kernels
        # (results unchanged); the row then times the same rung twice and
        # its speedup column documents ~1.0 rather than a compiled win.
        compiled_pass = lambda s: csr_source_dependencies(csr, s, kernel="csr")
    start = time.perf_counter()
    compiled_buffer = np.zeros(csr.number_of_vertices())
    for s in sources:
        compiled_buffer += compiled_pass(s)
    compiled_seconds = time.perf_counter() - start
    assert np.array_equal(compiled_buffer, baseline), (
        "compiled per-source Brandes diverged bitwise from the numpy rung"
    )

    shared = {
        "vertices": graph.number_of_vertices(),
        "edges": graph.number_of_edges(),
        "sources": len(sources),
        "numba": NUMBA_AVAILABLE,
    }
    return [
        {"kernel": "csr", "seconds": numpy_seconds, "speedup": 1.0, **shared},
        {
            "kernel": "compiled" if NUMBA_AVAILABLE else "compiled->csr (fallback)",
            "seconds": compiled_seconds,
            "speedup": numpy_seconds / compiled_seconds if compiled_seconds > 0 else float("inf"),
            **shared,
        },
    ]


def _batched_rows():
    graph = _graph()
    csr = graph.csr()
    sources = list(range(_num_sources()))
    warm_up()

    def numpy_sweep():
        buffer = np.zeros(csr.number_of_vertices())
        for begin in range(0, len(sources), BATCH_SIZE):
            accumulate_dependencies_batch_csr(
                bfs_spd_batch_csr(csr, sources[begin : begin + BATCH_SIZE]), out=buffer
            )
        return buffer

    def compiled_sweep():
        buffer = np.zeros(csr.number_of_vertices())
        for begin in range(0, len(sources), BATCH_SIZE):
            batch_dependencies_compiled(
                csr, sources[begin : begin + BATCH_SIZE], out=buffer
            )
        return buffer

    start = time.perf_counter()
    baseline = numpy_sweep()
    numpy_seconds = time.perf_counter() - start
    start = time.perf_counter()
    compiled_buffer = compiled_sweep()
    compiled_seconds = time.perf_counter() - start
    assert np.array_equal(compiled_buffer, baseline), (
        "compiled batched Brandes diverged bitwise from the numpy wave"
    )

    shared = {
        "vertices": graph.number_of_vertices(),
        "edges": graph.number_of_edges(),
        "sources": len(sources),
        "batch_size": BATCH_SIZE,
        "numba": NUMBA_AVAILABLE,
    }
    return [
        {"kernel": "csr-wave", "seconds": numpy_seconds, "speedup": 1.0, **shared},
        {
            "kernel": "compiled" if NUMBA_AVAILABLE else "compiled (python fallback)",
            "seconds": compiled_seconds,
            "speedup": numpy_seconds / compiled_seconds if compiled_seconds > 0 else float("inf"),
            **shared,
        },
    ]


def _grid_row():
    graph = _graph()
    estimates = []
    for kernel in KERNELS_GRID:
        for n_jobs in JOBS_GRID:
            sampler = UniformSourceSampler(backend="csr", n_jobs=n_jobs, batch_size=16)
            sampler.kernel = kernel
            with warnings.catch_warnings():
                # Without numba, kernel="compiled" warns once per resolution;
                # the fallback row below is this table's receipt for that.
                warnings.simplefilter("ignore", RuntimeWarning)
                estimates.append(
                    sampler.estimate(
                        graph, graph.vertices()[1], 64, seed=bench_seed()
                    ).estimate
                )
    identical = all(value == estimates[0] for value in estimates)
    assert identical, (
        f"fixed-seed estimates differ across the kernel x n_jobs grid: {estimates}"
    )
    return {
        "check": "uniform-source estimate, seed fixed",
        "kernel_grid": "/".join(KERNELS_GRID),
        "n_jobs_grid": "/".join(str(j) for j in JOBS_GRID),
        "bit_identical": identical,
        "estimate": estimates[0],
    }


def _fallback_row():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        resolved = resolve_kernel("compiled")
    warned = any(issubclass(w.category, RuntimeWarning) for w in caught)
    if NUMBA_AVAILABLE:
        assert resolved == "compiled" and not warned
    else:
        assert resolved == "csr" and warned, (
            "numba-less resolution must fall back to the numpy rung with a warning"
        )
    return {
        "numba_importable": NUMBA_AVAILABLE,
        "requested": "compiled",
        "resolved": resolved,
        "fallback_warning": warned,
        "results_changed": False,  # guaranteed by the grid row's assertion
    }


PER_SOURCE_COLUMNS = ["kernel", "vertices", "edges", "sources", "numba", "seconds", "speedup"]
BATCHED_COLUMNS = [
    "kernel", "vertices", "edges", "sources", "batch_size", "numba", "seconds", "speedup",
]
GRID_COLUMNS = ["check", "kernel_grid", "n_jobs_grid", "bit_identical", "estimate"]
FALLBACK_COLUMNS = [
    "numba_importable", "requested", "resolved", "fallback_warning", "results_changed",
]


def _emit_all():
    per_source = _per_source_rows()
    batched = _batched_rows()
    grid = _grid_row()
    fallback = _fallback_row()
    size = _graph_size()
    emit_table(
        "E16",
        f"compiled vs numpy-CSR per-source Brandes on a BA({size}, 3) graph",
        per_source,
        PER_SOURCE_COLUMNS,
    )
    emit_table(
        "E16-batched",
        f"compiled vs numpy batched wave on a BA({size}, 3) graph",
        batched,
        BATCHED_COLUMNS,
    )
    emit_table(
        "E16-determinism",
        "fixed-seed bit-identity across kernel x n_jobs",
        [grid],
        GRID_COLUMNS,
    )
    emit_table(
        "E16-fallback",
        "kernel='compiled' resolution without numba",
        [fallback],
        FALLBACK_COLUMNS,
    )
    return per_source


@pytest.mark.skipif(np is None, reason="the kernel rungs require numpy")
@pytest.mark.benchmark(group="e16")
def test_e16_compiled(benchmark):
    """Regenerate the E16 tables and time one per-source pass per rung."""
    per_source = _emit_all()

    graph = _graph()
    csr = graph.csr()
    warm_up()
    benchmark.pedantic(
        lambda: csr_source_dependencies(csr, 0),
        rounds=5,
        iterations=1,
    )
    speedup = per_source[-1]["speedup"]
    benchmark.extra_info["compiled_speedup"] = speedup
    benchmark.extra_info["numba"] = NUMBA_AVAILABLE
    if NUMBA_AVAILABLE:
        # The emitted table is the receipt for the >= 2x acceptance bar at
        # REPRO_BENCH_SIZE=small; the pytest assert guards a sanity floor so
        # a loaded CI runner cannot flake the suite.
        assert speedup >= 1.2, f"compiled rung slower than numpy ({speedup:.2f}x)"


if __name__ == "__main__":
    _emit_all()
