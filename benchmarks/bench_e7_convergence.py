"""E7 — chain convergence and diagnostics across topologies (Figure 4 analogue).

For the highest-betweenness vertex of each dataset family the experiment
runs one long chain and reports

* acceptance rate, effective sample size, Geweke z-score,
* the total-variation distance between the empirical visit distribution and
  the Equation 5 stationary distribution,
* the terminal error of the Equation 7 read-out and of the corrected
  read-out (illustrating that the former plateaus at its asymptotic bias
  while the latter keeps shrinking).
"""

from __future__ import annotations

import pytest

from harness import BENCH_DATASETS, bench_seed, bench_size, emit_table

from repro.datasets import load_dataset, pick_targets
from repro.exact import betweenness_of_vertex
from repro.mcmc import SingleSpaceMHSampler, diagnose_chain, mu_of_vertex

CHAIN_LENGTH = 2000


def _experiment_rows():
    rows = []
    for dataset in BENCH_DATASETS:
        graph = load_dataset(dataset, size=bench_size(), seed=bench_seed())
        target = pick_targets(graph, seed=bench_seed())["high"]
        exact = betweenness_of_vertex(graph, target)
        chain = SingleSpaceMHSampler().run_chain(graph, target, CHAIN_LENGTH, seed=bench_seed())
        report = diagnose_chain(chain, graph=graph)
        rows.append(
            {
                "dataset": dataset,
                "vertices": graph.number_of_vertices(),
                "mu": mu_of_vertex(graph, target),
                "acceptance": report.acceptance_rate,
                "ess": report.effective_sample_size,
                "geweke_z": report.geweke_z,
                "tv_to_stationary": report.tv_distance_to_stationary,
                "err_eq7": abs(chain.estimate("chain") - exact),
                "err_unbiased": abs(chain.estimate("proposal") - exact),
                "healthy": report.healthy(),
            }
        )
    return rows


@pytest.mark.benchmark(group="e7")
def test_e7_convergence_diagnostics(benchmark):
    """Regenerate the E7 table and time one diagnostics pass."""
    rows = _experiment_rows()
    emit_table(
        "E7",
        f"chain diagnostics after T={CHAIN_LENGTH} iterations",
        rows,
        [
            "dataset",
            "vertices",
            "mu",
            "acceptance",
            "ess",
            "geweke_z",
            "tv_to_stationary",
            "err_eq7",
            "err_unbiased",
            "healthy",
        ],
    )

    graph = load_dataset("email", size=bench_size(), seed=bench_seed())
    target = pick_targets(graph, seed=bench_seed())["high"]
    sampler = SingleSpaceMHSampler()
    chain = sampler.run_chain(graph, target, 500, seed=bench_seed())
    benchmark.pedantic(lambda: diagnose_chain(chain), rounds=3, iterations=1)
    benchmark.extra_info["rows"] = len(rows)
    # the corrected read-out should never be worse than the Equation 7 one by
    # more than statistical noise at this chain length
    assert all(row["err_unbiased"] <= row["err_eq7"] + 0.05 for row in rows)
