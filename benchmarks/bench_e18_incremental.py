"""E18 — delta-scoped invalidation / warm-state retention across mutations.

Before this change every graph mutation was a version bump that nuked the
whole warm surface: the dependency arena, the interned payloads, every
warm oracle vector.  The change journal (:mod:`repro.graphs.core`) plus
the affected-source rule (:mod:`repro.incremental`) scope the invalidation
to the sources a mutation can actually touch; everything else keeps
serving, bit-identical to a cold recompute on the mutated graph.  This
benchmark is the receipt, on the reference BA graph under a mutate-heavy
serving workload:

* **E18 (throughput)** — the identical fixed-seed query+mutate workload
  answered twice: once under ``invalidation="full"`` (the legacy
  destroy-everything baseline) and once under ``invalidation="delta"``.
  The mutation is a deterministically chosen low-blast-radius edge toggle
  (two non-adjacent neighbours of the top hub, picked to minimise the
  affected-source count), the shape an online serving workload sees —
  small edits against a big warm graph.  Acceptance:
  ``full_seconds / delta_seconds >= 2`` at the receipt size, with every
  per-query answer asserted bit-identical between the two modes.
* **E18-identity** — a warm session driven through a mutation is compared
  against a cold run on the mutated graph across the execution grid
  (backend x kernel rung x n_jobs); every cell must be bit-identical.
* **E18-patch** — the weight-only mutation fast path:
  :meth:`repro.graphs.csr.CSRGraph.patched` must reuse the stale
  snapshot's structure arrays (no rebuild) and match a from-scratch
  snapshot bitwise.
* **E18-serving** — an in-process :class:`repro.serving.ServingApp`
  answers a mutate request; the response receipt and the ``/metrics``
  exposition must agree that warm arena rows were *retained* (> 0), and
  an idempotent repeat must report ``version_changed: false``.

Run directly (``python benchmarks/bench_e18_incremental.py``) or through
pytest with the other ``bench_e*`` modules.  ``REPRO_BENCH_SIZE=tiny``
(the default) uses a smaller graph for smoke runs; the committed receipt
under ``benchmarks/results/`` is produced with ``REPRO_BENCH_SIZE=small``
— the BA(5000, 3) configuration of the acceptance criterion.
"""

from __future__ import annotations

import json
import time

import pytest

from harness import bench_seed, bench_size, emit_table

from repro.centrality import BetweennessSession, betweenness_single
from repro.execution import ExecutionPlan
from repro.execution.shared_cache import shared_memory_available
from repro.graphs import barabasi_albert_graph
from repro.graphs.csr import CSRGraph, np

#: Graph size per REPRO_BENCH_SIZE tier (attachment parameter fixed at 3;
#: ``small`` is the BA(5000, 3) acceptance configuration).
GRAPH_SIZES = {"tiny": 400, "small": 5000, "medium": 5000}
#: Chain budget of each MH estimate query.
EST_SAMPLES = {"tiny": 48, "small": 96, "medium": 96}
#: Query/mutate rounds of the throughput workload.
ROUNDS = {"tiny": 4, "small": 8, "medium": 8}
#: Queries per round (distinct targets, fixed per-template seeds reused
#: across rounds so retained vectors are genuine repeat hits).
QUERIES_PER_ROUND = 4
#: The delta-over-full throughput target of the acceptance criterion.
SPEEDUP_TARGET = 2.0
#: Candidate vertices (hub neighbours) scanned for the lowest-blast toggle.
CANDIDATE_VERTICES = 96


def _graph_size() -> int:
    return GRAPH_SIZES.get(bench_size(), GRAPH_SIZES["tiny"])


def _bench_graph():
    graph = barabasi_albert_graph(_graph_size(), 3, seed=bench_seed())
    graph.csr()  # take the snapshot outside every timed region
    return graph


def _toggle_edge(graph):
    """Pick the deterministic low-blast-radius toggle edge (u, v).

    Scans non-adjacent pairs among the neighbours of the top hubs and
    returns the pair whose insertion flags the fewest affected sources —
    ``|{s : d(s,u) != d(s,v)}|``, the exact quantity the affected-source
    rule of :mod:`repro.incremental` tests, so the scan is a direct
    minimisation of the blast radius.  Deterministic: hubs and neighbours
    are scanned in degree/index order, ties break to the first pair.
    """
    from repro.shortest_paths.bfs import bfs_distances_csr

    csr = graph.csr()
    n = csr.number_of_vertices()
    degrees = csr.indptr[1:] - csr.indptr[:-1]
    hubs = np.argsort(degrees)[::-1][:4]
    candidates = []
    seen = set()
    for hub in hubs:
        for w in csr.indices[csr.indptr[int(hub)] : csr.indptr[int(hub) + 1]]:
            w = int(w)
            if w not in seen:
                seen.add(w)
                candidates.append(w)
    candidates = candidates[:CANDIDATE_VERTICES]
    distances = np.stack(
        [bfs_distances_csr(csr, c)[0] for c in candidates]
    )
    best = None
    for i, a in enumerate(candidates):
        row_a = set(
            int(w) for w in csr.indices[csr.indptr[a] : csr.indptr[a + 1]]
        )
        diff_counts = np.count_nonzero(distances[i + 1 :] != distances[i], axis=1)
        for offset in np.argsort(diff_counts, kind="stable"):
            b = candidates[i + 1 + int(offset)]
            if b in row_a:
                continue
            count = int(diff_counts[offset])
            if best is None or count < best[2]:
                best = (a, b, count)
            break  # later offsets in this row only flag more sources
    assert best is not None, "no non-adjacent candidate pair found"
    vertices = graph.vertices()
    return vertices[best[0]], vertices[best[1]], best[2] / float(n)


def _run_mode(graph_factory, toggle, targets, samples, rounds, invalidation):
    """Run the query+mutate workload under one invalidation mode."""
    graph = graph_factory()
    u, v = toggle
    answers = []
    receipts = []
    start = time.perf_counter()
    with BetweennessSession(
        graph, backend="csr", invalidation=invalidation
    ) as session:
        for round_index in range(rounds):
            for qi, target in enumerate(targets):
                result = session.estimate(
                    target, method="mh", samples=samples, seed=300 + qi
                )
                answers.append(
                    (result.estimate, result.diagnostics.get("evaluations"))
                )
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
            else:
                graph.add_edge(u, v)
            receipts.append(session.refresh_warm_state())
    seconds = time.perf_counter() - start
    return seconds, answers, receipts


def _run_throughput():
    probe = _bench_graph()
    u, v, affected_fraction = _toggle_edge(probe)
    targets = probe.vertices()[:QUERIES_PER_ROUND]
    samples = EST_SAMPLES.get(bench_size(), EST_SAMPLES["tiny"])
    rounds = ROUNDS.get(bench_size(), ROUNDS["tiny"])

    full_seconds, full_answers, _ = _run_mode(
        _bench_graph, (u, v), targets, samples, rounds, "full"
    )
    delta_seconds, delta_answers, delta_receipts = _run_mode(
        _bench_graph, (u, v), targets, samples, rounds, "delta"
    )

    assert len(full_answers) == len(delta_answers)
    for index, (full, delta) in enumerate(zip(full_answers, delta_answers)):
        assert full[0] == delta[0], (
            f"delta-mode answer {index} diverged from the full-mode "
            f"baseline: {delta[0]!r} != {full[0]!r}"
        )

    last = delta_receipts[-1]
    delta_modes = [r.mode for r in delta_receipts]
    full_evals = sum(a[1] or 0 for a in full_answers)
    delta_evals = sum(a[1] or 0 for a in delta_answers)
    row = {
        "rounds": rounds,
        "queries": len(full_answers),
        "mutations": rounds,
        "full_seconds": full_seconds,
        "delta_seconds": delta_seconds,
        "speedup": full_seconds / delta_seconds if delta_seconds else float("inf"),
        "affected_fraction": affected_fraction,
        "delta_mutations": delta_modes.count("delta"),
        "full_passes": full_evals,
        "delta_passes": delta_evals,
        "arena_retained_last": last.arena_rows_retained,
        "oracle_retained_last": last.oracle_vectors_retained,
    }
    return row


# ----------------------------------------------------------------------
# Identity grid
# ----------------------------------------------------------------------
#: (backend, kernel, n_jobs) cells of the warm-vs-cold identity grid.
#: kernel "compiled" degrades to the numpy rung without numba — results
#: unchanged by the kernel contract, so the cell stays meaningful.
IDENTITY_GRID = (
    ("dict", "auto", None),
    ("csr", "csr", None),
    ("csr", "csr", 2),
    ("csr", "compiled", None),
    ("csr", "compiled", 4),
)
IDENTITY_SIZE = 240
IDENTITY_SAMPLES = 32


def _identity_cell(backend, kernel, n_jobs):
    graph = barabasi_albert_graph(IDENTITY_SIZE, 3, seed=bench_seed() + 7)
    u, v, _ = _toggle_edge(graph)
    target = graph.vertices()[5]
    plan = (
        ExecutionPlan(backend=backend, batch_size=16, n_jobs=n_jobs, kernel=kernel)
        if n_jobs is not None
        else None
    )
    with BetweennessSession(graph, plan, backend=backend) as session:
        if plan is None:
            session._sampler("mh").kernel = kernel
        session.estimate(target, method="mh", samples=IDENTITY_SAMPLES, seed=11)
        graph.add_edge(u, v)
        receipt = session.refresh_warm_state()
        warm = session.estimate(
            target, method="mh", samples=IDENTITY_SAMPLES, seed=11
        )
    cold_graph = barabasi_albert_graph(IDENTITY_SIZE, 3, seed=bench_seed() + 7)
    cold_graph.add_edge(u, v)
    cold = betweenness_single(
        cold_graph,
        target,
        method="mh",
        samples=IDENTITY_SAMPLES,
        seed=11,
        backend=backend,
        batch_size=16 if n_jobs is not None else None,
        n_jobs=n_jobs,
        kernel=kernel,
    )
    identical = warm.estimate == cold.estimate
    assert identical, (
        f"warm post-mutation answer diverged from cold at "
        f"(backend={backend}, kernel={kernel}, n_jobs={n_jobs}): "
        f"{warm.estimate!r} != {cold.estimate!r}"
    )
    return {
        "backend": backend,
        "kernel": kernel,
        "n_jobs": n_jobs if n_jobs is not None else 1,
        "invalidation_mode": receipt.mode,
        "bit_identical": identical,
    }


def _run_identity_grid():
    return [_identity_cell(*cell) for cell in IDENTITY_GRID]


# ----------------------------------------------------------------------
# Weight-only patch path
# ----------------------------------------------------------------------
def _run_patch():
    edges = [(i, i + 1, 1.0 + 0.25 * i) for i in range(63)]
    edges += [(i, i + 7, 2.0) for i in range(0, 56, 7)]
    from repro.graphs.core import Graph

    graph = Graph.from_edges(edges, weighted=True)
    before = graph.csr()
    graph.add_edge(3, 4, weight=9.5)  # existing edge, new weight
    after = graph.csr()
    shares_structure = (
        after.indptr is before.indptr and after.indices is before.indices
    )
    rebuilt = CSRGraph.from_graph(graph)
    weights_identical = bool(np.array_equal(after.weights, rebuilt.weights))
    assert shares_structure, "weight-only mutation must take the patched path"
    assert weights_identical, "patched weights must match a from-scratch build"
    return {
        "mutation": "weight-changed",
        "patched_shares_structure": shares_structure,
        "weights_bit_identical": weights_identical,
        "nnz": int(before.indices.shape[0]),
    }


# ----------------------------------------------------------------------
# Serving receipt + /metrics scrape
# ----------------------------------------------------------------------
def _scrape(metrics_text, name):
    for line in metrics_text.splitlines():
        if line.startswith(name):
            return float(line.rsplit(" ", 1)[1])
    return None


def _run_serving():
    from repro.serving import ServingApp, ServingConfig

    graph = _bench_graph()
    u, v, _ = _toggle_edge(graph)
    app = ServingApp(config=ServingConfig(backend="csr"))
    try:
        app.registry.load("bench", graph)
        samples = EST_SAMPLES.get(bench_size(), EST_SAMPLES["tiny"])
        target = graph.vertices()[0]
        body = json.dumps(
            {"vertex": target, "samples": samples, "seed": 5}
        ).encode()
        status = app.dispatch("POST", "/graphs/bench/estimate", body).status
        assert status == 200, f"warming query failed: {status}"
        mutate_body = json.dumps({"add_edges": [[u, v]]}).encode()
        response = app.dispatch("POST", "/graphs/bench/mutate", mutate_body)
        summary = json.loads(response.body)["mutated"]
        receipt = summary["invalidation"]
        repeat = json.loads(
            app.dispatch("POST", "/graphs/bench/mutate", mutate_body).body
        )["mutated"]
        metrics_text = app.dispatch("GET", "/metrics").body.decode()
        scraped_retained = _scrape(
            metrics_text, 'repro_invalidation_arena_rows_retained{graph="bench"}'
        )
        row = {
            "mode": receipt["mode"],
            "version_changed": summary["version_changed"],
            "arena_rows_evicted": receipt["arena_rows_evicted"],
            "arena_rows_retained": receipt["arena_rows_retained"],
            "metrics_rows_retained": scraped_retained,
            "repeat_version_changed": repeat["version_changed"],
            "repeat_mode": repeat["invalidation"]["mode"],
        }
        assert receipt["mode"] == "delta", f"expected delta mode: {receipt!r}"
        assert receipt["arena_rows_retained"] > 0, (
            f"mutate retained no arena rows: {receipt!r}"
        )
        assert scraped_retained == receipt["arena_rows_retained"], (
            "/metrics and the mutate receipt disagree on retained rows"
        )
        assert repeat["version_changed"] is False, (
            "idempotent mutate repeat must not bump the version"
        )
        return row
    finally:
        app.registry.close()


THROUGHPUT_COLUMNS = [
    "rounds", "queries", "mutations", "full_seconds", "delta_seconds",
    "speedup", "affected_fraction", "delta_mutations", "full_passes",
    "delta_passes", "arena_retained_last", "oracle_retained_last",
]
IDENTITY_COLUMNS = [
    "backend", "kernel", "n_jobs", "invalidation_mode", "bit_identical",
]
PATCH_COLUMNS = [
    "mutation", "patched_shares_structure", "weights_bit_identical", "nnz",
]
SERVING_COLUMNS = [
    "mode", "version_changed", "arena_rows_evicted", "arena_rows_retained",
    "metrics_rows_retained", "repeat_version_changed", "repeat_mode",
]


def _emit_all():
    size = _graph_size()
    throughput_row = _run_throughput()
    emit_table(
        "E18",
        f"delta-scoped vs destroy-all invalidation on a BA({size}, 3) graph "
        f"(mutate-heavy warm workload: {QUERIES_PER_ROUND} queries per "
        f"round, one low-blast edge toggle between rounds)",
        [throughput_row],
        THROUGHPUT_COLUMNS,
    )
    emit_table(
        "E18-identity",
        f"warm post-mutation vs cold recompute across the execution grid "
        f"(BA({IDENTITY_SIZE}, 3), one edge insertion mid-session)",
        _run_identity_grid(),
        IDENTITY_COLUMNS,
    )
    emit_table(
        "E18-patch",
        "weight-only mutations take CSRGraph.patched (structure arrays "
        "shared, weights bit-identical to a rebuild)",
        [_run_patch()],
        PATCH_COLUMNS,
    )
    emit_table(
        "E18-serving",
        "mutate receipt and /metrics agree on warm-row retention "
        f"(in-process ServingApp, BA({size}, 3))",
        [_run_serving()],
        SERVING_COLUMNS,
    )
    return throughput_row


@pytest.mark.skipif(
    np is None or not shared_memory_available(),
    reason="the incremental benchmark requires numpy and working shared memory",
)
@pytest.mark.benchmark(group="e18")
def test_e18_incremental(benchmark):
    """Regenerate the E18 tables and time one warm post-mutation query."""
    row = _emit_all()

    graph = _bench_graph()
    u, v, _ = _toggle_edge(graph)
    samples = EST_SAMPLES.get(bench_size(), EST_SAMPLES["tiny"])
    target = graph.vertices()[0]
    with BetweennessSession(graph, backend="csr", invalidation="delta") as session:
        session.estimate(target, method="mh", samples=samples, seed=9)

        def mutate_and_requery():
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
            else:
                graph.add_edge(u, v)
            return session.estimate(target, method="mh", samples=samples, seed=9)

        benchmark.pedantic(mutate_and_requery, rounds=3, iterations=1)
    benchmark.extra_info["speedup"] = row["speedup"]
    # Identity, patch-path and serving-receipt gates are asserted inside
    # the emitters at every size.  The throughput gate holds at the receipt
    # sizes only: at tiny scale per-pass cost is microseconds and session
    # bookkeeping noise dominates both sides of the ratio.
    if bench_size() != "tiny":
        assert row["speedup"] >= SPEEDUP_TARGET, (
            f"delta-scoped invalidation speedup {row['speedup']:.2f}x below "
            f"the {SPEEDUP_TARGET}x target"
        )


def main() -> None:
    if np is None or not shared_memory_available():
        raise SystemExit(
            "the incremental benchmark requires numpy and working shared memory"
        )
    row = _emit_all()
    print(
        f"delta-scoped invalidation: {row['speedup']:.2f}x over destroy-all "
        f"(target: >= {SPEEDUP_TARGET}x at REPRO_BENCH_SIZE=small), "
        f"{row['delta_passes']} vs {row['full_passes']} Brandes passes, "
        f"affected fraction {row['affected_fraction']:.3f}"
    )


if __name__ == "__main__":
    main()
