#!/usr/bin/env python
"""Quickstart: estimate the betweenness of one vertex with the MH sampler.

This example mirrors the first problem of the paper (Section 4.2): given a
network G and a vertex r, estimate BC(r) without computing it for anyone
else.  It

1. builds a synthetic collaboration-style network,
2. picks the highest-betweenness vertex as the target (ground truth computed
   exactly with Brandes, affordable at this size),
3. runs the paper's single-space Metropolis-Hastings sampler and the
   corrected unbiased read-out,
4. compares both against the exact value and against the uniform-source
   baseline, and
5. prints the theoretical sample-size guidance of Equation 14.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Graph,
    betweenness_exact,
    betweenness_single,
    load_dataset,
    mu_of_vertex,
    required_samples,
)
from repro.datasets import pick_targets
from repro.mcmc import SingleSpaceMHSampler, diagnose_chain

SEED = 7
SAMPLES = 400


def main() -> None:
    # Warm-up on a hand-built graph: Graph.from_edges builds a whole graph
    # from one edge list, no add_edge loop needed.
    toy = Graph.from_edges([(0, 1), (1, 2), (2, 3), (1, 3), (3, 4)])
    print(f"warm-up: exact BC of vertex 3 in a {toy.number_of_vertices()}-vertex "
          f"toy graph = {betweenness_exact(toy, [3])[3]:.3f}")

    graph = load_dataset("collaboration", size="tiny", seed=SEED)
    print(f"graph: {graph.number_of_vertices()} vertices, {graph.number_of_edges()} edges")

    target = pick_targets(graph, seed=SEED)["high"]
    exact = betweenness_exact(graph, [target])[target]
    print(f"target vertex: {target}  (exact BC = {exact:.5f})")

    # --- the paper's sampler (Equation 7 read-out) -----------------------
    paper = betweenness_single(graph, target, method="mh", samples=SAMPLES, seed=SEED)
    # --- the corrected, unbiased read-out ---------------------------------
    unbiased = betweenness_single(
        graph, target, method="mh-unbiased", samples=SAMPLES, seed=SEED
    )
    # --- a classic baseline ------------------------------------------------
    baseline = betweenness_single(
        graph, target, method="uniform-source", samples=SAMPLES, seed=SEED
    )

    print(f"\nestimates with {SAMPLES} samples")
    for result in (paper, unbiased, baseline):
        error = abs(result.estimate - exact)
        name = result.method
        if result is paper:
            name += " (Eq. 7)"
        if result is unbiased:
            name += " (unbiased read-out)"
        print(f"  {name:<38} {result.estimate:.5f}   |error| = {error:.5f}")

    # --- chain diagnostics --------------------------------------------------
    sampler = SingleSpaceMHSampler()
    chain = sampler.run_chain(graph, target, SAMPLES, seed=SEED)
    report = diagnose_chain(chain)
    print("\nchain diagnostics")
    print(f"  acceptance rate        {report.acceptance_rate:.3f}")
    print(f"  effective sample size  {report.effective_sample_size:.1f}")
    print(f"  Geweke z-score         {report.geweke_z:+.2f}")
    print(f"  Brandes passes needed  {report.evaluations} (cache hits cover the rest)")

    # --- theoretical guidance (Theorem 1 / Equation 14) ---------------------
    mu = mu_of_vertex(graph, target)
    needed = required_samples(epsilon=0.05, delta=0.1, mu=mu)
    print("\ntheoretical guidance")
    print(f"  mu(r)                                   {mu:.2f}")
    print(f"  chain length for (eps=0.05, delta=0.1)  {needed}")


if __name__ == "__main__":
    main()
