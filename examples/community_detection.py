#!/usr/bin/env python
"""Girvan–Newman community detection driven by the exact edge-betweenness substrate.

The paper's introduction cites Girvan & Newman's algorithm — repeatedly remove
the edge with the highest betweenness — as a motivating application.  This
example runs that loop on a small two-community graph using the library's
exact edge-betweenness implementation and reports the communities found.

Run with:  python examples/community_detection.py
"""

from __future__ import annotations

from repro.exact import edge_betweenness_centrality
from repro.graphs import Graph, planted_partition_graph
from repro.graphs.components import connected_components

SEED = 3
TARGET_COMMUNITIES = 2


def girvan_newman(graph: Graph, target_communities: int) -> list:
    """Remove highest-betweenness edges until the graph splits into the target count."""
    work = graph.copy()
    while True:
        components = connected_components(work)
        if len(components) >= target_communities or work.number_of_edges() == 0:
            return components
        scores = edge_betweenness_centrality(work, normalized=False)
        u, v = max(scores, key=scores.get)
        work.remove_edge(u, v)


def main() -> None:
    graph = planted_partition_graph(2, 12, 0.6, 0.04, seed=SEED)
    print(f"graph: {graph.number_of_vertices()} vertices, {graph.number_of_edges()} edges")

    communities = girvan_newman(graph, TARGET_COMMUNITIES)
    print(f"\nGirvan-Newman found {len(communities)} communities")
    for index, community in enumerate(communities):
        print(f"  community {index}: {sorted(community)}")

    # The planted ground truth is blocks of 12 consecutive labels.
    truth = [set(range(0, 12)), set(range(12, 24))]
    correct = 0
    for community in communities:
        best_overlap = max(len(community & block) for block in truth)
        correct += best_overlap
    print(f"\nvertices assigned to the majority planted block: "
          f"{correct}/{graph.number_of_vertices()}")


if __name__ == "__main__":
    main()
