#!/usr/bin/env python
"""Ranking community core vertices with the joint-space MH sampler.

The paper's introduction motivates single-vertex/relative estimation with
social networks: one often needs the betweenness of the *core vertices of
communities* only, or merely their relative order — not scores for the whole
graph.  This example:

1. builds a planted-partition network (explicit community structure),
2. identifies one "core" vertex per community (the member with the highest
   degree),
3. runs the joint-space Metropolis-Hastings sampler over that reference set,
4. prints the estimated relative betweenness matrix, the pairwise ratio
   estimates, and the induced ranking, and
5. verifies the result against exact Brandes scores (affordable here only
   because the example graph is small).

Run with:  python examples/community_core_ranking.py
"""

from __future__ import annotations

import math

from repro import betweenness_exact, relative_betweenness
from repro.graphs import Graph, planted_partition_graph
from repro.graphs.components import largest_connected_component

SEED = 11
SAMPLES = 8000
N_COMMUNITIES = 3
COMMUNITY_SIZE = 15


def community_of(vertex: int) -> int:
    """The planted-partition generator assigns communities by contiguous blocks."""
    return vertex // COMMUNITY_SIZE


def pick_core_vertices(graph: Graph) -> list:
    """Return the highest-degree member of each community present in the graph."""
    best: dict = {}
    for v in graph.vertices():
        community = community_of(v)
        degree = graph.degree(v)
        current = best.get(community)
        if current is None or degree > current[1]:
            best[community] = (v, degree)
    return [vertex for vertex, _ in sorted(best.values())]


def main() -> None:
    graph = largest_connected_component(
        planted_partition_graph(N_COMMUNITIES, COMMUNITY_SIZE, 0.35, 0.03, seed=SEED)
    )
    print(f"graph: {graph.number_of_vertices()} vertices, {graph.number_of_edges()} edges")

    cores = pick_core_vertices(graph)
    print(f"community core vertices (one per community): {cores}")

    estimate = relative_betweenness(graph, cores, samples=SAMPLES, seed=SEED)
    print(f"\njoint chain: {SAMPLES} iterations, acceptance rate "
          f"{estimate.acceptance_rate:.3f}, samples per core {estimate.sample_counts}")

    print("\nestimated relative betweenness  (rows: ri, columns: rj)")
    header = "        " + "".join(f"{rj:>8}" for rj in cores)
    print(header)
    for ri in cores:
        row = "".join(f"{estimate.relative[ri][rj]:>8.3f}" for rj in cores)
        print(f"  r={ri:<4} {row}")

    exact = betweenness_exact(graph, cores)
    print("\npairwise ratio estimates vs exact ratios")
    for (ri, rj), value in sorted(estimate.ratios.items()):
        if math.isnan(value):
            continue
        exact_ratio = exact[ri] / exact[rj] if exact[rj] > 0 else float("inf")
        print(f"  BC({ri}) / BC({rj}):  estimated {value:6.2f}   exact {exact_ratio:6.2f}")

    ranking = estimate.ranking()
    exact_ranking = sorted(cores, key=lambda v: exact[v], reverse=True)
    print(f"\nestimated ranking: {ranking}")
    print(f"exact ranking:     {exact_ranking}")
    print("exact scores:      "
          + ", ".join(f"BC({v}) = {exact[v]:.4f}" for v in exact_ranking))
    agreement = sum(1 for a, b in zip(ranking, exact_ranking) if a == b) / len(cores)
    print(f"positional agreement: {agreement:.0%}")


if __name__ == "__main__":
    main()
