#!/usr/bin/env python
"""Theorem 2 in practice: µ(r) and the sample-size bound across vertex positions.

Theorem 2 of the paper says that µ(r) — the constant controlling the chain
length needed for an (ε, δ)-guarantee (Equation 14) — stays bounded when r is
a *balanced* vertex separator.  This example measures µ(r) exactly for three
kinds of vertices while the graphs grow:

* the bridge vertex of a barbell graph (balanced separator),
* the middle vertex of a path (balanced separator),
* a vertex next to the end of a path (a separator, but a very unbalanced
  one: one side has Θ(n) vertices, the other side just one).

The first two keep µ(r) — and therefore the required chain length —
essentially constant; the third needs chains that grow linearly with the
graph, exactly the dichotomy Theorem 2 describes.

Run with:  python examples/separator_analysis.py
"""

from __future__ import annotations

from repro.graphs import barbell_graph, path_graph
from repro.graphs.components import is_balanced_separator
from repro.mcmc import mu_statistics, required_samples

EPSILON = 0.05
DELTA = 0.1


def report_row(label: str, graph, vertex) -> None:
    stats = mu_statistics(graph, vertex)
    balanced = is_balanced_separator(graph, vertex)
    chain_length = required_samples(EPSILON, DELTA, stats.mu)
    print(
        f"  {label:<34} n={graph.number_of_vertices():>4}  "
        f"balanced={str(balanced):<5}  mu={stats.mu:>7.2f}  "
        f"chain length={chain_length:>8}"
    )


def main() -> None:
    print(f"target accuracy: epsilon = {EPSILON}, delta = {DELTA}")

    print("\nbarbell bridge vertex (balanced separator):")
    for clique_size in (5, 10, 20, 40):
        graph = barbell_graph(clique_size, 2)
        report_row(f"barbell, cliques of {clique_size}", graph, clique_size)

    print("\npath middle vertex (balanced separator):")
    for n in (11, 21, 41, 81):
        graph = path_graph(n)
        report_row(f"path of {n}", graph, n // 2)

    print("\npath vertex next to the end (unbalanced separator):")
    for n in (11, 21, 41, 81):
        graph = path_graph(n)
        report_row(f"path of {n}", graph, 1)

    print(
        "\nReading: for the balanced separators the chain length stays flat as the"
        "\ngraph grows; for the unbalanced one it grows roughly quadratically in n"
        "\n(mu grows linearly and enters Equation 14 squared) - the dichotomy of"
        "\nTheorem 2."
    )


if __name__ == "__main__":
    main()
