#!/usr/bin/env python
"""MANET-style routing: pick relay nodes by (estimated) betweenness ratio.

Daly & Haahr (cited in the paper's introduction) route messages in mobile
ad-hoc networks by preferring relays with high betweenness.  The full scores
are never needed — only how candidate relays compare to each other.  This
example:

1. builds a random-geometric "wireless" topology (the ``adhoc`` dataset),
2. takes the neighbours of a source node as candidate relays,
3. estimates their pairwise betweenness ratios with the joint-space sampler,
4. picks the relay that dominates the others, and
5. shows that messages routed through the chosen relay reach more of the
   network within a 2-hop budget than through the worst candidate —
   the practical pay-off of ranking by betweenness.

Run with:  python examples/manet_routing.py
"""

from __future__ import annotations

from repro import betweenness_exact, load_dataset, relative_betweenness
from repro.graphs import Graph
from repro.graphs.utils import random_vertex
from repro.shortest_paths import bfs_distances

SEED = 23
SAMPLES = 3000
HOP_BUDGET = 2


def reachable_within(graph: Graph, start, hops: int) -> int:
    """Number of vertices reachable from *start* in at most *hops* hops."""
    distances = bfs_distances(graph, start)
    return sum(1 for d in distances.values() if 0 < d <= hops)


def main() -> None:
    graph = load_dataset("adhoc", size="tiny", seed=SEED)
    print(f"wireless topology: {graph.number_of_vertices()} nodes, "
          f"{graph.number_of_edges()} links")

    # A node with several neighbours acts as the message source.
    source = max(graph.vertices(), key=graph.degree)
    candidates = sorted(graph.neighbors(source))[:5]
    if len(candidates) < 2:
        raise SystemExit("the source node needs at least two neighbours for this demo")
    print(f"source node: {source}; candidate relays: {candidates}")

    estimate = relative_betweenness(graph, candidates, samples=SAMPLES, seed=SEED)
    ranking = estimate.ranking()
    best, worst = ranking[0], ranking[-1]
    print(f"\nestimated relay ranking (best to worst): {ranking}")
    print("pairwise ratios against the chosen relay:")
    for other in candidates:
        if other == best:
            continue
        ratio = estimate.ratios.get((best, other), float("nan"))
        print(f"  BC({best}) / BC({other}) ~= {ratio:.2f}")

    exact = betweenness_exact(graph, candidates)
    exact_best = max(candidates, key=lambda v: exact[v])
    print(f"\nexact best relay (for verification): {exact_best}"
          f"{'  -- matches the estimate' if exact_best == best else ''}")

    covered_best = reachable_within(graph, best, HOP_BUDGET)
    covered_worst = reachable_within(graph, worst, HOP_BUDGET)
    print(f"\nnodes reachable within {HOP_BUDGET} hops")
    print(f"  via estimated-best relay {best}: {covered_best}")
    print(f"  via estimated-worst relay {worst}: {covered_worst}")


if __name__ == "__main__":
    main()
