"""High-level estimation API (the library façade)."""

from repro.centrality.api import (
    DEFAULT_CHAINS,
    MCMC_SINGLE_METHODS,
    SINGLE_VERTEX_METHODS,
    betweenness_exact,
    betweenness_ranking,
    betweenness_single,
    relative_betweenness,
    suggested_chain_length,
)
from repro.centrality.session import BetweennessSession, ThreadSafeSession

__all__ = [
    "SINGLE_VERTEX_METHODS",
    "MCMC_SINGLE_METHODS",
    "DEFAULT_CHAINS",
    "BetweennessSession",
    "ThreadSafeSession",
    "betweenness_single",
    "betweenness_exact",
    "relative_betweenness",
    "betweenness_ranking",
    "suggested_chain_length",
]
