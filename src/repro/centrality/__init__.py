"""High-level estimation API (the library façade)."""

from repro.centrality.api import (
    SINGLE_VERTEX_METHODS,
    betweenness_exact,
    betweenness_ranking,
    betweenness_single,
    relative_betweenness,
    suggested_chain_length,
)

__all__ = [
    "SINGLE_VERTEX_METHODS",
    "betweenness_single",
    "betweenness_exact",
    "relative_betweenness",
    "betweenness_ranking",
    "suggested_chain_length",
]
