"""Warm, multi-query estimation sessions over one graph.

:func:`~repro.centrality.api.betweenness_single` and friends are one-shot:
every call pays full cold-start — a fresh worker pool, the graph re-shipped
to every worker, a fresh dependency arena, a fresh oracle.  A
:class:`BetweennessSession` amortises all of it behind the exact same
estimators: one :class:`~repro.execution.runtime.ExecutionContext` owns a
persistent worker pool, interned worker payloads and a cross-request
dependency arena, so query 1 warms what queries 2..N reuse.

Example
-------
>>> from repro.graphs import barbell_graph
>>> from repro.centrality import BetweennessSession
>>> g = barbell_graph(6, 2)
>>> with BetweennessSession(g) as s:
...     a = s.estimate(6, samples=200, seed=7)
...     b = s.estimate(6, samples=200, seed=7)   # warm: oracle hits
>>> a.estimate == b.estimate
True

Determinism contract
--------------------
A session result is **bit-identical** to the cold per-call API result for
the same knobs and seed: per-request rng streams are derived from the
request's seed (never from session state), and every piece of warm state —
arena rows, oracle caches, installed payloads — serves dependency vectors
that are bit-identical to what a cold run would recompute (the kernel
contract of :mod:`repro.shortest_paths.batch`).  Only work counters
(``evaluations``) and wall-clock move; ``benchmarks/bench_e14_session.py``
is the receipt.

Mutating the session's graph between queries is allowed: the next query
notices the version stamp and re-syncs the warm state before answering —
bit-identical to a cold call on the mutated graph.  The sync is
*delta-scoped* when the graph's change journal proves an affected-source
region (:mod:`repro.incremental`): only affected arena rows and oracle
vectors are evicted, the rest keep serving, and the
:class:`~repro.incremental.InvalidationReceipt` returned by
:meth:`BetweennessSession.refresh_warm_state` itemises what survived.
Retention never changes an answer — the affected region over-approximates
every source whose dependency vector could differ, so retained vectors
are bit-identical to a cold recompute on the mutated graph.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro._rng import RandomState, ensure_rng
from repro.centrality.api import (
    DEFAULT_CHAINS,
    MCMC_SINGLE_METHODS,
    SINGLE_VERTEX_METHODS,
)
from repro.errors import ConfigurationError
from repro.incremental import InvalidationReceipt
from repro.exact.brandes import betweenness_centrality
from repro.exact.single_vertex import betweenness_of_vertex
from repro.execution import ExecutionContext, ExecutionPlan, resolve_plan
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import resolve_backend
from repro.graphs.utils import ensure_connected
from repro.mcmc.joint import JointSpaceMHSampler, RelativeBetweennessEstimate
from repro.mcmc.multichain import MultiChainJointSampler, MultiChainMHSampler
from repro.samplers.base import SingleEstimate

__all__ = ["BetweennessSession", "SessionChain", "ThreadSafeSession"]


class BetweennessSession:
    """A warm execution context plus the estimator registry it serves.

    Parameters
    ----------
    graph:
        The graph every query of this session runs against.  It may be
        mutated between queries — the session invalidates its warm state on
        the next call (see the module docstring) — but must stay connected
        while ``check_connected`` is on (the paper's standing assumption).
    plan:
        Optional :class:`~repro.execution.ExecutionPlan` fixing the
        execution knobs of every query: backend, batch size, worker count,
        multiprocessing start method.  ``None`` resolves from the
        ``REPRO_*`` environment overrides like every estimator does; with
        nothing set, queries run on the legacy sequential paths (the warm
        arena and oracles still apply).
    backend:
        Traversal backend of every query when *plan* is ``None`` (a plan's
        own ``backend`` field wins otherwise).  Lets a sequential session
        force ``"dict"`` / ``"csr"`` without engaging the execution engine
        — an engaged plan switches the MCMC samplers onto the prefetch
        discipline, which a backend choice alone must not do.
    arena_capacity:
        Rows of the persistent dependency arena (``None`` = byte-budget
        heuristic, see :func:`repro.execution.runtime.default_arena_rows`).
    invalidation:
        ``"delta"`` (default; overridable via ``REPRO_INVALIDATION``)
        scopes mutation invalidation to the journal-proved affected
        region; ``"full"`` forces the legacy destroy-everything path.
    check_connected:
        Verify connectivity at session start and again after any mutation.

    Use as a context manager (or call :meth:`close`): the session owns
    worker processes and a shared-memory segment.
    """

    def __init__(
        self,
        graph: Graph,
        plan: Optional[ExecutionPlan] = None,
        *,
        backend: str = "auto",
        arena_capacity: Optional[int] = None,
        invalidation: Optional[str] = None,
        check_connected: bool = True,
    ) -> None:
        self.graph = graph
        self.plan = resolve_plan(plan, backend=backend)
        self.backend = self.plan.backend if self.plan is not None else backend
        self.check_connected = bool(check_connected)
        self._context = ExecutionContext(
            n_jobs=self.plan.n_jobs if self.plan is not None else None,
            mp_context=self.plan.mp_context if self.plan is not None else None,
            arena_capacity=arena_capacity,
            invalidation=invalidation,
        )
        self._estimators: Dict[object, object] = {}
        self._oracles: Dict[object, object] = {}
        self._chains: List["SessionChain"] = []
        self._plan_with_runtime: Optional[ExecutionPlan] = (
            dataclasses.replace(self.plan, runtime=self._context)
            if self.plan is not None
            else None
        )
        self._queries = 0
        self._closed = False
        if self.check_connected:
            ensure_connected(graph)
        # Stamp by reference *and* version: replacing ``session.graph``
        # with a different object must invalidate exactly like a mutation,
        # even when the two graphs happen to share a version number.  The
        # *settled* version is stamped so a session opened (or synced)
        # inside an open batch_mutations() block keeps the batch window
        # pending and re-syncs once the batch closes.
        self._stamped_graph = graph
        self._version = graph.settled_version()
        self._context.refresh(graph)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def context(self) -> ExecutionContext:
        """The session's warm :class:`~repro.execution.runtime.ExecutionContext`."""
        return self._context

    def _begin(self) -> None:
        """Per-query entry: closed-check and graph-change handling."""
        if self._closed:
            raise ConfigurationError("the session has been closed")
        self._sync_graph()
        self._queries += 1

    def _sync_graph(self) -> Optional[InvalidationReceipt]:
        """Reconcile warm state with the graph; return the receipt (``None`` if in sync).

        The graph changed since the last query (mutated, or the ``graph``
        attribute was rebound to another object) exactly when the stamp
        below mismatches.  The context scopes its own invalidation (arena
        rows, payload memo) through the change journal; this method extends
        the same receipt over the state the session owns — warm oracle
        vectors and open :class:`SessionChain` continuations — using the
        identical affected-source mask, so every layer retains or evicts
        the same region.
        """
        if self.graph is self._stamped_graph and self.graph.version == self._version:
            return None
        receipt = self._context.refresh(self.graph)
        if receipt.mode == "delta":
            mask = self._context.last_affected_mask()
            for oracle in self._oracles.values():
                evicted, retained = oracle.apply_delta(mask)
                receipt.oracle_vectors_evicted += evicted
                receipt.oracle_vectors_retained += retained
        else:
            # Full invalidation destroyed the arena: cached oracles hold
            # handles into the dead shared store and must be rebuilt.
            for oracle in self._oracles.values():
                receipt.oracle_vectors_evicted += len(
                    getattr(oracle, "_cache", ()) or ()
                )
            self._oracles.clear()
        for chain in self._chains:
            chain._note_invalidation(receipt)
        if self.check_connected:
            ensure_connected(self.graph)
        self._stamped_graph = self.graph
        # Settled stamp: a query issued inside an open batch_mutations()
        # block must not seal the batch's still-accumulating version, or
        # the post-batch query would skip the rest of the window and serve
        # stale warm vectors.  Re-consuming the window on the next sync is
        # idempotent (eviction of an evicted row is a no-op).
        self._version = self.graph.settled_version()
        return receipt

    def refresh_warm_state(self) -> InvalidationReceipt:
        """Eagerly reconcile warm state after a mutation; return the receipt.

        Normally the next query pays the sync; calling this right after
        mutating moves that work off the query path and hands back the
        :class:`~repro.incremental.InvalidationReceipt` saying what was
        evicted and what survived — the serving layer calls it under its
        write lock so every mutate response can carry the receipt.  With
        no pending change the receipt is mode ``"noop"`` (the
        idempotent-mutate signal: warm keys stay valid).
        """
        if self._closed:
            raise ConfigurationError("the session has been closed")
        receipt = self._sync_graph()
        if receipt is None:
            receipt = InvalidationReceipt(
                mode="noop",
                version_from=self.graph.version,
                version_to=self.graph.version,
            )
        return receipt

    def _record_passes(self, count) -> None:
        """Report a query's Brandes-pass count into the context's counter."""
        if isinstance(count, (int, float)) and not isinstance(count, bool):
            self._context.record_passes(int(count))

    def _knobs(self):
        """The (backend, batch_size, n_jobs) triple the cold API would use."""
        if self.plan is None:
            return self.backend, None, None
        return self.plan.backend, self.plan.batch_size, self.plan.n_jobs

    def _attach(self, sampler):
        """Point a sampler's pool work at the session's persistent context."""
        sampler.mp_context = self.plan.mp_context if self.plan is not None else None
        sampler.runtime = self._context
        sampler.shared_graph = (
            self.plan.shared_graph if self.plan is not None else None
        )
        sampler.kernel = self.plan.kernel if self.plan is not None else "auto"
        sampler.kernel_threads = (
            self.plan.kernel_threads if self.plan is not None else None
        )
        return sampler

    def _sampler(self, method: str):
        """Memoized per-method estimator, constructed exactly like the cold API."""
        key = ("single", method)
        sampler = self._estimators.get(key)
        if sampler is None:
            backend, batch_size, n_jobs = self._knobs()
            sampler = SINGLE_VERTEX_METHODS[method](backend, batch_size, n_jobs)
            self._attach(sampler)
            self._estimators[key] = sampler
        return sampler

    def _oracle(self, kind: str, sampler):
        """Memoized warm dependency oracle (arena-attached on CSR).

        Keyed by *kind* alone — not the graph version: a mutation no longer
        retires a warm oracle wholesale.  :meth:`_sync_graph` either evicts
        only its affected vectors (delta mode, via
        :meth:`~repro.mcmc.estimates.DependencyOracle.apply_delta`) or
        clears the memo (full mode), so an entry found here is always bound
        to the current snapshot.
        """
        key = kind
        oracle = self._oracles.get(key)
        if oracle is None:
            store = None
            if resolve_backend(sampler.backend) == "csr":
                store = self._context.dependency_arena(self.graph)
            oracle = sampler.build_oracle(self.graph, shared_store=store)
            self._oracles[key] = oracle
        return oracle

    def _multichain_driver(
        self, method: str, n_chains: Optional[int], rhat_target: Optional[float]
    ) -> MultiChainMHSampler:
        key = ("multichain", method, n_chains, rhat_target)
        driver = self._estimators.get(key)
        if driver is None:
            backend, batch_size, _ = self._knobs()
            # Mirrors the cold API: the driver owns n_jobs (chains are the
            # unit of parallel work); the base keeps batch-prefetching.
            base = SINGLE_VERTEX_METHODS[method](backend, batch_size, None)
            base.kernel = self.plan.kernel if self.plan is not None else "auto"
            base.kernel_threads = (
                self.plan.kernel_threads if self.plan is not None else None
            )
            driver = MultiChainMHSampler(
                base,
                n_chains=n_chains if n_chains is not None else DEFAULT_CHAINS,
                rhat_target=rhat_target,
                n_jobs=self.plan.n_jobs if self.plan is not None else None,
                mp_context=self.plan.mp_context if self.plan is not None else None,
                runtime=self._context,
                shared_graph=self.plan.shared_graph if self.plan is not None else None,
            )
            self._estimators[key] = driver
        return driver

    def _joint_sampler(self) -> JointSpaceMHSampler:
        key = ("joint",)
        sampler = self._estimators.get(key)
        if sampler is None:
            backend, batch_size, n_jobs = self._knobs()
            sampler = JointSpaceMHSampler(
                backend=backend, batch_size=batch_size, n_jobs=n_jobs
            )
            self._attach(sampler)
            self._estimators[key] = sampler
        return sampler

    def _joint_driver(self, n_chains: int) -> MultiChainJointSampler:
        key = ("joint-multichain", n_chains)
        driver = self._estimators.get(key)
        if driver is None:
            backend, batch_size, _ = self._knobs()
            joint_base = JointSpaceMHSampler(backend=backend, batch_size=batch_size)
            joint_base.kernel = self.plan.kernel if self.plan is not None else "auto"
            joint_base.kernel_threads = (
                self.plan.kernel_threads if self.plan is not None else None
            )
            driver = MultiChainJointSampler(
                joint_base,
                n_chains=n_chains,
                n_jobs=self.plan.n_jobs if self.plan is not None else None,
                mp_context=self.plan.mp_context if self.plan is not None else None,
                runtime=self._context,
                shared_graph=self.plan.shared_graph if self.plan is not None else None,
            )
            self._estimators[key] = driver
        return driver

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(
        self,
        r: Vertex,
        *,
        method: str = "mh",
        samples: int = 200,
        seed: RandomState = None,
        n_chains: Optional[int] = None,
        rhat_target: Optional[float] = None,
    ) -> SingleEstimate:
        """Estimate ``BC(r)`` — the warm twin of :func:`betweenness_single`.

        Same methods, same semantics, bit-identical results at a fixed
        seed; the session's plan supplies the execution knobs.  MCMC
        queries read and publish dependency vectors through the session's
        persistent arena and warm oracles, so sources any earlier query
        touched are cache hits here.
        """
        if method not in SINGLE_VERTEX_METHODS:
            raise ConfigurationError(
                f"unknown method {method!r}; expected one of "
                f"{sorted(SINGLE_VERTEX_METHODS)}"
            )
        multichain = n_chains is not None or rhat_target is not None
        if multichain and method not in MCMC_SINGLE_METHODS:
            raise ConfigurationError(
                f"n_chains / rhat_target apply to the MCMC methods "
                f"{sorted(MCMC_SINGLE_METHODS)} only; got {method!r}"
            )
        self._begin()
        if multichain:
            driver = self._multichain_driver(method, n_chains, rhat_target)
            result = driver.estimate(self.graph, r, samples, seed=seed)
        else:
            sampler = self._sampler(method)
            if method in MCMC_SINGLE_METHODS:
                oracle = self._oracle("single", sampler)
                result = sampler.estimate(
                    self.graph, r, samples, seed=seed, oracle=oracle
                )
            else:
                result = sampler.estimate(self.graph, r, samples, seed=seed)
        self._record_passes(result.diagnostics.get("evaluations"))
        return result

    def relative(
        self,
        reference_set: Sequence[Vertex],
        *,
        samples: int = 1000,
        seed: RandomState = None,
        n_chains: Optional[int] = None,
    ) -> RelativeBetweennessEstimate:
        """Pairwise relative scores of *reference_set* — warm twin of
        :func:`relative_betweenness`."""
        self._begin()
        if n_chains is not None:
            driver = self._joint_driver(n_chains)
            estimate = driver.estimate_relative(
                self.graph, reference_set, samples, seed=seed
            )
        else:
            sampler = self._joint_sampler()
            oracle = self._oracle("joint", sampler)
            estimate = sampler.estimate_relative(
                self.graph, reference_set, samples, seed=seed, oracle=oracle
            )
        self._record_passes(estimate.diagnostics.get("evaluations"))
        return estimate

    def ranking(
        self,
        vertices: Union[int, Iterable[Vertex], None] = None,
        *,
        k: Optional[int] = None,
        samples: int = 1000,
        seed: RandomState = None,
        n_chains: Optional[int] = None,
    ) -> List[Vertex]:
        """Rank vertices by estimated betweenness (descending), warm.

        ``ranking(5)`` ranks every vertex of the graph and returns the top
        5; ``ranking([...], k=3)`` restricts the candidate set.  Built on
        the joint-space chain of :meth:`relative`, so the ranking shares
        the session's warm arena with every other query.
        """
        if isinstance(vertices, int) and k is None:
            k, vertices = vertices, None
        members = list(vertices) if vertices is not None else self.graph.vertices()
        # No _begin() here: the delegated relative() performs it, and one
        # user-visible query must count once in stats().
        estimate = self.relative(members, samples=samples, seed=seed, n_chains=n_chains)
        ranked = estimate.ranking()
        return ranked if k is None else ranked[:k]

    def exact(
        self,
        vertices: Optional[Iterable[Vertex]] = None,
        *,
        normalization: str = "paper",
    ) -> Dict[Vertex, float]:
        """Exact Brandes scores — warm twin of :func:`betweenness_exact`.

        With an engaged plan the per-source passes run on the session's
        persistent pool against the interned CSR payload (shipped once).
        """
        self._begin()
        backend, batch_size, n_jobs = self._knobs()
        plan = self._plan_with_runtime
        n = self.graph.number_of_vertices()
        if vertices is None:
            scores = betweenness_centrality(
                self.graph, normalization=normalization, backend=backend, plan=plan
            )
            # Brandes runs one pass per source.
            self._record_passes(n)
            return scores
        scores = {
            v: betweenness_of_vertex(
                self.graph,
                v,
                normalization=normalization,
                backend=backend,
                plan=plan,
            )
            for v in vertices
        }
        # Each single-vertex query accumulates every source's dependency on
        # its target: n passes per requested vertex.
        self._record_passes(n * len(scores))
        return scores

    def open_chain(
        self, r: Vertex, *, method: str = "mh", seed: RandomState = None
    ) -> "SessionChain":
        """Open a persistent MH chain targeting ``BC(r)`` that survives mutations.

        The returned :class:`SessionChain` is advanced in segments; between
        segments the session may mutate its graph, and the chain *continues*
        from its last state whenever the mutation's affected region excludes
        that state — restarting only when the region (or a full
        invalidation) touches it.  A continued chain's historical samples
        keep their pre-mutation dependency values (see the
        :class:`SessionChain` docstring for what its running estimate
        then means).  Close the chain (or the session) when done.
        """
        if self._closed:
            raise ConfigurationError("the session has been closed")
        if method not in MCMC_SINGLE_METHODS:
            raise ConfigurationError(
                f"open_chain supports the MCMC methods "
                f"{sorted(MCMC_SINGLE_METHODS)} only; got {method!r}"
            )
        self.graph.validate_vertex(r)
        chain = SessionChain(self, r, method=method, seed=seed)
        self._chains.append(chain)
        return chain

    # ------------------------------------------------------------------
    # Lifecycle + diagnostics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Warm-state diagnostics: query counters plus the context's stamp.

        ``brandes_passes`` is the lifetime pass count of the session's
        queries (the context's :meth:`~repro.execution.runtime
        .ExecutionContext.record_passes` counter — monotone, surviving
        graph mutation), which is what the serving layer's Prometheus
        exporter scrapes.
        """
        context = self._context.stats()
        return {
            "queries": self._queries,
            "graph_version": self.graph.version,
            "brandes_passes": context.get("brandes_passes", 0),
            "warm_oracles": len(self._oracles),
            "warm_estimators": len(self._estimators),
            "open_chains": len(self._chains),
            "context": context,
        }

    def close(self) -> None:
        """Release the pool and the arena (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._context.close()
        self._estimators.clear()
        self._oracles.clear()
        for chain in list(self._chains):
            chain.close()

    def __enter__(self) -> "BetweennessSession":
        if self._closed:
            raise ConfigurationError("the session has been closed")
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SessionChain:
    """One Metropolis-Hastings chain pinned to a session, surviving mutations.

    Created through :meth:`BetweennessSession.open_chain`.  Each
    :meth:`advance` call runs another segment through the session's warm
    sampler and oracle (:meth:`~repro.mcmc.single.SingleSpaceMHSampler
    .extend_chain` — one rng stream, one growing
    :class:`~repro.mcmc.single.ChainResult`).  When the session's graph
    mutates, the session pushes the invalidation receipt here: the chain
    keeps its trajectory when the affected-source region excludes its
    current state — the stored ``states[-1].dependency`` is then still the
    correct score on the mutated graph, so the continuation is a valid MH
    chain — and schedules a restart otherwise.  ``receipt
    .chains_continued`` / ``chains_restarted`` record the verdicts.

    Note the scope of the determinism contract: a continued chain is a
    valid chain on the mutated graph, but it is *not* the trajectory a
    fresh cold chain would walk — chains are stateful by design, unlike
    the session's query methods.  The continuation check covers only the
    chain's *current* state: historical states keep the dependency values
    they were scored with at the time, so after a continued mutation the
    running :meth:`estimate` (which averages over every kept state) may
    mix pre-mutation and post-mutation dependency values until the chain
    restarts.  Restart the chain (or open a fresh one) when the estimate
    must reflect only the mutated graph.
    """

    def __init__(
        self,
        session: BetweennessSession,
        r: Vertex,
        *,
        method: str = "mh",
        seed: RandomState = None,
    ) -> None:
        self._session = session
        self.target = r
        self.method = method
        self._rng = ensure_rng(seed)
        self._result = None
        self._needs_restart = False
        self.continuations = 0
        self.restarts = 0
        self._closed = False

    @property
    def result(self):
        """The accumulated :class:`~repro.mcmc.single.ChainResult` (``None`` before the first segment)."""
        return self._result

    def _note_invalidation(self, receipt: InvalidationReceipt) -> None:
        """Session push on mutation: decide continue-vs-restart, bill the receipt."""
        if self._result is None or self._closed:
            return
        if receipt.mode == "delta":
            mask = self._session._context.last_affected_mask()
            index = self._session.graph.csr().find_index(self._result.states[-1].vertex)
            unsafe = index is None or bool(mask[index])
        else:
            unsafe = True
        # A pending restart from an earlier un-advanced mutation sticks:
        # a later safe mutation cannot resurrect the stale trajectory.
        self._needs_restart = self._needs_restart or unsafe
        if self._needs_restart:
            receipt.chains_restarted += 1
        else:
            receipt.chains_continued += 1

    def advance(self, num_iterations: int):
        """Run *num_iterations* more chain steps; return the accumulated result."""
        if self._closed:
            raise ConfigurationError("the chain has been closed")
        session = self._session
        session._begin()
        sampler = session._sampler(self.method)
        oracle = session._oracle("single", sampler)
        if self._result is not None and not self._needs_restart:
            evaluations_before = self._result.evaluations
            self._result = sampler.extend_chain(
                session.graph,
                self.target,
                self._result,
                num_iterations,
                rng=self._rng,
                oracle=oracle,
            )
            self.continuations += 1
        else:
            evaluations_before = 0
            if self._result is not None:
                self.restarts += 1
            self._needs_restart = False
            self._result = sampler.run_chain(
                session.graph,
                self.target,
                num_iterations,
                seed=self._rng,
                oracle=oracle,
            )
        # ``evaluations`` accumulates across segments; bill only this one.
        session._record_passes(self._result.evaluations - evaluations_before)
        return self._result

    def estimate(self, estimator: str = "chain") -> float:
        """The running betweenness estimate of the accumulated chain.

        Averages over every kept state of the accumulated trajectory.
        After a mutation the chain continued across, states recorded
        before the mutation retain their pre-mutation dependency values
        (only the current state is verified against the affected region),
        so this estimate can mix old-graph and new-graph values until the
        chain restarts — see the class docstring.
        """
        if self._result is None:
            raise ConfigurationError("advance the chain before reading an estimate")
        return self._result.estimate(estimator)

    def close(self) -> None:
        """Detach from the session (idempotent); the result stays readable."""
        if self._closed:
            return
        self._closed = True
        try:
            self._session._chains.remove(self)
        except ValueError:
            pass


class ThreadSafeSession:
    """Serialise every operation of a :class:`BetweennessSession` behind one lock.

    A :class:`BetweennessSession` is single-threaded by design: its warm
    state (estimator memos, oracles, the context's payload memo and arena
    bookkeeping) is mutated on the query path without synchronisation, and
    the determinism contract assumes queries observe the graph one at a
    time.  Multi-threaded callers — the HTTP daemon of
    :mod:`repro.serving`, where every request runs on its own handler
    thread — wrap the session in this proxy instead: one reentrant lock
    serialises queries, mutations and stats reads, so each query sees a
    consistent graph version and the receipts it stamps can never interleave
    with a mutation.

    Serialising queries does not serialise the *work*: an engaged plan still
    fans each query out over the session's persistent worker pool.  The lock
    orders queries, the pool parallelises within one.

    ``mutate(fn)`` is the one write entry point: it runs ``fn(graph)`` under
    the lock and returns the graph's new version, so a registry can apply
    edge upserts without racing an in-flight query.
    """

    def __init__(self, session: BetweennessSession) -> None:
        self._session = session
        self._lock = threading.RLock()

    @property
    def session(self) -> BetweennessSession:
        """The wrapped session (lock yourself before touching its state)."""
        return self._session

    @property
    def lock(self) -> "threading.RLock":
        """The serialising lock (reentrant; exposed for compound operations)."""
        return self._lock

    @property
    def graph(self) -> Graph:
        return self._session.graph

    def estimate(self, *args, **kwargs) -> SingleEstimate:
        with self._lock:
            return self._session.estimate(*args, **kwargs)

    def relative(self, *args, **kwargs) -> RelativeBetweennessEstimate:
        with self._lock:
            return self._session.relative(*args, **kwargs)

    def ranking(self, *args, **kwargs) -> List[Vertex]:
        with self._lock:
            return self._session.ranking(*args, **kwargs)

    def exact(self, *args, **kwargs) -> Dict[Vertex, float]:
        with self._lock:
            return self._session.exact(*args, **kwargs)

    def mutate(self, fn) -> InvalidationReceipt:
        """Run ``fn(graph)`` under the lock; return the invalidation receipt.

        The warm-state sync runs eagerly (still under the lock) via
        :meth:`BetweennessSession.refresh_warm_state`, so the returned
        :class:`~repro.incremental.InvalidationReceipt` tells the caller
        exactly what the mutation cost — mode ``"noop"`` when every op
        no-opped (warm keys stay valid), ``"delta"`` with retention
        counts, or ``"full"`` with the fallback reason.  Queries are
        serialised behind the same lock, so a response can never carry a
        stale graph version.
        """
        with self._lock:
            fn(self._session.graph)
            return self._session.refresh_warm_state()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return self._session.stats()

    def close(self) -> None:
        with self._lock:
            self._session.close()

    def __enter__(self) -> "ThreadSafeSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
