"""High-level, one-call estimation API.

This is the façade most users should interact with: pick a method by name,
hand over a graph, get back a result object that bundles the estimate with
its diagnostics and (for the MCMC methods) the theoretical accuracy
quantities of the paper.

Example
-------
>>> from repro.graphs import barbell_graph
>>> from repro.centrality import betweenness_single
>>> g = barbell_graph(6, 2)
>>> bridge = 6  # first bridge vertex
>>> result = betweenness_single(g, bridge, method="mh", samples=200, seed=7)
>>> 0.0 < result.estimate < 1.0
True
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Union

from repro._rng import RandomState
from repro.errors import ConfigurationError
from repro.exact.brandes import betweenness_centrality
from repro.exact.single_vertex import (
    betweenness_of_vertex,
    exact_relative_betweenness,
)
from repro.execution.autotune import (
    calibrate_batch_size,
    calibrate_kernel_threads,
    calibrate_n_jobs,
)
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import resolve_backend
from repro.graphs.utils import ensure_connected
from repro.mcmc.bounds import epsilon_for_samples, mu_statistics, required_samples
from repro.mcmc.joint import JointSpaceMHSampler, RelativeBetweennessEstimate
from repro.mcmc.multichain import MultiChainJointSampler, MultiChainMHSampler
from repro.mcmc.single import SingleSpaceMHSampler
from repro.samplers.base import SingleEstimate
from repro.samplers.distance_based import DistanceBasedSampler
from repro.samplers.kadabra import KadabraSampler
from repro.samplers.riondato_kornaropoulos import RiondatoKornaropoulosSampler
from repro.samplers.uniform_source import UniformSourceSampler

__all__ = [
    "SINGLE_VERTEX_METHODS",
    "MCMC_SINGLE_METHODS",
    "DEFAULT_CHAINS",
    "BetweennessSession",
    "betweenness_single",
    "betweenness_exact",
    "relative_betweenness",
    "betweenness_ranking",
    "suggested_chain_length",
]


def __getattr__(name):
    # Lazy re-export: the session module builds on this one, so importing
    # it eagerly here would be circular.  ``from repro.centrality.api
    # import BetweennessSession`` still works (PEP 562).
    if name == "BetweennessSession":
        from repro.centrality.session import BetweennessSession

        return BetweennessSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Chains the multi-chain driver runs when only ``rhat_target`` was given.
DEFAULT_CHAINS = 4

#: Batch-size specification: an int, ``None`` (sequential kernels) or
#: ``"auto"`` (calibrated from a timed probe, :mod:`repro.execution.autotune`).
BatchSize = Union[int, str, None]

#: Worker-count specification: an int, ``None`` (no parallelism requested)
#: or ``"auto"`` (calibrated from a timed probe over real pool spin-ups).
Jobs = Union[int, str, None]

#: Kernel-thread specification: an int, ``None`` (the
#: ``REPRO_KERNEL_THREADS`` default, 1) or ``"auto"`` (calibrated from a
#: timed probe over the compiled jit-parallel batch kernels).
Threads = Union[int, str, None]


def _resolve_batch_size(
    graph: Graph, batch_size: BatchSize, backend: str, workload: Optional[int] = None
):
    """Resolve ``"auto"`` to a calibrated batch size at the point the graph is known.

    On the dict backend there are no batch kernels to calibrate, so
    ``"auto"`` resolves to ``None`` — the legacy sequential path — rather
    than engaging the execution plan (and its pre-drawn proposal stream)
    for a size-1 batch that could never be faster.  *workload* is the
    caller's rough count of upcoming Brandes passes; the probe is scaled
    down for small jobs so calibration never rivals the work it is meant
    to speed up (a cruder, noisier probe is the right trade there).
    """
    if batch_size == "auto":
        if resolve_backend(backend) != "csr":
            return None
        probe_sources = 32 if workload is None else max(4, min(32, workload // 16))
        return calibrate_batch_size(
            graph, backend=backend, probe_sources=probe_sources
        )
    return batch_size


def _resolve_n_jobs(
    graph: Graph, n_jobs: Jobs, backend: str, workload: Optional[int] = None
):
    """Resolve ``"auto"`` to a calibrated worker count at the point the graph is known.

    Unlike an unset ``n_jobs``, the calibrated count **always engages** the
    execution engine — even when the probe picks 1 worker.  The engine's
    sharded discipline is what makes results n_jobs-invariant; resolving to
    ``None`` (the legacy sequential path, whose accumulation order and rng
    consumption differ for the stochastic samplers) would let wall-clock
    noise pick between two differently-ordered computations, breaking the
    "timing can never change an estimate" contract.  On the dict backend
    the sharded path exists too, but there are no batch kernels to amortise
    pool traffic against, so ``"auto"`` resolves to an engaged 1 without
    probing.  *workload* scales the probe down for small jobs, like
    :func:`_resolve_batch_size`.
    """
    if n_jobs == "auto":
        if resolve_backend(backend) != "csr":
            return 1
        probe_sources = 64 if workload is None else max(8, min(64, workload // 8))
        return calibrate_n_jobs(graph, backend=backend, probe_sources=probe_sources)
    return n_jobs


def _resolve_kernel_threads(
    graph: Graph,
    kernel_threads: Threads,
    backend: str,
    kernel: str,
    n_jobs,
    workload: Optional[int] = None,
):
    """Resolve ``"auto"`` to a calibrated thread count at the point the graph is known.

    The knob only engages the compiled jit-parallel batch kernels, so on
    the dict backend (or when the compiled rung cannot run) ``"auto"``
    resolves to 1 without probing.  The probe composes with the caller's
    already-resolved *n_jobs*: candidate thread counts are capped so
    ``threads × processes`` never oversubscribes the machine.  Like the
    other two probes, the timed choice is result-neutral — the parallel
    kernels accumulate per-source rows in source order at any thread
    count.
    """
    if kernel_threads == "auto":
        if resolve_backend(backend) != "csr":
            return 1
        jobs = n_jobs if isinstance(n_jobs, int) and n_jobs >= 1 else 1
        probe_sources = 32 if workload is None else max(4, min(32, workload // 16))
        return calibrate_kernel_threads(
            graph,
            backend=backend,
            kernel=kernel,
            probe_sources=probe_sources,
            n_jobs=jobs,
        )
    return kernel_threads

#: Estimator registry for :func:`betweenness_single`.  Every factory accepts
#: the traversal ``backend`` (``"auto"`` / ``"dict"`` / ``"csr"``) plus the
#: execution-engine knobs ``batch_size`` / ``n_jobs`` (see
#: :mod:`repro.execution`); calling one with no argument keeps the
#: pre-backend behaviour (``"auto"``, sequential).
SINGLE_VERTEX_METHODS = {
    "mh": lambda backend="auto", batch_size=None, n_jobs=None: SingleSpaceMHSampler(
        backend=backend, batch_size=batch_size, n_jobs=n_jobs
    ),
    "mh-unbiased": lambda backend="auto", batch_size=None, n_jobs=None: SingleSpaceMHSampler(
        estimator="proposal", backend=backend, batch_size=batch_size, n_jobs=n_jobs
    ),
    "mh-degree": lambda backend="auto", batch_size=None, n_jobs=None: SingleSpaceMHSampler(
        proposal="degree", backend=backend, batch_size=batch_size, n_jobs=n_jobs
    ),
    "mh-random-walk": lambda backend="auto", batch_size=None, n_jobs=None: SingleSpaceMHSampler(
        proposal="random-walk", backend=backend, batch_size=batch_size, n_jobs=n_jobs
    ),
    "uniform-source": lambda backend="auto", batch_size=None, n_jobs=None: UniformSourceSampler(
        backend=backend, batch_size=batch_size, n_jobs=n_jobs
    ),
    "distance": lambda backend="auto", batch_size=None, n_jobs=None: DistanceBasedSampler(
        backend=backend, batch_size=batch_size, n_jobs=n_jobs
    ),
    "rk": lambda backend="auto", batch_size=None, n_jobs=None: RiondatoKornaropoulosSampler(
        backend=backend, batch_size=batch_size, n_jobs=n_jobs
    ),
    "kadabra": lambda backend="auto", batch_size=None, n_jobs=None: KadabraSampler(
        backend=backend, batch_size=batch_size, n_jobs=n_jobs
    ),
}

#: The methods the multi-chain driver (``n_chains`` / ``rhat_target``) can
#: wrap: the Metropolis-Hastings single-vertex samplers.  The baselines draw
#: i.i.d. samples — there is no chain to multiply — and already parallelise
#: over sources through the execution engine.
MCMC_SINGLE_METHODS = ("mh", "mh-unbiased", "mh-degree", "mh-random-walk")


def betweenness_single(
    graph: Graph,
    r: Vertex,
    *,
    method: str = "mh",
    samples: int = 200,
    seed: RandomState = None,
    check_connected: bool = True,
    backend: str = "auto",
    batch_size: BatchSize = None,
    n_jobs: Jobs = None,
    n_chains: Optional[int] = None,
    rhat_target: Optional[float] = None,
    shared_cache: Optional[bool] = None,
    kernel: str = "auto",
    kernel_threads: Threads = None,
) -> SingleEstimate:
    """Estimate the betweenness of one vertex with the chosen *method*.

    Parameters
    ----------
    graph:
        Connected input graph (the paper's standing assumption; disable the
        check with ``check_connected=False`` if you know what you are doing).
    r:
        The target vertex.
    method:
        One of :data:`SINGLE_VERTEX_METHODS`: ``"mh"`` (the paper's sampler,
        default), ``"mh-degree"`` / ``"mh-random-walk"`` (proposal ablations),
        ``"uniform-source"``, ``"distance"``, ``"rk"`` or ``"kadabra"``.
    samples:
        Chain length (MCMC methods) or number of samples (baselines).
    seed:
        Randomness specification.
    backend:
        Traversal backend: ``"auto"`` (CSR kernels whenever numpy is
        importable — the graph snapshot is static for the duration of the
        call), ``"dict"`` (pure-Python reference) or ``"csr"``.  Both
        backends consume identical rng streams, so for a fixed *seed* the
        estimate is the same up to floating-point accumulation order.
    batch_size, n_jobs:
        Execution-engine knobs (:mod:`repro.execution`): sources per
        batched CSR traversal and worker processes for the sharded source
        loop.  Engaging the engine keeps results deterministic — identical
        for any ``n_jobs`` / ``batch_size`` at a fixed seed — per the
        estimator-specific notes on each sampler class.  ``batch_size``
        additionally accepts ``"auto"``: the block size is calibrated from
        a short timed probe on *graph*
        (:func:`repro.execution.calibrate_batch_size`), which changes
        wall-clock only, never the estimate for a given resolved size.
        ``n_jobs`` likewise accepts ``"auto"``
        (:func:`repro.execution.calibrate_n_jobs`): the worker count is
        probed with real pool spin-ups and always engages the execution
        engine, whose sharded discipline is n_jobs-invariant — so the
        timing-chosen count can never change the estimate either.
    kernel:
        CSR kernel rung (``"auto"`` / ``"csr"`` / ``"compiled"``, see
        :func:`~repro.graphs.csr.resolve_kernel`); the compiled rung is
        bit-identical to the numpy rung, so this only changes speed.
    kernel_threads:
        Thread count of the compiled jit-parallel batch kernels (``None``
        consults ``REPRO_KERNEL_THREADS``, default 1; ``"auto"`` calibrates
        from a timed probe capped so ``threads × n_jobs`` stays within the
        machine).  Result-neutral at any count — per-source rows are
        computed independently and accumulated in source order.
    n_chains, rhat_target:
        Engage the multi-chain MCMC driver
        (:class:`repro.mcmc.multichain.MultiChainMHSampler`) for the MH
        methods: *samples* becomes a total budget split over ``n_chains``
        independent chains (per-chain rng streams, executed across
        ``n_jobs`` worker processes, pooled with a deterministic ordered
        reduce), and ``rhat_target`` optionally adds split-R̂-driven
        adaptive burn-in and early stopping.  ``rhat_target`` alone implies
        ``n_chains=DEFAULT_CHAINS``.  ``n_chains=1`` reproduces the legacy
        sequential sampler bit for bit.  Rejected for the non-MCMC
        baselines, which have no chain to multiply.
    shared_cache:
        Share one cross-process dependency-vector arena across the
        multi-chain driver's worker processes
        (:mod:`repro.execution.shared_cache`): a Brandes pass paid by any
        worker becomes a cache hit for every chain, and the estimate is
        bit-identical to the private-cache run.  Requires the multi-chain
        driver (``n_chains`` / ``rhat_target``); ``None`` consults the
        ``REPRO_SHARED_CACHE`` environment override.
    """
    if method not in SINGLE_VERTEX_METHODS:
        raise ConfigurationError(
            f"unknown method {method!r}; expected one of {sorted(SINGLE_VERTEX_METHODS)}"
        )
    multichain = n_chains is not None or rhat_target is not None
    if multichain and method not in MCMC_SINGLE_METHODS:
        raise ConfigurationError(
            f"n_chains / rhat_target apply to the MCMC methods "
            f"{sorted(MCMC_SINGLE_METHODS)} only; got {method!r}"
        )
    if shared_cache and not multichain:
        raise ConfigurationError(
            "shared_cache shares a dependency arena across the multi-chain "
            "driver's worker processes; pass n_chains (or rhat_target) to "
            "engage it"
        )
    if check_connected:
        ensure_connected(graph)
    batch_size = _resolve_batch_size(graph, batch_size, backend, workload=samples)
    if multichain:
        # The driver owns n_jobs (chains are the unit of parallel work); the
        # base sampler keeps batch-prefetching its own proposals.  An "auto"
        # worker count is capped at the chain count — extra workers would
        # idle, and the probe times per-source sharding, not chain fan-out.
        chains = n_chains if n_chains is not None else DEFAULT_CHAINS
        if n_jobs == "auto":
            n_jobs = min(_resolve_n_jobs(graph, n_jobs, backend, workload=samples), chains)
        base = SINGLE_VERTEX_METHODS[method](backend, batch_size, None)
        base.kernel = kernel
        base.kernel_threads = _resolve_kernel_threads(
            graph, kernel_threads, backend, kernel, n_jobs, workload=samples
        )
        driver = MultiChainMHSampler(
            base,
            n_chains=chains,
            rhat_target=rhat_target,
            n_jobs=n_jobs,
            shared_cache=shared_cache,
        )
        return driver.estimate(graph, r, samples, seed=seed)
    n_jobs = _resolve_n_jobs(graph, n_jobs, backend, workload=samples)
    estimator = SINGLE_VERTEX_METHODS[method](backend, batch_size, n_jobs)
    estimator.kernel = kernel
    estimator.kernel_threads = _resolve_kernel_threads(
        graph, kernel_threads, backend, kernel, n_jobs, workload=samples
    )
    return estimator.estimate(graph, r, samples, seed=seed)


def betweenness_exact(
    graph: Graph,
    vertices: Optional[Iterable[Vertex]] = None,
    *,
    normalization: str = "paper",
    backend: str = "auto",
    batch_size: BatchSize = None,
    n_jobs: Jobs = None,
    kernel: str = "auto",
    kernel_threads: Threads = None,
) -> Dict[Vertex, float]:
    """Return exact betweenness scores (all vertices, or just the requested ones).

    ``batch_size`` / ``n_jobs`` engage the sharded execution engine for the
    per-source Brandes passes (see :mod:`repro.execution`); ``"auto"``
    calibrates either knob from a timed probe (bit-identical results for
    any resolved value).  ``kernel`` selects the CSR kernel rung — numpy or
    the bit-identical numba-compiled twins — and ``kernel_threads`` the
    thread count of the compiled jit-parallel batch kernels (``"auto"``
    probes counts capped so ``threads × n_jobs`` stays within the machine;
    result-neutral at any count).
    """
    passes = graph.number_of_vertices() if vertices is None else None
    batch_size = _resolve_batch_size(graph, batch_size, backend, workload=passes)
    n_jobs = _resolve_n_jobs(graph, n_jobs, backend, workload=passes)
    kernel_threads = _resolve_kernel_threads(
        graph, kernel_threads, backend, kernel, n_jobs, workload=passes
    )
    if vertices is None:
        return betweenness_centrality(
            graph,
            normalization=normalization,
            backend=backend,
            batch_size=batch_size,
            n_jobs=n_jobs,
            kernel=kernel,
            kernel_threads=kernel_threads,
        )
    return {
        v: betweenness_of_vertex(
            graph,
            v,
            normalization=normalization,
            backend=backend,
            batch_size=batch_size,
            n_jobs=n_jobs,
            kernel=kernel,
            kernel_threads=kernel_threads,
        )
        for v in vertices
    }


def relative_betweenness(
    graph: Graph,
    reference_set: Sequence[Vertex],
    *,
    samples: int = 1000,
    seed: RandomState = None,
    check_connected: bool = True,
    backend: str = "auto",
    batch_size: BatchSize = None,
    n_jobs: Jobs = None,
    n_chains: Optional[int] = None,
    shared_cache: Optional[bool] = None,
    kernel: str = "auto",
    kernel_threads: Threads = None,
) -> RelativeBetweennessEstimate:
    """Estimate all pairwise relative betweenness scores of *reference_set*.

    Runs the joint-space Metropolis-Hastings sampler of Section 4.3 and
    returns the Equation 22/23 estimates plus chain diagnostics.
    ``batch_size`` engages the oracle's batch-prefetch of upcoming proposal
    sources (see :class:`~repro.mcmc.joint.JointSpaceMHSampler`; ``"auto"``
    calibrates it from a timed probe).  ``n_chains`` splits *samples* over
    that many independent joint chains run across ``n_jobs`` worker
    processes and pools the per-chain multisets
    (:class:`~repro.mcmc.multichain.MultiChainJointSampler`); ``n_chains=1``
    reproduces the single-chain sampler bit for bit.  ``shared_cache``
    shares one cross-process dependency arena across the driver's worker
    processes (multi-chain only; estimates are bit-identical either way).
    """
    if shared_cache and n_chains is None:
        raise ConfigurationError(
            "shared_cache shares a dependency arena across the multi-chain "
            "driver's worker processes; pass n_chains to engage it"
        )
    if check_connected:
        ensure_connected(graph)
    batch_size = _resolve_batch_size(graph, batch_size, backend, workload=samples)
    if n_chains is not None:
        if n_jobs == "auto":
            n_jobs = min(
                _resolve_n_jobs(graph, n_jobs, backend, workload=samples), n_chains
            )
        base = JointSpaceMHSampler(backend=backend, batch_size=batch_size)
        base.kernel = kernel
        base.kernel_threads = _resolve_kernel_threads(
            graph, kernel_threads, backend, kernel, n_jobs, workload=samples
        )
        driver = MultiChainJointSampler(
            base,
            n_chains=n_chains,
            n_jobs=n_jobs,
            shared_cache=shared_cache,
        )
        return driver.estimate_relative(graph, reference_set, samples, seed=seed)
    n_jobs = _resolve_n_jobs(graph, n_jobs, backend, workload=samples)
    sampler = JointSpaceMHSampler(backend=backend, batch_size=batch_size, n_jobs=n_jobs)
    sampler.kernel = kernel
    sampler.kernel_threads = _resolve_kernel_threads(
        graph, kernel_threads, backend, kernel, n_jobs, workload=samples
    )
    return sampler.estimate_relative(graph, reference_set, samples, seed=seed)


def betweenness_ranking(
    graph: Graph,
    reference_set: Sequence[Vertex],
    *,
    samples: int = 1000,
    seed: RandomState = None,
) -> Dict[str, object]:
    """Rank the vertices of *reference_set* by (estimated) betweenness.

    Returns a dictionary with the estimated ranking, the exact ranking (for
    verification on graphs small enough to afford it, computed lazily only
    when requested through the returned callable) and the raw estimate
    object.
    """
    estimate = relative_betweenness(graph, reference_set, samples=samples, seed=seed)
    ranking = estimate.ranking()
    return {
        "ranking": ranking,
        "estimate": estimate,
        "exact_ranking": lambda: sorted(
            reference_set,
            key=lambda v: betweenness_of_vertex(graph, v),
            reverse=True,
        ),
    }


def suggested_chain_length(
    graph: Graph,
    r: Vertex,
    *,
    epsilon: float = 0.05,
    delta: float = 0.1,
) -> Dict[str, float]:
    """Return the Equation 14 chain length for the requested accuracy, plus µ(r).

    This performs an exact Brandes sweep to compute µ(r), so it is meant for
    analysis and benchmarking, not for production estimation (where one would
    bound µ(r) structurally, e.g. through Theorem 2).
    """
    stats = mu_statistics(graph, r)
    samples = required_samples(epsilon, delta, stats.mu)
    return {
        "mu": stats.mu,
        "required_samples": float(samples),
        "epsilon": epsilon,
        "delta": delta,
        "achievable_epsilon_at_required": epsilon_for_samples(samples, delta, stats.mu),
    }
