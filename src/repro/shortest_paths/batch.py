"""Batched multi-source traversal kernels over a CSR snapshot.

Every estimator in this library reduces to "run many single-source
shortest-path-DAG passes and accumulate" — the ``O(|E|)`` per-sample cost of
Section 2.1 repeated once per source.  The single-source CSR kernels in
:mod:`repro.shortest_paths.bfs` already replaced per-edge dict lookups with
one vectorised gather per BFS level; this module takes the next step and
runs **K independent BFS traversals as one wave**: each level of *all* K
traversals is expanded with a single set of numpy primitives, so the
fixed per-numpy-call overhead — which dominates a single-source pass on the
small-diameter graphs the paper targets — is paid ``diameter`` times per
batch instead of ``K × diameter`` times.  See
``benchmarks/bench_e11_batch_parallel.py`` for the speedup receipt.

Layout: flat keys at the boundary, compact ids in the loop
----------------------------------------------------------
A (row, vertex) pair is addressed by the scalar key ``k * n + v`` (rows
never collide, so one scatter updates all K traversals at once).  The wave
loop itself, however, never touches ``K × n``-sized state beyond one byte
per key (a ``visited`` bitmap): every per-level quantity — path counts,
dependency partials, avoid counts — lives in *compact* arrays indexed by
position in that level's frontier, and edges carry ``(parent_cid,
child_cid)`` positions instead of raw keys.  Frontier deduplication uses an
O(E) first-touch slot trick rather than a sort.  This keeps the per-level
work proportional to the number of wave edges, not to ``K × n``, which is
what makes large batches profitable.

Bit-identical contract
----------------------
For every source in the batch, the per-row ``dist`` / ``sig`` / dependency
values are **bit-identical** to what the single-source kernels
(:func:`~repro.shortest_paths.bfs.bfs_spd_csr` +
:func:`~repro.shortest_paths.dependencies.accumulate_dependencies_csr`)
produce for that source alone: within a row, edges are visited in the same
frontier-then-adjacency order, and ``np.bincount`` accumulates equal keys in
input order, so every floating-point sum is performed in the same order
regardless of which other sources share the batch.  This is what lets the
execution layer (:mod:`repro.execution`) promise results that do not depend
on ``batch_size``.

Weighted graphs have no BFS levels to batch; :func:`batch_source_dependencies`
runs one fused Dijkstra pass per row (:func:`~repro.shortest_paths.dijkstra.
dijkstra_source_dependencies_csr`, or its compiled twin on that rung) so
callers get one entry point with the same (K, n) result shape either way,
and :func:`dijkstra_spd_batch_csr` provides the batch-validated SPD list for
consumers that need the DAGs themselves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, NamedTuple, Optional, Sequence

from repro.graphs.csr import np, resolve_kernel
from repro.shortest_paths.dijkstra import (
    dijkstra_source_dependencies_csr,
    dijkstra_spd_csr,
)

try:  # pragma: no cover - exercised implicitly on scipy-less installs
    import scipy.sparse as _scipy_sparse
except ImportError:  # pragma: no cover
    _scipy_sparse = None

#: Ceiling on ``n × columns`` of one dense buffer in the sparse-matmul
#: sweep (float64: 32 MB).  Larger batches are processed in column
#: sub-blocks — bit-identical by column independence — so engaging the
#: scipy path never costs more than a handful of such buffers per worker,
#: regardless of graph size or requested ``batch_size``.
_SPMM_BLOCK_ELEMENTS = 4_000_000

#: Depth ceiling for the sparse-matmul sweep.  Each BFS level costs one
#: full spmm over *all* edges plus one dense level mask, so high-diameter
#: graphs (paths, road networks) would pay ``O(diameter × m × K)`` time and
#: ``O(diameter × n × K)`` mask memory where the wave kernel pays
#: ``O(m × K)`` total.  :func:`_spmm_suitable` estimates the diameter once
#: per snapshot (``2 × ecc(v0)``, a pure per-graph property — never a
#: function of the batch, which would break ``batch_size`` invariance) and
#: routes deep graphs to the wave kernel instead; the cap also bounds the
#: mask footprint at ``_SPMM_MAX_DEPTH × _SPMM_BLOCK_ELEMENTS`` bytes.
_SPMM_MAX_DEPTH = 32


def _spmm_suitable(csr: "CSRGraph") -> bool:
    """Return whether the spmm sweep suits *csr* (cached on the snapshot).

    Sound only for undirected graphs, where ``2 × ecc(probe)`` bounds the
    diameter of the probe's component; every component is probed (a
    disconnected graph's depth is the max over components, and one BFS per
    component totals ``O(n + m)`` once per snapshot).  No comparably cheap
    bound exists for directed graphs — forward eccentricity from one vertex
    says nothing about depth from the others (a hub pointing into a long
    chain has ecc 1) — so directed snapshots always take the wave kernel.
    """
    if csr._spmm_ok is None:
        csr._spmm_ok = not csr.directed and _undirected_depth_bounded(csr)
    return csr._spmm_ok


def _undirected_depth_bounded(csr: "CSRGraph") -> bool:
    from repro.shortest_paths.bfs import bfs_distances_csr

    n = csr.number_of_vertices()
    if n == 0:
        return False
    unseen = np.ones(n, dtype=bool)
    probe = 0
    while True:
        dist, order = bfs_distances_csr(csr, probe)
        eccentricity = float(dist[order[-1]]) if order.size else 0.0
        if 2.0 * eccentricity > float(_SPMM_MAX_DEPTH):
            return False
        unseen[order] = False
        remaining = np.flatnonzero(unseen)
        if remaining.size == 0:
            return True
        probe = int(remaining[0])

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.csr import CSRGraph

__all__ = [
    "BatchLevel",
    "BatchedSPD",
    "bfs_spd_batch_csr",
    "dijkstra_spd_batch_csr",
    "accumulate_dependencies_batch_csr",
    "batch_source_dependencies",
]


class BatchLevel(NamedTuple):
    """The DAG edges between two consecutive BFS levels of a whole batch.

    ``parent_cid[e]`` / ``child_cid[e]`` are positions of edge *e*'s
    endpoints in the parent level's / this level's ``frontier_keys``;
    ``frontier_keys`` lists this level's (row, vertex) flat keys in
    first-touch order and ``sigma`` the matching shortest-path counts.
    Within a row, edges appear in the exact frontier-then-adjacency order
    the single-source kernel visits them.
    """

    parent_cid: "np.ndarray"
    child_cid: "np.ndarray"
    frontier_keys: "np.ndarray"
    sigma: "np.ndarray"


class BatchedSPD:
    """K shortest-path DAGs built by one batched BFS wave.

    Attributes
    ----------
    csr:
        The snapshot the batch was built over.
    sources:
        ``int64`` array of the K source indices (duplicates allowed — each
        row is an independent traversal).
    dist / sig:
        ``(K, n)`` ``float64`` matrices of distances (``inf`` when
        unreachable) and shortest-path counts (0 when unreachable); row *k*
        belongs to ``sources[k]``.
    root_keys / root_sigma:
        The level-0 frontier (one root per row) in the same compact form as
        the :class:`BatchLevel` records.
    levels:
        One :class:`BatchLevel` per BFS level below the roots; ``levels[L]``
        holds the DAG edges whose children sit at distance ``L + 1``.
    """

    __slots__ = ("csr", "sources", "dist", "sig", "root_keys", "root_sigma", "levels")

    def __init__(self, csr: "CSRGraph", sources, dist, sig, root_keys, root_sigma, levels) -> None:
        self.csr = csr
        self.sources = sources
        self.dist = dist
        self.sig = sig
        self.root_keys = root_keys
        self.root_sigma = root_sigma
        self.levels = levels

    def __len__(self) -> int:
        return int(self.sources.shape[0])


def _spread(values, counts, cum, total):
    """``np.repeat(values, counts)`` for strictly positive *counts*.

    Built from one scatter + one cumsum instead of numpy's generic repeat,
    which is markedly slower for the many-small-counts pattern of a BFS
    frontier.  ``cum`` must be ``np.cumsum(counts)`` and *total* its last
    element.
    """
    steps = np.zeros(total, dtype=np.int64)
    steps[0] = values[0]
    steps[cum[:-1]] = np.diff(values)
    return np.cumsum(steps)


def bfs_spd_batch_csr(
    csr: "CSRGraph", sources: Sequence[int], *, cutoff: Optional[float] = None
) -> BatchedSPD:
    """Build the SPDs of all *sources* with one level-synchronous batched BFS.

    Parameters
    ----------
    csr:
        An unweighted CSR snapshot.
    sources:
        Iterable of K source indices (K >= 1; duplicates allowed).
    cutoff:
        Optional inclusive distance cutoff shared by every row, with the
        same semantics as :func:`~repro.shortest_paths.bfs.bfs_spd_csr`.

    Each row of the result is bit-identical to the single-source kernel run
    on that source alone (see the module docstring).
    """
    n = csr.number_of_vertices()
    src = np.asarray(sources, dtype=np.int64)
    if src.ndim != 1 or src.size == 0:
        raise ValueError("sources must be a non-empty 1-D sequence of vertex indices")
    if src.min() < 0 or src.max() >= n:
        raise IndexError(f"source indices out of range for {n} vertices")
    k = int(src.size)
    indptr, indices = csr.indptr, csr.indices

    visited = np.zeros(k * n, dtype=bool)
    root_keys = np.arange(k, dtype=np.int64) * n + src
    root_sigma = np.ones(k)
    visited[root_keys] = True

    # ``slot`` backs the O(E) first-touch dedup: slot[key] is the position of
    # the key's first occurrence in the current level's child-edge list.
    # Only slots written this level are read, so no per-level reset is needed.
    slot = np.empty(k * n, dtype=np.int64)

    frontier_keys = root_keys
    frontier_verts = src
    sigma = root_sigma
    levels: List[BatchLevel] = []
    level = 0.0
    while frontier_keys.size:
        if cutoff is not None and level + 1.0 > cutoff:
            break
        counts = indptr[frontier_verts + 1] - indptr[frontier_verts]
        nonzero = counts > 0
        if not nonzero.all():
            # _spread needs strictly positive counts; edge-less frontier
            # entries contribute nothing anyway.
            active_keys = frontier_keys[nonzero]
            active_verts = frontier_verts[nonzero]
            active_cid = np.flatnonzero(nonzero)
            counts = counts[nonzero]
        else:
            active_keys = frontier_keys
            active_verts = frontier_verts
            active_cid = None
        if counts.size == 0:
            break
        cum = np.cumsum(counts)
        total = int(cum[-1])
        edge_index = np.arange(total, dtype=np.int64)
        starts = indptr[active_verts]
        # Flat CSR positions of every out-edge of the frontier, in frontier
        # order then adjacency order (the dict BFS visit order).
        flat = edge_index + _spread(starts - cum + counts, counts, cum, total)
        nbrs = indices[flat]
        # Row base (row * n) per edge -> child keys without materialising
        # per-edge row ids.
        child_keys = _spread(active_keys - active_verts, counts, cum, total) + nbrs
        # Parent position (within this frontier) per edge.
        steps = np.zeros(total, dtype=np.int64)
        steps[cum[:-1]] = 1
        parent_cid = np.cumsum(steps)
        if active_cid is not None:
            parent_cid = active_cid[parent_cid]

        fresh = ~visited[child_keys]
        if not fresh.any():
            break
        child_keys = child_keys[fresh]
        parent_cid = parent_cid[fresh]
        edge_count = int(child_keys.shape[0])

        # First-touch dedup: mark each key's first position, then number the
        # unique children 0..u-1 in first-touch order (the queue order of
        # the dict BFS).
        positions = edge_index[:edge_count]
        slot[child_keys[::-1]] = positions[::-1]
        first_pos = slot[child_keys]
        is_first = first_pos == positions
        next_keys = child_keys[is_first]
        rank = np.cumsum(is_first) - 1
        child_cid = rank[first_pos]

        next_sigma = np.bincount(
            child_cid, weights=sigma[parent_cid], minlength=int(next_keys.shape[0])
        )
        visited[next_keys] = True
        levels.append(BatchLevel(parent_cid, child_cid, next_keys, next_sigma))
        frontier_keys = next_keys
        frontier_verts = next_keys % n
        sigma = next_sigma
        level += 1.0

    # Assemble the (K, n) boundary matrices from the compact levels.
    dist = np.full(k * n, np.inf)
    sig = np.zeros(k * n)
    dist[root_keys] = 0.0
    sig[root_keys] = root_sigma
    for depth, record in enumerate(levels, start=1):
        dist[record.frontier_keys] = float(depth)
        sig[record.frontier_keys] = record.sigma
    return BatchedSPD(
        csr, src, dist.reshape(k, n), sig.reshape(k, n), root_keys, root_sigma, levels
    )


def accumulate_dependencies_batch_csr(batch: BatchedSPD, out=None):
    """Run the Brandes back-propagation of every row of *batch* at once.

    Returns the ``(K, n)`` dependency matrix: row *k* is bit-identical to
    :func:`~repro.shortest_paths.dependencies.accumulate_dependencies_csr`
    applied to the SPD of ``batch.sources[k]`` alone (``delta[source] = 0``
    included).  Each BFS level is processed with one vectorised pass over
    its compact edge records — children at level ``L + 1`` have their final
    delta before the level-``L`` edges are touched, exactly as in the
    single-source recursion — and no intermediate touches ``K × n`` state.

    When *out* is given (an ``(n,)`` float64 buffer) the per-row vectors are
    additionally accumulated into it **sequentially in source order**, which
    is the canonical accumulation the execution layer's determinism contract
    is defined against (one vector addition per source, independent of how
    sources were grouped into batches).
    """
    k = len(batch)
    n = batch.csr.number_of_vertices()
    levels = batch.levels
    # deltas[L] is the compact dependency array of level L's frontier
    # (deltas[0] belongs to the roots).
    deltas = [np.zeros(batch.root_keys.shape[0])]
    deltas.extend(np.zeros(record.frontier_keys.shape[0]) for record in levels)
    sigmas = [batch.root_sigma] + [record.sigma for record in levels]
    for depth in range(len(levels) - 1, -1, -1):
        record = levels[depth]
        child_delta = deltas[depth + 1]
        contrib = (
            sigmas[depth][record.parent_cid]
            / record.sigma[record.child_cid]
            * (1.0 + child_delta[record.child_cid])
        )
        deltas[depth] += np.bincount(
            record.parent_cid, weights=contrib, minlength=deltas[depth].shape[0]
        )
    delta = np.zeros(k * n)
    # Roots carry delta 0 by definition, so only the deeper levels scatter.
    for depth, record in enumerate(levels, start=1):
        delta[record.frontier_keys] = deltas[depth]
    delta = delta.reshape(k, n)
    if out is not None:
        for row in delta:
            out += row
    return delta


def _batch_dependencies_spmm(csr: "CSRGraph", src, out):
    """Sparse-matmul batched Brandes: the high-throughput dependency path.

    Both sweeps become one ``csr_matrix @ dense`` product per BFS level —
    the forward wave propagates path counts to the next level through the
    (in-)adjacency, the backward wave spreads ``(1 + delta) / sigma``
    through the out-adjacency masked to each level's DAG parents — so the
    whole batch costs ``O(diameter)`` C-level products instead of
    ``K × diameter`` Python-level gathers.

    Every batch column is computed by an identical, column-local operation
    sequence, so a source's dependency vector is bit-identical regardless
    of which other sources share the batch (the execution layer's
    ``batch_size`` invariance).  Path counts are integer-valued and exact;
    the delta values may differ from the single-source kernel in the last
    ulp (different but fixed summation order).
    """
    n = csr.number_of_vertices()
    k = int(src.size)
    forward = csr.scipy_adjacency(transpose=True)
    backward = csr.scipy_adjacency()
    cols = np.arange(k)
    sig = np.zeros((n, k))
    sig[src, cols] = 1.0
    visited = np.zeros((n, k), dtype=bool)
    visited[src, cols] = True
    frontier = np.zeros((n, k))
    frontier[src, cols] = 1.0
    fresh = np.empty((n, k), dtype=bool)
    # One dense bool mask per level; bounded by the _SPMM_MAX_DEPTH gate, so
    # the footprint never exceeds a few dense buffers.
    level_masks = []
    while True:
        contrib = forward @ frontier
        np.greater(contrib, 0.0, out=fresh)
        fresh &= ~visited
        if not fresh.any():
            break
        visited |= fresh
        np.copyto(sig, contrib, where=fresh)
        # Zero everything but the new level in place: `contrib` becomes the
        # next frontier's sigma values.
        np.multiply(contrib, fresh, out=contrib)
        frontier = contrib
        level_masks.append(fresh.copy())
    delta = np.zeros((n, k))
    inverse_sigma = np.zeros((n, k))
    np.divide(1.0, sig, out=inverse_sigma, where=sig > 0.0)
    roots = np.zeros((n, k), dtype=bool)
    roots[src, cols] = True
    coeff = np.empty((n, k))
    for depth in range(len(level_masks) - 1, -1, -1):
        # coeff = (1 + delta) / sigma, masked to the level's children.
        np.add(delta, 1.0, out=coeff)
        coeff *= inverse_sigma
        np.multiply(coeff, level_masks[depth], out=coeff)
        spread = backward @ coeff
        # Credit the DAG parents (one level up; the roots for level 0).
        spread *= sig
        np.multiply(spread, level_masks[depth - 1] if depth > 0 else roots, out=spread)
        delta += spread
    delta[src, cols] = 0.0
    if out is not None:
        for column in range(k):
            out += delta[:, column]
    return delta.T


def dijkstra_spd_batch_csr(
    csr: "CSRGraph", sources: Sequence[int], *, kernel: str = "auto"
):
    """Build the SPDs of all weighted *sources*; batch-validated, one pass each.

    The weighted counterpart of :func:`bfs_spd_batch_csr` with the same
    up-front validation and per-row independence guarantee.  A weighted
    batch shares no level structure across sources (settle orders differ
    per source), so the batch is a tuple of independent
    :class:`~repro.shortest_paths.spd.CSRShortestPathDAG` passes — each row
    bit-identical to :func:`~repro.shortest_paths.dijkstra.dijkstra_spd_csr`
    run alone, on whichever rung ``kernel`` resolves to.
    """
    n = csr.number_of_vertices()
    src = np.asarray(sources, dtype=np.int64)
    if src.ndim != 1 or src.size == 0:
        raise ValueError("sources must be a non-empty 1-D sequence of vertex indices")
    if src.min() < 0 or src.max() >= n:
        raise IndexError(f"source indices out of range for {n} vertices")
    return tuple(dijkstra_spd_csr(csr, s, kernel=kernel) for s in src.tolist())


def batch_source_dependencies(
    csr: "CSRGraph",
    sources: Sequence[int],
    out=None,
    kernel: str = "auto",
    kernel_threads: int = 1,
):
    """Return the ``(K, n)`` dependency matrix of *sources* (build + accumulate).

    The batched twin of
    :func:`~repro.shortest_paths.dependencies.csr_source_dependencies`, and
    the entry point every execution-engine shard worker funnels through.
    The paths share the signature and the *out* contract (sequential
    per-source accumulation in source order):

    * unweighted + scipy importable + small-diameter snapshot
      (:func:`_spmm_suitable`) — the sparse-matmul sweep of
      :func:`_batch_dependencies_spmm` (fastest; delta values may differ
      from the single-source kernel in the last ulp);
    * unweighted otherwise (no scipy, or a deep graph where per-level
      spmm would cost ``O(diameter × m × K)``) — the batched wave, on the
      rung ``kernel`` resolves to: the numba batch kernel
      (:func:`~repro.shortest_paths.compiled.batch_dependencies_compiled`)
      or the pure-numpy wave (:func:`bfs_spd_batch_csr` +
      :func:`accumulate_dependencies_batch_csr`).  Both rungs are
      bit-identical to the single-source kernels per row;
    * weighted — one fused Dijkstra pass per row: the compiled batch
      kernel on that rung, otherwise
      :func:`~repro.shortest_paths.dijkstra.dijkstra_source_dependencies_csr`
      (no BFS levels to share across sources).

    The spmm sweep deliberately keeps precedence over *both* wave rungs:
    it is the fastest path where it applies, and keeping one dispatch
    order for every ``kernel`` value guarantees the knob can never change
    a result — ``kernel="csr"`` and ``kernel="compiled"`` take the same
    branch everywhere except the (bit-identical) wave pair.

    ``kernel_threads`` engages the ``prange`` variants of the compiled
    batch kernels (ignored — harmlessly — on every other path); threads
    stride independent rows, so the count is result-neutral by
    construction.

    All paths compute each row independently of the batch composition, so
    results never depend on ``batch_size``.
    """
    if not csr.weighted:
        if _scipy_sparse is not None and _spmm_suitable(csr):
            src = np.asarray(sources, dtype=np.int64)
            if src.ndim != 1 or src.size == 0:
                raise ValueError(
                    "sources must be a non-empty 1-D sequence of vertex indices"
                )
            n = csr.number_of_vertices()
            if src.min() < 0 or src.max() >= n:
                raise IndexError(f"source indices out of range for {n} vertices")
            block = max(1, _SPMM_BLOCK_ELEMENTS // max(n, 1))
            if src.size <= block:
                return _batch_dependencies_spmm(csr, src, out)
            # Cap the dense working set: process column sub-blocks (each
            # column is computed independently, so this is bit-identical to
            # the one-shot call).
            delta = np.empty((int(src.size), n))
            for begin in range(0, int(src.size), block):
                delta[begin : begin + block] = _batch_dependencies_spmm(
                    csr, src[begin : begin + block], out
                )
            return delta
        if resolve_kernel(kernel) == "compiled":
            from repro.shortest_paths.compiled import batch_dependencies_compiled

            return batch_dependencies_compiled(
                csr, sources, out=out, threads=kernel_threads
            )
        return accumulate_dependencies_batch_csr(
            bfs_spd_batch_csr(csr, sources), out=out
        )
    if resolve_kernel(kernel) == "compiled":
        from repro.shortest_paths.compiled import batch_dependencies_compiled

        return batch_dependencies_compiled(
            csr, sources, out=out, threads=kernel_threads
        )
    src = np.asarray(sources, dtype=np.int64)
    if src.ndim != 1 or src.size == 0:
        raise ValueError("sources must be a non-empty 1-D sequence of vertex indices")
    n = csr.number_of_vertices()
    if src.min() < 0 or src.max() >= n:
        raise IndexError(f"source indices out of range for {n} vertices")
    delta = np.empty((int(src.size), n))
    for row, source in enumerate(src.tolist()):
        delta[row] = dijkstra_source_dependencies_csr(csr, source)
        if out is not None:
            out += delta[row]
    return delta
