"""Compiled (numba-jitted) twins of the CSR traversal kernels.

The third and fastest rung of the backend ladder (``dict`` → ``csr`` →
``compiled``): scalar re-implementations of the hot loops every
estimator bottoms out in — the level-synchronous BFS wave of
:func:`repro.shortest_paths.bfs.bfs_spd_csr`, the flat-array-heap
Dijkstra wave of :func:`repro.shortest_paths.dijkstra.dijkstra_spd_csr`
and the Brandes back-propagations of
:func:`repro.shortest_paths.dependencies.accumulate_dependencies_csr` —
written against flat CSR ``indptr``/``indices``/``weights`` arrays in
the numba ``@njit`` subset and compiled to machine code on first call
(``cache=True``: later processes load the compiled artifact from the
on-disk cache instead of recompiling).  The batched kernels additionally
come in ``prange`` thread-parallel variants (``threads > 1`` via the
``kernel_threads`` execution knob): threads stride the independent
per-source rows with private scratch, which parallelises the batch
without touching any row's float summation order.

Selection is owned by :func:`repro.graphs.csr.resolve_kernel` (the
``kernel=`` twin of ``resolve_backend``): ``"auto"`` resolves to
``"compiled"`` exactly when numba is importable, the ``REPRO_KERNEL``
environment variable overrides it process-wide, and an explicit
``kernel="compiled"`` without numba warns and falls back to the numpy
rung.  Every function in this module is also runnable *without* numba —
the kernels are plain Python functions that only gain a ``@njit`` wrapper
when the import succeeds — which is what lets the equivalence test-suite
pin the compiled rung's arithmetic on numba-less installs.

Bit-identity contract
---------------------
The scalar loops replay the numpy kernels' floating-point work in the
exact same order, so every result is **bit-identical** to the CSR rung:

* sigma: ``np.bincount`` accumulates equal keys in input order starting
  from ``0.0``, and a child's path count starts at exactly ``0.0`` when
  its level is expanded — so the scalar ``sig[v] += sig[u]`` over edges in
  frontier-then-adjacency order produces the identical sequence of
  partial sums (``x + 0.0 == x`` bitwise for the non-negative values
  involved).
* delta: a vertex appears as a parent in exactly one level record, so its
  dependency starts at exactly ``0.0`` when that record is processed; the
  scalar ``delta[p] += sig[p] / sig[c] * (1.0 + delta[c])`` over the
  record's edges in order replays the bincount accumulation term for
  term, with the same division-first element order.
* weighted: the interpreter rung keys its heap ``(distance, counter,
  vertex)`` — a strict total order — so the flat-array heap here pops the
  same unique minimum at every step and replays the identical relaxation
  sequence (⇒ bit-identical ``dist``/``sig``); the weighted sweep
  computes the same coefficient-first products per settled vertex, whose
  per-parent updates touch disjoint cells.

The sparse-matmul sweep of :mod:`repro.shortest_paths.batch` keeps
precedence over these kernels in :func:`~repro.shortest_paths.batch.
batch_source_dependencies` — it already runs at C speed and its (fixed,
column-local) summation order differs from the wave kernels in the last
ulp, so letting the kernel knob swap it out would make ``kernel=`` able
to change a result.  With spmm shared by both rungs, ``kernel="csr"`` and
``kernel="compiled"`` are bitwise identical on **every** path.

Scratch buffers
---------------
The per-source state (distances, path counts, traversal order, flat DAG
edges, level offsets) lives in preallocated per-process scratch arrays
keyed by the snapshot's ``(n, m)`` shape, so a Brandes sweep allocates
nothing per source.  Functions that *return* arrays (the SPD builder, the
dependency vectors) copy out of the scratch — callers may hold results
across subsequent calls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.graphs.csr import np

try:  # pragma: no cover - exercised implicitly on numba-less installs
    from numba import njit as _njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover
    _njit = None
    prange = range
    NUMBA_AVAILABLE = False

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.csr import CSRGraph
    from repro.shortest_paths.spd import CSRShortestPathDAG

__all__ = [
    "NUMBA_AVAILABLE",
    "warm_up",
    "maybe_warm_up",
    "bfs_spd_compiled",
    "dijkstra_spd_compiled",
    "accumulate_dependencies_compiled",
    "source_dependencies_compiled",
    "batch_dependencies_compiled",
    "engage_threads",
]

#: Tolerance for weighted path-length equality — must match
#: ``repro.shortest_paths.dijkstra._EPSILON`` (asserted by the test-suite)
#: so the compiled heap wave takes exactly the interpreter rung's
#: tie/improve branches.
_EPS = 1e-12


def _jit(fn):
    """Wrap *fn* with ``@njit(cache=True)`` when numba is importable.

    Without numba the plain Python function is returned unchanged — slow,
    but arithmetically identical, which keeps this module importable and
    testable everywhere.
    """
    if _njit is None:
        return fn
    return _njit(cache=True)(fn)


def _jit_parallel(fn):
    """``@njit(parallel=True, cache=True)`` twin of :func:`_jit`.

    Without numba, ``prange`` is plain ``range`` and the strided
    thread-loop bodies run sequentially — same arithmetic, same results.
    """
    if _njit is None:
        return fn
    return _njit(parallel=True, cache=True)(fn)


def engage_threads(threads) -> int:
    """Clamp *threads* and point numba's thread pool at it; return the count.

    ``kernel_threads`` is result-neutral by construction (the parallel
    kernels stride independent per-source rows over threads), so the only
    job here is capping at numba's launch-time maximum —
    ``set_num_threads`` rejects anything above ``NUMBA_NUM_THREADS``.
    Without numba any value collapses to the sequential fallback.
    """
    if threads is None:
        return 1
    count = max(1, int(threads))
    if count == 1 or not NUMBA_AVAILABLE:
        return count
    import numba

    count = max(1, min(count, int(numba.config.NUMBA_NUM_THREADS)))
    numba.set_num_threads(count)
    return count


# ----------------------------------------------------------------------
# Kernels (njit-compatible subset; module-level so numba caches them)
# ----------------------------------------------------------------------
def _bfs_wave_py(
    indptr, indices, source, cutoff, dist, sig, order, level_start, edge_p, edge_c, edge_start
):
    """Scalar twin of the ``bfs_spd_csr`` level loop (see module docstring).

    Fills the scratch arrays in place and returns ``(n_order, n_levels)``:
    ``order[:n_order]`` is the traversal order, level ``L``'s frontier is
    ``order[level_start[L]:level_start[L + 1]]`` and its DAG edges (children
    at distance ``L + 1``) are ``edge_p/edge_c[edge_start[L]:edge_start[L +
    1]]`` — the flat-array form of the numpy kernel's ``level_edges``.
    ``cutoff`` is the inclusive distance bound (``inf`` = unbounded).
    """
    n = dist.shape[0]
    inf = np.inf
    for i in range(n):
        dist[i] = inf
        sig[i] = 0.0
    dist[source] = 0.0
    sig[source] = 1.0
    order[0] = source
    n_order = 1
    level_start[0] = 0
    level_start[1] = 1
    edge_start[0] = 0
    n_edges = 0
    n_levels = 0
    frontier_lo = 0
    frontier_hi = 1
    level = 0.0
    while frontier_hi > frontier_lo:
        if level + 1.0 > cutoff:
            break
        next_d = level + 1.0
        for fi in range(frontier_lo, frontier_hi):
            u = order[fi]
            su = sig[u]
            for ei in range(indptr[u], indptr[u + 1]):
                v = indices[ei]
                dv = dist[v]
                if dv == inf:
                    # First touch: the numpy kernel's isinf mask holds for
                    # every edge into this level's children because dist is
                    # only written after the level's gather — which is
                    # exactly first-touch OR already-at-next_d here.
                    dist[v] = next_d
                    order[n_order] = v
                    n_order += 1
                    edge_p[n_edges] = u
                    edge_c[n_edges] = v
                    n_edges += 1
                    sig[v] += su
                elif dv == next_d:
                    edge_p[n_edges] = u
                    edge_c[n_edges] = v
                    n_edges += 1
                    sig[v] += su
        if n_order == frontier_hi:
            break
        n_levels += 1
        edge_start[n_levels] = n_edges
        level_start[n_levels + 1] = n_order
        frontier_lo = frontier_hi
        frontier_hi = n_order
        level = next_d
    return n_order, n_levels


_bfs_wave = _jit(_bfs_wave_py)


def _accumulate_py(sig, delta, edge_p, edge_c, edge_start, n_levels, source):
    """Scalar twin of the level loop of ``accumulate_dependencies_csr``.

    Processes the level records deepest-first; a parent's delta is exactly
    ``0.0`` when its (single) record is reached, so the in-order scalar
    accumulation replays the bincount sums bit for bit.
    """
    n = delta.shape[0]
    for i in range(n):
        delta[i] = 0.0
    for lev in range(n_levels - 1, -1, -1):
        for e in range(edge_start[lev], edge_start[lev + 1]):
            p = edge_p[e]
            c = edge_c[e]
            delta[p] += sig[p] / sig[c] * (1.0 + delta[c])
    delta[source] = 0.0


_accumulate = _jit(_accumulate_py)


def _source_delta_py(
    indptr, indices, source, dist, sig, delta, order, level_start, edge_p, edge_c, edge_start
):
    """Fused per-source pass: BFS wave + dependency accumulation, one call."""
    n_order, n_levels = _bfs_wave(
        indptr, indices, source, np.inf, dist, sig, order, level_start, edge_p, edge_c, edge_start
    )
    _accumulate(sig, delta, edge_p, edge_c, edge_start, n_levels, source)
    return n_order


_source_delta = _jit(_source_delta_py)


def _batch_delta_py(
    indptr, indices, sources, delta, dist, sig, order, level_start, edge_p, edge_c, edge_start
):
    """Batched ``(K, n)`` twin: one fused pass per row, written into ``delta[k]``."""
    for k in range(sources.shape[0]):
        _source_delta(
            indptr,
            indices,
            sources[k],
            dist,
            sig,
            delta[k],
            order,
            level_start,
            edge_p,
            edge_c,
            edge_start,
        )


_batch_delta = _jit(_batch_delta_py)


def _batch_delta_parallel_py(indptr, indices, sources, delta, n_threads):
    """``prange``-over-threads twin of :func:`_batch_delta_py`.

    Each thread owns a private scratch set and the strided source subset
    ``k = t, t + T, t + 2T, ...``; every row ``delta[k]`` is the fused
    per-source kernel's output, written by exactly one thread.  Rows are
    mutually independent, so the partition (and hence the thread count)
    cannot change any row's float summation order — ``kernel_threads`` is
    result-neutral by construction, not by tolerance.
    """
    K = sources.shape[0]
    n = indptr.shape[0] - 1
    m = indices.shape[0]
    for t in prange(n_threads):
        dist = np.empty(n)
        sig = np.empty(n)
        order = np.empty(n, np.int64)
        level_start = np.empty(n + 2, np.int64)
        edge_p = np.empty(m, np.int64)
        edge_c = np.empty(m, np.int64)
        edge_start = np.empty(n + 2, np.int64)
        for k in range(t, K, n_threads):
            _source_delta(
                indptr,
                indices,
                sources[k],
                dist,
                sig,
                delta[k],
                order,
                level_start,
                edge_p,
                edge_c,
                edge_start,
            )


_batch_delta_parallel = _jit_parallel(_batch_delta_parallel_py)


def _dijkstra_wave_py(
    indptr,
    indices,
    weights,
    source,
    dist,
    tent,
    sig,
    order,
    heap_key,
    heap_cnt,
    heap_vtx,
    pred_head,
    pred_parent,
    pred_prev,
):
    """Flat-array heap twin of the ``dijkstra_spd_csr`` wave.

    The priority queue is a hand-rolled binary heap over three parallel
    arrays — key (tentative distance), push counter, vertex — with no
    tuple allocation.  The interpreter rung keys its ``heapq`` entries
    ``(distance, counter, vertex)``; the counter makes the key set
    strictly totally ordered, so the unique minimum at every pop is the
    same for any correct heap and both rungs settle vertices in the
    identical order (⇒ identical relaxation sequence ⇒ bit-identical
    ``dist``/``sig``).

    Predecessor lists are recorded as a linked event log: ``pred_head[v]``
    points at ``v``'s most recent event, ``pred_prev`` chains towards the
    oldest, and a strict improvement starts a fresh chain (abandoning the
    superseded parents exactly like the interpreter's list replacement).
    Chains therefore read parents in *reverse* insertion order;
    :func:`_collect_preds_py` restores insertion order when the DAG is
    materialised.  Returns ``n_order``.
    """
    n = dist.shape[0]
    inf = np.inf
    for i in range(n):
        dist[i] = inf
        tent[i] = inf
        sig[i] = 0.0
        pred_head[i] = -1
    sig[source] = 1.0
    tent[source] = 0.0
    heap_key[0] = 0.0
    heap_cnt[0] = 0
    heap_vtx[0] = source
    size = 1
    counter = 1
    n_order = 0
    n_events = 0
    while size > 0:
        dist_u = heap_key[0]
        u = heap_vtx[0]
        # Pop: move the last entry to the root and sift it down.  The
        # arrangement may differ from heapq's internal layout, but the
        # popped minimum is unique at every step, so the pop sequence
        # cannot.
        size -= 1
        if size > 0:
            key = heap_key[size]
            cnt = heap_cnt[size]
            vtx = heap_vtx[size]
            pos = 0
            while True:
                child = 2 * pos + 1
                if child >= size:
                    break
                right = child + 1
                if right < size and (
                    heap_key[right] < heap_key[child]
                    or (heap_key[right] == heap_key[child] and heap_cnt[right] < heap_cnt[child])
                ):
                    child = right
                if heap_key[child] < key or (heap_key[child] == key and heap_cnt[child] < cnt):
                    heap_key[pos] = heap_key[child]
                    heap_cnt[pos] = heap_cnt[child]
                    heap_vtx[pos] = heap_vtx[child]
                    pos = child
                else:
                    break
            heap_key[pos] = key
            heap_cnt[pos] = cnt
            heap_vtx[pos] = vtx
        if dist[u] != inf:
            continue  # already settled via a shorter path
        dist[u] = dist_u
        order[n_order] = u
        n_order += 1
        sigma_u = sig[u]
        for ei in range(indptr[u], indptr[u + 1]):
            v = indices[ei]
            candidate = dist_u + weights[ei]
            if candidate > 1.0:
                tolerance = _EPS * candidate
            else:
                tolerance = _EPS
            settled = dist[v]
            if settled != inf:
                diff = candidate - settled
                if -tolerance <= diff <= tolerance:
                    sig[v] += sigma_u
                    pred_parent[n_events] = u
                    pred_prev[n_events] = pred_head[v]
                    pred_head[v] = n_events
                    n_events += 1
                continue
            previous = tent[v]
            if candidate < previous - tolerance:
                tent[v] = candidate
                sig[v] = sigma_u
                pred_parent[n_events] = u
                pred_prev[n_events] = -1  # strict improvement: fresh chain
                pred_head[v] = n_events
                n_events += 1
                # Push (sift up from the first free slot).
                pos = size
                size += 1
                while pos > 0:
                    parent = (pos - 1) >> 1
                    if candidate < heap_key[parent] or (
                        candidate == heap_key[parent] and counter < heap_cnt[parent]
                    ):
                        heap_key[pos] = heap_key[parent]
                        heap_cnt[pos] = heap_cnt[parent]
                        heap_vtx[pos] = heap_vtx[parent]
                        pos = parent
                    else:
                        break
                heap_key[pos] = candidate
                heap_cnt[pos] = counter
                heap_vtx[pos] = v
                counter += 1
            else:
                diff = candidate - previous
                if -tolerance <= diff <= tolerance:
                    sig[v] += sigma_u
                    pred_parent[n_events] = u
                    pred_prev[n_events] = pred_head[v]
                    pred_head[v] = n_events
                    n_events += 1
    return n_order


_dijkstra_wave = _jit(_dijkstra_wave_py)


def _waccumulate_py(sig, delta, order, n_order, pred_head, pred_parent, pred_prev, source):
    """Weighted Brandes sweep over the wave's linked predecessor log.

    Walks settled vertices deepest-first (reverse settle order — the
    weighted replacement for BFS level order) computing the interpreter
    rung's coefficient-first products: ``coeff = (1 + delta[w]) / sig[w]``
    once per vertex, then ``delta[p] += sig[p] * coeff`` per parent.  A
    vertex's parents are distinct, so the per-parent updates touch
    disjoint cells and the chain's reverse insertion order cannot change
    any value — bit-identical to the numpy sweep's fancy-indexed
    accumulation.
    """
    n = delta.shape[0]
    for i in range(n):
        delta[i] = 0.0
    for oi in range(n_order - 1, -1, -1):
        w = order[oi]
        e = pred_head[w]
        if e >= 0:
            coeff = (1.0 + delta[w]) / sig[w]
            while e >= 0:
                p = pred_parent[e]
                delta[p] += sig[p] * coeff
                e = pred_prev[e]
    delta[source] = 0.0


_waccumulate = _jit(_waccumulate_py)


def _waccumulate_flat_py(sig, delta, order, n_order, pred_indptr, pred_indices, source):
    """Weighted Brandes sweep over materialised CSR predecessor arrays.

    The :func:`accumulate_dependencies_compiled` entry point for
    Dijkstra-built DAGs — same arithmetic as :func:`_waccumulate_py`, fed
    from ``pred_indptr``/``pred_indices`` instead of the event log.
    """
    n = delta.shape[0]
    for i in range(n):
        delta[i] = 0.0
    for oi in range(n_order - 1, -1, -1):
        w = order[oi]
        lo = pred_indptr[w]
        hi = pred_indptr[w + 1]
        if hi > lo:
            coeff = (1.0 + delta[w]) / sig[w]
            for e in range(lo, hi):
                p = pred_indices[e]
                delta[p] += sig[p] * coeff
    delta[source] = 0.0


_waccumulate_flat = _jit(_waccumulate_flat_py)


def _collect_preds_py(pred_head, pred_parent, pred_prev, pred_indptr, pred_indices):
    """Flatten the linked predecessor log into CSR arrays, insertion-ordered.

    Within-vertex parent order is observable — the samplers' backtracking
    walks parents with a cumulative rng scan and the group-betweenness
    sweep float-sums over them — so each chain (reverse insertion order)
    is written back-to-front into its segment, restoring the interpreter
    rung's append order exactly.  Returns the total predecessor count.
    """
    n = pred_head.shape[0]
    pred_indptr[0] = 0
    for v in range(n):
        count = 0
        e = pred_head[v]
        while e >= 0:
            count += 1
            e = pred_prev[e]
        pred_indptr[v + 1] = pred_indptr[v] + count
    for v in range(n):
        e = pred_head[v]
        pos = pred_indptr[v + 1]
        while e >= 0:
            pos -= 1
            pred_indices[pos] = pred_parent[e]
            e = pred_prev[e]
    return pred_indptr[n]


_collect_preds = _jit(_collect_preds_py)


def _wsource_delta_py(
    indptr,
    indices,
    weights,
    source,
    dist,
    tent,
    sig,
    delta,
    order,
    heap_key,
    heap_cnt,
    heap_vtx,
    pred_head,
    pred_parent,
    pred_prev,
):
    """Fused weighted per-source pass: Dijkstra wave + accumulation."""
    n_order = _dijkstra_wave(
        indptr,
        indices,
        weights,
        source,
        dist,
        tent,
        sig,
        order,
        heap_key,
        heap_cnt,
        heap_vtx,
        pred_head,
        pred_parent,
        pred_prev,
    )
    _waccumulate(sig, delta, order, n_order, pred_head, pred_parent, pred_prev, source)
    return n_order


_wsource_delta = _jit(_wsource_delta_py)


def _wbatch_delta_py(
    indptr,
    indices,
    weights,
    sources,
    delta,
    dist,
    tent,
    sig,
    order,
    heap_key,
    heap_cnt,
    heap_vtx,
    pred_head,
    pred_parent,
    pred_prev,
):
    """Batched ``(K, n)`` weighted twin: one fused pass per row."""
    for k in range(sources.shape[0]):
        _wsource_delta(
            indptr,
            indices,
            weights,
            sources[k],
            dist,
            tent,
            sig,
            delta[k],
            order,
            heap_key,
            heap_cnt,
            heap_vtx,
            pred_head,
            pred_parent,
            pred_prev,
        )


_wbatch_delta = _jit(_wbatch_delta_py)


def _wbatch_delta_parallel_py(indptr, indices, weights, sources, delta, n_threads):
    """``prange``-over-threads twin of :func:`_wbatch_delta_py`.

    Same private-scratch striding as :func:`_batch_delta_parallel_py`:
    row independence makes the thread count result-neutral.
    """
    K = sources.shape[0]
    n = indptr.shape[0] - 1
    m = indices.shape[0]
    for t in prange(n_threads):
        dist = np.empty(n)
        tent = np.empty(n)
        sig = np.empty(n)
        order = np.empty(n, np.int64)
        heap_key = np.empty(m + 1)
        heap_cnt = np.empty(m + 1, np.int64)
        heap_vtx = np.empty(m + 1, np.int64)
        pred_head = np.empty(n, np.int64)
        pred_parent = np.empty(m, np.int64)
        pred_prev = np.empty(m, np.int64)
        for k in range(t, K, n_threads):
            _wsource_delta(
                indptr,
                indices,
                weights,
                sources[k],
                dist,
                tent,
                sig,
                delta[k],
                order,
                heap_key,
                heap_cnt,
                heap_vtx,
                pred_head,
                pred_parent,
                pred_prev,
            )


_wbatch_delta_parallel = _jit_parallel(_wbatch_delta_parallel_py)


# ----------------------------------------------------------------------
# Per-process scratch (one set of buffers per snapshot shape)
# ----------------------------------------------------------------------
#: Scratch sets kept alive at once; enough for a handful of graphs without
#: letting a long session accumulate buffers for every snapshot it ever saw.
_SCRATCH_LIMIT = 4

_SCRATCH: dict = {}


def _scratch_for(n: int, m: int, kind: str = "bfs") -> dict:
    key = (kind, n, m)
    arrays = _SCRATCH.pop(key, None)
    if arrays is None:
        if len(_SCRATCH) >= _SCRATCH_LIMIT:
            _SCRATCH.pop(next(iter(_SCRATCH)))
        if kind == "bfs":
            arrays = {
                "dist": np.empty(n),
                "sig": np.empty(n),
                "delta": np.empty(n),
                "order": np.empty(n, dtype=np.int64),
                # A BFS has at most n - 1 levels; +2 gives the kernels one
                # slot of slack for the trailing offset they write per level.
                "level_start": np.empty(n + 2, dtype=np.int64),
                "edge_p": np.empty(m, dtype=np.int64),
                "edge_c": np.empty(m, dtype=np.int64),
                "edge_start": np.empty(n + 2, dtype=np.int64),
            }
        else:  # dijkstra
            arrays = {
                "dist": np.empty(n),
                "tent": np.empty(n),
                "sig": np.empty(n),
                "delta": np.empty(n),
                "order": np.empty(n, dtype=np.int64),
                # The heap holds at most one entry per push; pushes happen
                # only on strict improvement — at most once per directed
                # edge slot — plus the initial source entry.
                "heap_key": np.empty(m + 1),
                "heap_cnt": np.empty(m + 1, dtype=np.int64),
                "heap_vtx": np.empty(m + 1, dtype=np.int64),
                "pred_head": np.empty(n, dtype=np.int64),
                # One predecessor event per relaxation, one relaxation per
                # directed edge slot.
                "pred_parent": np.empty(m, dtype=np.int64),
                "pred_prev": np.empty(m, dtype=np.int64),
                "pred_indptr": np.empty(n + 1, dtype=np.int64),
                "pred_flat": np.empty(m, dtype=np.int64),
            }
    _SCRATCH[key] = arrays  # re-insert: plain dict preserves LRU order
    return arrays


def _check_source(csr: "CSRGraph", source: int) -> int:
    n = csr.number_of_vertices()
    if not 0 <= source < n:
        raise IndexError(f"source index {source} out of range for {n} vertices")
    return n


# ----------------------------------------------------------------------
# Public entry points (the dispatch shims in bfs/dependencies/batch call
# these when resolve_kernel picks the compiled rung)
# ----------------------------------------------------------------------
def bfs_spd_compiled(
    csr: "CSRGraph", source: int, *, cutoff: Optional[float] = None
) -> "CSRShortestPathDAG":
    """Compiled twin of :func:`~repro.shortest_paths.bfs.bfs_spd_csr`.

    Returns a regular :class:`~repro.shortest_paths.spd.CSRShortestPathDAG`
    whose ``dist`` / ``sig`` / ``order_indices`` / ``level_edges`` arrays
    are bit-identical (and shape-identical) to the numpy kernel's, so every
    downstream consumer — accumulation, predecessor construction, sampler
    backtracking — behaves exactly as on the CSR rung.
    """
    from repro.shortest_paths.spd import CSRShortestPathDAG

    n = _check_source(csr, source)
    scratch = _scratch_for(n, int(csr.indices.shape[0]))
    bound = np.inf if cutoff is None else float(cutoff)
    n_order, n_levels = _bfs_wave(
        csr.indptr,
        csr.indices,
        source,
        bound,
        scratch["dist"],
        scratch["sig"],
        scratch["order"],
        scratch["level_start"],
        scratch["edge_p"],
        scratch["edge_c"],
        scratch["edge_start"],
    )
    edge_start = scratch["edge_start"]
    level_edges: List[Tuple] = [
        (
            scratch["edge_p"][edge_start[lev] : edge_start[lev + 1]].copy(),
            scratch["edge_c"][edge_start[lev] : edge_start[lev + 1]].copy(),
        )
        for lev in range(n_levels)
    ]
    return CSRShortestPathDAG(
        csr,
        source,
        scratch["dist"].copy(),
        scratch["sig"].copy(),
        scratch["order"][:n_order].copy(),
        level_edges=level_edges,
    )


def dijkstra_spd_compiled(csr: "CSRGraph", source: int) -> "CSRShortestPathDAG":
    """Compiled twin of :func:`~repro.shortest_paths.dijkstra.dijkstra_spd_csr`.

    Runs the flat-array heap wave and materialises the predecessor CSR
    arrays in the interpreter rung's insertion order, so ``dist`` / ``sig``
    / ``order_indices`` / ``pred_indptr`` / ``pred_indices`` are all
    bit-identical — downstream accumulation, rng-driven path backtracking
    and group sweeps behave exactly as on the CSR rung.
    """
    from repro.shortest_paths.dijkstra import validate_positive_weights
    from repro.shortest_paths.spd import CSRShortestPathDAG

    n = _check_source(csr, source)
    validate_positive_weights(csr)
    scratch = _scratch_for(n, int(csr.indices.shape[0]), "dijkstra")
    n_order = _dijkstra_wave(
        csr.indptr,
        csr.indices,
        csr.weights,
        source,
        scratch["dist"],
        scratch["tent"],
        scratch["sig"],
        scratch["order"],
        scratch["heap_key"],
        scratch["heap_cnt"],
        scratch["heap_vtx"],
        scratch["pred_head"],
        scratch["pred_parent"],
        scratch["pred_prev"],
    )
    total = _collect_preds(
        scratch["pred_head"],
        scratch["pred_parent"],
        scratch["pred_prev"],
        scratch["pred_indptr"],
        scratch["pred_flat"],
    )
    return CSRShortestPathDAG(
        csr,
        source,
        scratch["dist"].copy(),
        scratch["sig"].copy(),
        scratch["order"][:n_order].copy(),
        level_edges=None,
        pred_indptr=scratch["pred_indptr"].copy(),
        pred_indices=scratch["pred_flat"][: int(total)].copy(),
    )


def accumulate_dependencies_compiled(spd: "CSRShortestPathDAG"):
    """Compiled twin of the sweep loops of ``accumulate_dependencies_csr``.

    BFS-built DAGs (``level_edges`` recorded) flatten the per-level edge
    arrays once and replay the bincount accumulation bit for bit;
    Dijkstra-built DAGs run the reverse-settle-order sweep over their CSR
    predecessor arrays.  Prefer :func:`source_dependencies_compiled` when
    the DAG itself is not needed — the fused kernels skip the DAG
    materialisation entirely.
    """
    if spd.level_edges is None:
        n = spd.csr.number_of_vertices()
        delta = np.empty(n)
        order = spd.order_indices
        _waccumulate_flat(
            spd.sig,
            delta,
            order,
            int(order.shape[0]),
            spd.pred_indptr,
            spd.pred_indices,
            spd.source_index,
        )
        return delta
    n = spd.csr.number_of_vertices()
    n_levels = len(spd.level_edges)
    edge_start = np.zeros(n_levels + 1, dtype=np.int64)
    for lev, (parents, _) in enumerate(spd.level_edges):
        edge_start[lev + 1] = edge_start[lev] + parents.shape[0]
    if n_levels:
        edge_p = np.concatenate([p for p, _ in spd.level_edges])
        edge_c = np.concatenate([c for _, c in spd.level_edges])
    else:
        edge_p = np.empty(0, dtype=np.int64)
        edge_c = np.empty(0, dtype=np.int64)
    delta = np.empty(n)
    _accumulate(spd.sig, delta, edge_p, edge_c, edge_start, n_levels, spd.source_index)
    return delta


def source_dependencies_compiled(csr: "CSRGraph", source: int):
    """Fused compiled per-source pass: the dependency array of *source*.

    The compiled twin of
    :func:`~repro.shortest_paths.dependencies.csr_source_dependencies` —
    one kernel call, no Python-level DAG.  Weighted snapshots take the
    fused Dijkstra kernel, unweighted ones the fused BFS kernel.
    """
    n = _check_source(csr, source)
    delta = np.empty(n)
    if csr.weighted:
        from repro.shortest_paths.dijkstra import validate_positive_weights

        validate_positive_weights(csr)
        scratch = _scratch_for(n, int(csr.indices.shape[0]), "dijkstra")
        _wsource_delta(
            csr.indptr,
            csr.indices,
            csr.weights,
            source,
            scratch["dist"],
            scratch["tent"],
            scratch["sig"],
            delta,
            scratch["order"],
            scratch["heap_key"],
            scratch["heap_cnt"],
            scratch["heap_vtx"],
            scratch["pred_head"],
            scratch["pred_parent"],
            scratch["pred_prev"],
        )
        return delta
    scratch = _scratch_for(n, int(csr.indices.shape[0]))
    _source_delta(
        csr.indptr,
        csr.indices,
        source,
        scratch["dist"],
        scratch["sig"],
        delta,
        scratch["order"],
        scratch["level_start"],
        scratch["edge_p"],
        scratch["edge_c"],
        scratch["edge_start"],
    )
    return delta


def batch_dependencies_compiled(
    csr: "CSRGraph", sources: Sequence[int], out=None, threads: int = 1
):
    """Batched ``(K, n)`` compiled twin of ``batch_source_dependencies``.

    Validation, result shape and the *out* contract (sequential per-row
    accumulation in source order) mirror the numpy batch kernels; each row
    is the fused per-source kernel's output, so the matrix is bit-identical
    to the wave kernels row for row — weighted snapshots included (fused
    Dijkstra rows).  ``threads > 1`` runs the ``prange`` variant: threads
    stride the rows with private scratch, so the count is result-neutral
    (see :func:`_batch_delta_parallel_py`); the *out* accumulation always
    happens afterwards in source order.
    """
    n = csr.number_of_vertices()
    src = np.asarray(sources, dtype=np.int64)
    if src.ndim != 1 or src.size == 0:
        raise ValueError("sources must be a non-empty 1-D sequence of vertex indices")
    if src.min() < 0 or src.max() >= n:
        raise IndexError(f"source indices out of range for {n} vertices")
    m = int(csr.indices.shape[0])
    delta = np.empty((int(src.size), n))
    threads = engage_threads(threads)
    if csr.weighted:
        from repro.shortest_paths.dijkstra import validate_positive_weights

        validate_positive_weights(csr)
        if threads > 1:
            _wbatch_delta_parallel(csr.indptr, csr.indices, csr.weights, src, delta, threads)
        else:
            scratch = _scratch_for(n, m, "dijkstra")
            _wbatch_delta(
                csr.indptr,
                csr.indices,
                csr.weights,
                src,
                delta,
                scratch["dist"],
                scratch["tent"],
                scratch["sig"],
                scratch["order"],
                scratch["heap_key"],
                scratch["heap_cnt"],
                scratch["heap_vtx"],
                scratch["pred_head"],
                scratch["pred_parent"],
                scratch["pred_prev"],
            )
    elif threads > 1:
        _batch_delta_parallel(csr.indptr, csr.indices, src, delta, threads)
    else:
        scratch = _scratch_for(n, m)
        _batch_delta(
            csr.indptr,
            csr.indices,
            src,
            delta,
            scratch["dist"],
            scratch["sig"],
            scratch["order"],
            scratch["level_start"],
            scratch["edge_p"],
            scratch["edge_c"],
            scratch["edge_start"],
        )
    if out is not None:
        for row in delta:
            out += row
    return delta


# ----------------------------------------------------------------------
# JIT warm-up (pool initializers call this so compile cost is paid once
# per worker process, not once per shard)
# ----------------------------------------------------------------------
_WARMED = False


def warm_up() -> bool:
    """Compile (or load from the on-disk cache) every kernel on a tiny graph.

    Returns ``True`` when the compiled kernels are ready, ``False`` when
    numba (or numpy) is unavailable.  Idempotent and cheap after the first
    call; with ``NUMBA_CACHE_DIR`` shared across processes the per-process
    cost drops to a cache load.
    """
    global _WARMED
    if not NUMBA_AVAILABLE or np is None:
        return False
    if _WARMED:
        return True
    # A 3-vertex path exercises every branch worth compiling: a fresh
    # child, a second level and a non-trivial back-propagation.
    indptr = np.array([0, 1, 3, 4], dtype=np.int64)
    indices = np.array([1, 0, 2, 1], dtype=np.int64)
    weights = np.array([0.5, 0.5, 2.0, 2.0])
    n, m = 3, 4
    dist = np.empty(n)
    sig = np.empty(n)
    delta = np.empty((1, n))
    order = np.empty(n, dtype=np.int64)
    level_start = np.empty(n + 2, dtype=np.int64)
    edge_p = np.empty(m, dtype=np.int64)
    edge_c = np.empty(m, dtype=np.int64)
    edge_start = np.empty(n + 2, dtype=np.int64)
    _bfs_wave(indptr, indices, 0, np.inf, dist, sig, order, level_start, edge_p, edge_c, edge_start)
    src = np.zeros(1, dtype=np.int64)
    _batch_delta(
        indptr, indices, src, delta, dist, sig, order, level_start, edge_p, edge_c, edge_start
    )
    _batch_delta_parallel(indptr, indices, src, delta, 1)
    # Weighted twins: the same path with non-unit weights compiles the
    # heap wave, the linked-log sweep, the flat sweep and the collector.
    tent = np.empty(n)
    heap_key = np.empty(m + 1)
    heap_cnt = np.empty(m + 1, dtype=np.int64)
    heap_vtx = np.empty(m + 1, dtype=np.int64)
    pred_head = np.empty(n, dtype=np.int64)
    pred_parent = np.empty(m, dtype=np.int64)
    pred_prev = np.empty(m, dtype=np.int64)
    pred_indptr = np.empty(n + 1, dtype=np.int64)
    pred_flat = np.empty(m, dtype=np.int64)
    n_order = _dijkstra_wave(
        indptr, indices, weights, 0, dist, tent, sig, order,
        heap_key, heap_cnt, heap_vtx, pred_head, pred_parent, pred_prev,
    )
    _waccumulate(sig, delta[0], order, n_order, pred_head, pred_parent, pred_prev, 0)
    _collect_preds(pred_head, pred_parent, pred_prev, pred_indptr, pred_flat)
    _waccumulate_flat(sig, delta[0], order, n_order, pred_indptr, pred_flat, 0)
    _wbatch_delta(
        indptr, indices, weights, src, delta, dist, tent, sig, order,
        heap_key, heap_cnt, heap_vtx, pred_head, pred_parent, pred_prev,
    )
    _wbatch_delta_parallel(indptr, indices, weights, src, delta, 1)
    _WARMED = True
    return True


def maybe_warm_up() -> None:
    """Warm the JIT exactly when a worker will actually run the compiled rung.

    Called from the pool initializers of :mod:`repro.execution.scheduler`
    and :mod:`repro.execution.runtime`; never raises (a warm-up failure
    must not kill a worker — the first kernel call would just pay the
    compile itself).
    """
    if not NUMBA_AVAILABLE:
        return
    try:
        from repro.graphs.csr import resolve_kernel

        if resolve_kernel("auto") == "compiled":
            warm_up()
    except Exception:  # pragma: no cover - defensive: never break a worker
        pass
