"""Compiled (numba-jitted) twins of the CSR traversal kernels.

The third and fastest rung of the backend ladder (``dict`` → ``csr`` →
``compiled``): scalar re-implementations of the two hot loops every
estimator bottoms out in — the level-synchronous BFS wave of
:func:`repro.shortest_paths.bfs.bfs_spd_csr` and the per-level Brandes
back-propagation of
:func:`repro.shortest_paths.dependencies.accumulate_dependencies_csr` —
written against flat CSR ``indptr``/``indices`` arrays in the numba
``@njit`` subset and compiled to machine code on first call
(``cache=True``: later processes load the compiled artifact from the
on-disk cache instead of recompiling).

Selection is owned by :func:`repro.graphs.csr.resolve_kernel` (the
``kernel=`` twin of ``resolve_backend``): ``"auto"`` resolves to
``"compiled"`` exactly when numba is importable, the ``REPRO_KERNEL``
environment variable overrides it process-wide, and an explicit
``kernel="compiled"`` without numba warns and falls back to the numpy
rung.  Every function in this module is also runnable *without* numba —
the kernels are plain Python functions that only gain a ``@njit`` wrapper
when the import succeeds — which is what lets the equivalence test-suite
pin the compiled rung's arithmetic on numba-less installs.

Bit-identity contract
---------------------
The scalar loops replay the numpy kernels' floating-point work in the
exact same order, so every result is **bit-identical** to the CSR rung:

* sigma: ``np.bincount`` accumulates equal keys in input order starting
  from ``0.0``, and a child's path count starts at exactly ``0.0`` when
  its level is expanded — so the scalar ``sig[v] += sig[u]`` over edges in
  frontier-then-adjacency order produces the identical sequence of
  partial sums (``x + 0.0 == x`` bitwise for the non-negative values
  involved).
* delta: a vertex appears as a parent in exactly one level record, so its
  dependency starts at exactly ``0.0`` when that record is processed; the
  scalar ``delta[p] += sig[p] / sig[c] * (1.0 + delta[c])`` over the
  record's edges in order replays the bincount accumulation term for
  term, with the same division-first element order.

The sparse-matmul sweep of :mod:`repro.shortest_paths.batch` keeps
precedence over these kernels in :func:`~repro.shortest_paths.batch.
batch_source_dependencies` — it already runs at C speed and its (fixed,
column-local) summation order differs from the wave kernels in the last
ulp, so letting the kernel knob swap it out would make ``kernel=`` able
to change a result.  With spmm shared by both rungs, ``kernel="csr"`` and
``kernel="compiled"`` are bitwise identical on **every** path.

Scratch buffers
---------------
The per-source state (distances, path counts, traversal order, flat DAG
edges, level offsets) lives in preallocated per-process scratch arrays
keyed by the snapshot's ``(n, m)`` shape, so a Brandes sweep allocates
nothing per source.  Functions that *return* arrays (the SPD builder, the
dependency vectors) copy out of the scratch — callers may hold results
across subsequent calls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.graphs.csr import np

try:  # pragma: no cover - exercised implicitly on numba-less installs
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover
    _njit = None
    NUMBA_AVAILABLE = False

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.csr import CSRGraph
    from repro.shortest_paths.spd import CSRShortestPathDAG

__all__ = [
    "NUMBA_AVAILABLE",
    "warm_up",
    "maybe_warm_up",
    "bfs_spd_compiled",
    "accumulate_dependencies_compiled",
    "source_dependencies_compiled",
    "batch_dependencies_compiled",
]


def _jit(fn):
    """Wrap *fn* with ``@njit(cache=True)`` when numba is importable.

    Without numba the plain Python function is returned unchanged — slow,
    but arithmetically identical, which keeps this module importable and
    testable everywhere.
    """
    if _njit is None:
        return fn
    return _njit(cache=True)(fn)


# ----------------------------------------------------------------------
# Kernels (njit-compatible subset; module-level so numba caches them)
# ----------------------------------------------------------------------
def _bfs_wave_py(
    indptr, indices, source, cutoff, dist, sig, order, level_start, edge_p, edge_c, edge_start
):
    """Scalar twin of the ``bfs_spd_csr`` level loop (see module docstring).

    Fills the scratch arrays in place and returns ``(n_order, n_levels)``:
    ``order[:n_order]`` is the traversal order, level ``L``'s frontier is
    ``order[level_start[L]:level_start[L + 1]]`` and its DAG edges (children
    at distance ``L + 1``) are ``edge_p/edge_c[edge_start[L]:edge_start[L +
    1]]`` — the flat-array form of the numpy kernel's ``level_edges``.
    ``cutoff`` is the inclusive distance bound (``inf`` = unbounded).
    """
    n = dist.shape[0]
    inf = np.inf
    for i in range(n):
        dist[i] = inf
        sig[i] = 0.0
    dist[source] = 0.0
    sig[source] = 1.0
    order[0] = source
    n_order = 1
    level_start[0] = 0
    level_start[1] = 1
    edge_start[0] = 0
    n_edges = 0
    n_levels = 0
    frontier_lo = 0
    frontier_hi = 1
    level = 0.0
    while frontier_hi > frontier_lo:
        if level + 1.0 > cutoff:
            break
        next_d = level + 1.0
        for fi in range(frontier_lo, frontier_hi):
            u = order[fi]
            su = sig[u]
            for ei in range(indptr[u], indptr[u + 1]):
                v = indices[ei]
                dv = dist[v]
                if dv == inf:
                    # First touch: the numpy kernel's isinf mask holds for
                    # every edge into this level's children because dist is
                    # only written after the level's gather — which is
                    # exactly first-touch OR already-at-next_d here.
                    dist[v] = next_d
                    order[n_order] = v
                    n_order += 1
                    edge_p[n_edges] = u
                    edge_c[n_edges] = v
                    n_edges += 1
                    sig[v] += su
                elif dv == next_d:
                    edge_p[n_edges] = u
                    edge_c[n_edges] = v
                    n_edges += 1
                    sig[v] += su
        if n_order == frontier_hi:
            break
        n_levels += 1
        edge_start[n_levels] = n_edges
        level_start[n_levels + 1] = n_order
        frontier_lo = frontier_hi
        frontier_hi = n_order
        level = next_d
    return n_order, n_levels


_bfs_wave = _jit(_bfs_wave_py)


def _accumulate_py(sig, delta, edge_p, edge_c, edge_start, n_levels, source):
    """Scalar twin of the level loop of ``accumulate_dependencies_csr``.

    Processes the level records deepest-first; a parent's delta is exactly
    ``0.0`` when its (single) record is reached, so the in-order scalar
    accumulation replays the bincount sums bit for bit.
    """
    n = delta.shape[0]
    for i in range(n):
        delta[i] = 0.0
    for lev in range(n_levels - 1, -1, -1):
        for e in range(edge_start[lev], edge_start[lev + 1]):
            p = edge_p[e]
            c = edge_c[e]
            delta[p] += sig[p] / sig[c] * (1.0 + delta[c])
    delta[source] = 0.0


_accumulate = _jit(_accumulate_py)


def _source_delta_py(
    indptr, indices, source, dist, sig, delta, order, level_start, edge_p, edge_c, edge_start
):
    """Fused per-source pass: BFS wave + dependency accumulation, one call."""
    n_order, n_levels = _bfs_wave(
        indptr, indices, source, np.inf, dist, sig, order, level_start, edge_p, edge_c, edge_start
    )
    _accumulate(sig, delta, edge_p, edge_c, edge_start, n_levels, source)
    return n_order


_source_delta = _jit(_source_delta_py)


def _batch_delta_py(
    indptr, indices, sources, delta, dist, sig, order, level_start, edge_p, edge_c, edge_start
):
    """Batched ``(K, n)`` twin: one fused pass per row, written into ``delta[k]``."""
    for k in range(sources.shape[0]):
        _source_delta(
            indptr,
            indices,
            sources[k],
            dist,
            sig,
            delta[k],
            order,
            level_start,
            edge_p,
            edge_c,
            edge_start,
        )


_batch_delta = _jit(_batch_delta_py)


# ----------------------------------------------------------------------
# Per-process scratch (one set of buffers per snapshot shape)
# ----------------------------------------------------------------------
#: Scratch sets kept alive at once; enough for a handful of graphs without
#: letting a long session accumulate buffers for every snapshot it ever saw.
_SCRATCH_LIMIT = 4

_SCRATCH: dict = {}


def _scratch_for(n: int, m: int) -> dict:
    key = (n, m)
    arrays = _SCRATCH.pop(key, None)
    if arrays is None:
        if len(_SCRATCH) >= _SCRATCH_LIMIT:
            _SCRATCH.pop(next(iter(_SCRATCH)))
        arrays = {
            "dist": np.empty(n),
            "sig": np.empty(n),
            "delta": np.empty(n),
            "order": np.empty(n, dtype=np.int64),
            # A BFS has at most n - 1 levels; +2 gives the kernels one slot
            # of slack for the trailing offset they write per level.
            "level_start": np.empty(n + 2, dtype=np.int64),
            "edge_p": np.empty(m, dtype=np.int64),
            "edge_c": np.empty(m, dtype=np.int64),
            "edge_start": np.empty(n + 2, dtype=np.int64),
        }
    _SCRATCH[key] = arrays  # re-insert: plain dict preserves LRU order
    return arrays


def _check_source(csr: "CSRGraph", source: int) -> int:
    n = csr.number_of_vertices()
    if not 0 <= source < n:
        raise IndexError(f"source index {source} out of range for {n} vertices")
    return n


# ----------------------------------------------------------------------
# Public entry points (the dispatch shims in bfs/dependencies/batch call
# these when resolve_kernel picks the compiled rung)
# ----------------------------------------------------------------------
def bfs_spd_compiled(
    csr: "CSRGraph", source: int, *, cutoff: Optional[float] = None
) -> "CSRShortestPathDAG":
    """Compiled twin of :func:`~repro.shortest_paths.bfs.bfs_spd_csr`.

    Returns a regular :class:`~repro.shortest_paths.spd.CSRShortestPathDAG`
    whose ``dist`` / ``sig`` / ``order_indices`` / ``level_edges`` arrays
    are bit-identical (and shape-identical) to the numpy kernel's, so every
    downstream consumer — accumulation, predecessor construction, sampler
    backtracking — behaves exactly as on the CSR rung.
    """
    from repro.shortest_paths.spd import CSRShortestPathDAG

    n = _check_source(csr, source)
    scratch = _scratch_for(n, int(csr.indices.shape[0]))
    bound = np.inf if cutoff is None else float(cutoff)
    n_order, n_levels = _bfs_wave(
        csr.indptr,
        csr.indices,
        source,
        bound,
        scratch["dist"],
        scratch["sig"],
        scratch["order"],
        scratch["level_start"],
        scratch["edge_p"],
        scratch["edge_c"],
        scratch["edge_start"],
    )
    edge_start = scratch["edge_start"]
    level_edges: List[Tuple] = [
        (
            scratch["edge_p"][edge_start[lev] : edge_start[lev + 1]].copy(),
            scratch["edge_c"][edge_start[lev] : edge_start[lev + 1]].copy(),
        )
        for lev in range(n_levels)
    ]
    return CSRShortestPathDAG(
        csr,
        source,
        scratch["dist"].copy(),
        scratch["sig"].copy(),
        scratch["order"][:n_order].copy(),
        level_edges=level_edges,
    )


def accumulate_dependencies_compiled(spd: "CSRShortestPathDAG"):
    """Compiled twin of the level loop of ``accumulate_dependencies_csr``.

    Requires a BFS-built DAG (``level_edges`` recorded); the per-level edge
    arrays are flattened once and the scalar kernel replays the bincount
    accumulation bit for bit.  Prefer :func:`source_dependencies_compiled`
    when the DAG itself is not needed — the fused kernel skips the
    level-edge materialisation entirely.
    """
    if spd.level_edges is None:
        raise ValueError(
            "the compiled accumulation needs a BFS-built DAG with recorded "
            "level_edges; Dijkstra-built DAGs take the numpy sweep"
        )
    n = spd.csr.number_of_vertices()
    n_levels = len(spd.level_edges)
    edge_start = np.zeros(n_levels + 1, dtype=np.int64)
    for lev, (parents, _) in enumerate(spd.level_edges):
        edge_start[lev + 1] = edge_start[lev] + parents.shape[0]
    if n_levels:
        edge_p = np.concatenate([p for p, _ in spd.level_edges])
        edge_c = np.concatenate([c for _, c in spd.level_edges])
    else:
        edge_p = np.empty(0, dtype=np.int64)
        edge_c = np.empty(0, dtype=np.int64)
    delta = np.empty(n)
    _accumulate(spd.sig, delta, edge_p, edge_c, edge_start, n_levels, spd.source_index)
    return delta


def source_dependencies_compiled(csr: "CSRGraph", source: int):
    """Fused compiled per-source pass: the dependency array of *source*.

    The compiled twin of
    :func:`~repro.shortest_paths.dependencies.csr_source_dependencies` for
    unweighted snapshots — one kernel call, no Python-level DAG.
    """
    n = _check_source(csr, source)
    scratch = _scratch_for(n, int(csr.indices.shape[0]))
    delta = np.empty(n)
    _source_delta(
        csr.indptr,
        csr.indices,
        source,
        scratch["dist"],
        scratch["sig"],
        delta,
        scratch["order"],
        scratch["level_start"],
        scratch["edge_p"],
        scratch["edge_c"],
        scratch["edge_start"],
    )
    return delta


def batch_dependencies_compiled(csr: "CSRGraph", sources: Sequence[int], out=None):
    """Batched ``(K, n)`` compiled twin of ``batch_source_dependencies``.

    Validation, result shape and the *out* contract (sequential per-row
    accumulation in source order) mirror the numpy batch kernels; each row
    is the fused per-source kernel's output, so the matrix is bit-identical
    to the wave kernels row for row.
    """
    n = csr.number_of_vertices()
    src = np.asarray(sources, dtype=np.int64)
    if src.ndim != 1 or src.size == 0:
        raise ValueError("sources must be a non-empty 1-D sequence of vertex indices")
    if src.min() < 0 or src.max() >= n:
        raise IndexError(f"source indices out of range for {n} vertices")
    scratch = _scratch_for(n, int(csr.indices.shape[0]))
    delta = np.empty((int(src.size), n))
    _batch_delta(
        csr.indptr,
        csr.indices,
        src,
        delta,
        scratch["dist"],
        scratch["sig"],
        scratch["order"],
        scratch["level_start"],
        scratch["edge_p"],
        scratch["edge_c"],
        scratch["edge_start"],
    )
    if out is not None:
        for row in delta:
            out += row
    return delta


# ----------------------------------------------------------------------
# JIT warm-up (pool initializers call this so compile cost is paid once
# per worker process, not once per shard)
# ----------------------------------------------------------------------
_WARMED = False


def warm_up() -> bool:
    """Compile (or load from the on-disk cache) every kernel on a tiny graph.

    Returns ``True`` when the compiled kernels are ready, ``False`` when
    numba (or numpy) is unavailable.  Idempotent and cheap after the first
    call; with ``NUMBA_CACHE_DIR`` shared across processes the per-process
    cost drops to a cache load.
    """
    global _WARMED
    if not NUMBA_AVAILABLE or np is None:
        return False
    if _WARMED:
        return True
    # A 3-vertex path exercises every branch worth compiling: a fresh
    # child, a second level and a non-trivial back-propagation.
    indptr = np.array([0, 1, 3, 4], dtype=np.int64)
    indices = np.array([1, 0, 2, 1], dtype=np.int64)
    n, m = 3, 4
    dist = np.empty(n)
    sig = np.empty(n)
    delta = np.empty((1, n))
    order = np.empty(n, dtype=np.int64)
    level_start = np.empty(n + 2, dtype=np.int64)
    edge_p = np.empty(m, dtype=np.int64)
    edge_c = np.empty(m, dtype=np.int64)
    edge_start = np.empty(n + 2, dtype=np.int64)
    _bfs_wave(indptr, indices, 0, np.inf, dist, sig, order, level_start, edge_p, edge_c, edge_start)
    src = np.zeros(1, dtype=np.int64)
    _batch_delta(
        indptr, indices, src, delta, dist, sig, order, level_start, edge_p, edge_c, edge_start
    )
    _WARMED = True
    return True


def maybe_warm_up() -> None:
    """Warm the JIT exactly when a worker will actually run the compiled rung.

    Called from the pool initializers of :mod:`repro.execution.scheduler`
    and :mod:`repro.execution.runtime`; never raises (a warm-up failure
    must not kill a worker — the first kernel call would just pay the
    compile itself).
    """
    if not NUMBA_AVAILABLE:
        return
    try:
        from repro.graphs.csr import resolve_kernel

        if resolve_kernel("auto") == "compiled":
            warm_up()
    except Exception:  # pragma: no cover - defensive: never break a worker
        pass
