"""Brandes dependency accumulation.

The *dependency score* of a source vertex *s* on a vertex *v* is

.. math::

   \\delta_{s\\bullet}(v) = \\sum_{t \\in V(G) \\setminus \\{v, s\\}}
                             \\frac{\\sigma_{st}(v)}{\\sigma_{st}},

computed for all *v* at once from the SPD rooted at *s* with the recursion
of Brandes (Equation 4 of the paper).  Dependency scores are the currency of
this library: the exact algorithm sums them over all sources, the optimal
sampler of Chehreghani (2014) is proportional to them, and the
Metropolis-Hastings acceptance ratio is a ratio of two of them.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.graphs.core import Graph, Vertex
from repro.shortest_paths.bfs import bfs_spd
from repro.shortest_paths.dijkstra import dijkstra_spd
from repro.shortest_paths.spd import ShortestPathDAG

__all__ = [
    "accumulate_dependencies",
    "accumulate_edge_dependencies",
    "source_dependencies",
    "dependency_on_target",
    "all_dependencies_on_target",
    "spd_builder",
]


def spd_builder(graph: Graph) -> Callable[[Graph, Vertex], ShortestPathDAG]:
    """Return the SPD construction function appropriate for *graph*.

    Unweighted graphs use BFS, weighted graphs use Dijkstra — matching the
    per-sample complexities quoted in the paper.
    """
    return dijkstra_spd if graph.weighted else bfs_spd


def accumulate_dependencies(spd: ShortestPathDAG) -> Dict[Vertex, float]:
    """Return ``{v: delta_{s.}(v)}`` for the source *s* of *spd*.

    Implements the Brandes recursion (Equation 4): walking the DAG in
    non-increasing distance order,

    ``delta[v] = sum over children w of v of sigma[v]/sigma[w] * (1 + delta[w])``.

    The source itself always has dependency 0 on every vertex it is an
    endpoint of, and is therefore reported as 0.
    """
    delta: Dict[Vertex, float] = {v: 0.0 for v in spd.order}
    for w in reversed(spd.order):
        coefficient = (1.0 + delta[w]) / spd.sigma[w]
        for v in spd.predecessors.get(w, []):
            delta[v] += spd.sigma[v] * coefficient
    delta[spd.source] = 0.0
    return delta


def accumulate_edge_dependencies(spd: ShortestPathDAG) -> Dict[tuple, float]:
    """Return ``{(v, w): delta_{s.}(v, w)}`` — dependency of the source on each DAG edge.

    Used by the exact edge-betweenness algorithm (the Girvan–Newman use case
    from the paper's introduction).  Edge keys are oriented from the vertex
    closer to the source to the vertex farther from it.
    """
    delta: Dict[Vertex, float] = {v: 0.0 for v in spd.order}
    edge_delta: Dict[tuple, float] = {}
    for w in reversed(spd.order):
        coefficient = (1.0 + delta[w]) / spd.sigma[w]
        for v in spd.predecessors.get(w, []):
            contribution = spd.sigma[v] * coefficient
            edge_delta[(v, w)] = contribution
            delta[v] += contribution
    return edge_delta


def source_dependencies(graph: Graph, source: Vertex) -> Dict[Vertex, float]:
    """Return the dependency scores of *source* on every vertex of *graph*.

    Convenience wrapper that builds the SPD (BFS or Dijkstra as appropriate)
    and runs :func:`accumulate_dependencies`.
    """
    build = spd_builder(graph)
    return accumulate_dependencies(build(graph, source))


def dependency_on_target(graph: Graph, source: Vertex, target: Vertex) -> float:
    """Return :math:`\\delta_{source\\bullet}(target)`.

    This single number is what one Metropolis-Hastings acceptance test needs
    (Equation 6): the dependency of the proposed source vertex on the target
    vertex *r*.  Its cost is one SPD construction plus one accumulation,
    i.e. ``O(|E|)`` for unweighted graphs — exactly the per-sample cost the
    paper quotes.
    """
    graph.validate_vertex(target)
    if source == target:
        return 0.0
    deltas = source_dependencies(graph, source)
    return deltas.get(target, 0.0)


def all_dependencies_on_target(graph: Graph, target: Vertex) -> Dict[Vertex, float]:
    """Return ``{v: delta_{v.}(target)}`` for every vertex *v* of *graph*.

    This is the full (unnormalised) Metropolis-Hastings target distribution
    of Equation 5.  It costs one SPD per vertex (``O(|V||E|)`` total) and is
    used by the exact single-vertex algorithm, by the optimal sampler, and by
    the analysis layer to compute :math:`\\mu(r)` exactly.
    """
    graph.validate_vertex(target)
    result: Dict[Vertex, float] = {}
    for v in graph.vertices():
        if v == target:
            result[v] = 0.0
            continue
        result[v] = dependency_on_target(graph, v, target)
    return result
