"""Brandes dependency accumulation.

The *dependency score* of a source vertex *s* on a vertex *v* is

.. math::

   \\delta_{s\\bullet}(v) = \\sum_{t \\in V(G) \\setminus \\{v, s\\}}
                             \\frac{\\sigma_{st}(v)}{\\sigma_{st}},

computed for all *v* at once from the SPD rooted at *s* with the recursion
of Brandes (Equation 4 of the paper).  Dependency scores are the currency of
this library: the exact algorithm sums them over all sources, the optimal
sampler of Chehreghani (2014) is proportional to them, and the
Metropolis-Hastings acceptance ratio is a ratio of two of them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import np, resolve_backend, resolve_kernel
from repro.execution.plan import ExecutionPlan, resolve_plan
from repro.execution.runtime import interned_payload, plan_snapshot
from repro.execution.scheduler import merge_ordered, run_sharded, split_shards
from repro.shortest_paths.bfs import bfs_spd, bfs_spd_csr
from repro.shortest_paths.dijkstra import (
    dijkstra_source_dependencies_csr,
    dijkstra_spd,
    dijkstra_spd_csr,
)
from repro.shortest_paths.spd import CSRShortestPathDAG, ShortestPathDAG

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.csr import CSRGraph

__all__ = [
    "accumulate_dependencies",
    "accumulate_edge_dependencies",
    "source_dependencies",
    "dependency_on_target",
    "all_dependencies_on_target",
    "spd_builder",
    "csr_spd_builder",
    "accumulate_dependencies_csr",
    "csr_source_dependencies",
    "csr_dependency_on_target",
    "csr_edge_dependency",
    "iter_batches",
    "dependency_sum_shard_csr",
    "dependency_sum_shard_dict",
    "dependency_at_target_shard_csr",
    "dependency_at_target_shard_dict",
]


def spd_builder(graph: Graph) -> Callable[[Graph, Vertex], ShortestPathDAG]:
    """Return the SPD construction function appropriate for *graph*.

    Unweighted graphs use BFS, weighted graphs use Dijkstra — matching the
    per-sample complexities quoted in the paper.
    """
    return dijkstra_spd if graph.weighted else bfs_spd


def csr_spd_builder(csr: "CSRGraph") -> Callable[["CSRGraph", int], CSRShortestPathDAG]:
    """Return the CSR SPD construction kernel appropriate for *csr*."""
    return dijkstra_spd_csr if csr.weighted else bfs_spd_csr


def accumulate_dependencies(spd: ShortestPathDAG) -> Dict[Vertex, float]:
    """Return ``{v: delta_{s.}(v)}`` for the source *s* of *spd*.

    Implements the Brandes recursion (Equation 4): walking the DAG in
    non-increasing distance order,

    ``delta[v] = sum over children w of v of sigma[v]/sigma[w] * (1 + delta[w])``.

    The source itself always has dependency 0 on every vertex it is an
    endpoint of, and is therefore reported as 0.
    """
    delta: Dict[Vertex, float] = {v: 0.0 for v in spd.order}
    for w in reversed(spd.order):
        coefficient = (1.0 + delta[w]) / spd.sigma[w]
        for v in spd.predecessors.get(w, []):
            delta[v] += spd.sigma[v] * coefficient
    delta[spd.source] = 0.0
    return delta


def accumulate_edge_dependencies(spd: ShortestPathDAG) -> Dict[tuple, float]:
    """Return ``{(v, w): delta_{s.}(v, w)}`` — dependency of the source on each DAG edge.

    Used by the exact edge-betweenness algorithm (the Girvan–Newman use case
    from the paper's introduction).  Edge keys are oriented from the vertex
    closer to the source to the vertex farther from it.
    """
    delta: Dict[Vertex, float] = {v: 0.0 for v in spd.order}
    edge_delta: Dict[tuple, float] = {}
    for w in reversed(spd.order):
        coefficient = (1.0 + delta[w]) / spd.sigma[w]
        for v in spd.predecessors.get(w, []):
            contribution = spd.sigma[v] * coefficient
            edge_delta[(v, w)] = contribution
            delta[v] += contribution
    return edge_delta


def source_dependencies(graph: Graph, source: Vertex) -> Dict[Vertex, float]:
    """Return the dependency scores of *source* on every vertex of *graph*.

    Convenience wrapper that builds the SPD (BFS or Dijkstra as appropriate)
    and runs :func:`accumulate_dependencies`.
    """
    build = spd_builder(graph)
    return accumulate_dependencies(build(graph, source))


def dependency_on_target(graph: Graph, source: Vertex, target: Vertex) -> float:
    """Return :math:`\\delta_{source\\bullet}(target)`.

    This single number is what one Metropolis-Hastings acceptance test needs
    (Equation 6): the dependency of the proposed source vertex on the target
    vertex *r*.  Its cost is one SPD construction plus one accumulation,
    i.e. ``O(|E|)`` for unweighted graphs — exactly the per-sample cost the
    paper quotes.
    """
    graph.validate_vertex(target)
    if source == target:
        return 0.0
    deltas = source_dependencies(graph, source)
    return deltas.get(target, 0.0)


def all_dependencies_on_target(
    graph: Graph,
    target: Vertex,
    *,
    backend: str = "auto",
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
    plan: Optional[ExecutionPlan] = None,
    kernel: str = "auto",
    kernel_threads: Optional[int] = None,
) -> Dict[Vertex, float]:
    """Return ``{v: delta_{v.}(target)}`` for every vertex *v* of *graph*.

    This is the full (unnormalised) Metropolis-Hastings target distribution
    of Equation 5.  It costs one SPD per vertex (``O(|V||E|)`` total) and is
    used by the exact single-vertex algorithm, by the optimal sampler, and by
    the analysis layer to compute :math:`\\mu(r)` exactly.  With the CSR
    backend every pass runs on the vectorised kernels; the result is
    converted back to a vertex-keyed dict only at this boundary.

    ``batch_size`` / ``n_jobs`` (or a ready-made *plan*) engage the
    execution engine of :mod:`repro.execution`: sources are split into
    fixed shards, each shard's passes run through the batched kernels
    (``batch_size`` sources per traversal on the CSR backend) on up to
    ``n_jobs`` worker processes, and the per-source values are merged in
    source order — so the result is identical for any ``n_jobs`` and
    ``batch_size``.  ``kernel`` selects the (bit-identical) CSR kernel rung
    for the passes (:func:`~repro.graphs.csr.resolve_kernel`).
    """
    graph.validate_vertex(target)
    plan = resolve_plan(
        plan,
        backend=backend,
        batch_size=batch_size,
        n_jobs=n_jobs,
        kernel=kernel,
        kernel_threads=kernel_threads,
    )
    if plan is not None:
        return _all_dependencies_on_target_planned(graph, target, plan)
    if resolve_backend(backend) == "csr":
        csr = graph.csr()
        r = csr.index_of(target)
        result = {}
        for i, v in enumerate(csr.vertices):
            if i == r:
                result[v] = 0.0
                continue
            delta = csr_source_dependencies(csr, i, kernel=kernel)
            result[v] = float(delta[r])
        return result
    result: Dict[Vertex, float] = {}
    for v in graph.vertices():
        if v == target:
            result[v] = 0.0
            continue
        result[v] = dependency_on_target(graph, v, target)
    return result


def _all_dependencies_on_target_planned(
    graph: Graph, target: Vertex, plan: ExecutionPlan
) -> Dict[Vertex, float]:
    """Sharded/batched evaluation of the Equation 5 vector (see the caller)."""
    vertices = graph.vertices()
    if not vertices:
        return {}
    if resolve_backend(plan.backend) == "csr":
        csr = plan_snapshot(graph, plan)
        shards = split_shards(list(range(csr.number_of_vertices())))
        target_index = csr.index_of(target)
        values = merge_ordered(
            run_sharded(
                dependency_at_target_shard_csr,
                shards,
                n_jobs=plan.n_jobs,
                plan=plan,
                # One interned payload per (snapshot, batch, target, kernel,
                # threads): a persistent pool re-ships nothing for repeated
                # targets.
                shared=interned_payload(
                    plan,
                    (
                        "dep-at-target-csr",
                        id(csr),
                        plan.batch_size,
                        target_index,
                        plan.kernel,
                        plan.kernel_threads,
                    ),
                    lambda: (
                        csr,
                        plan.batch_size,
                        target_index,
                        plan.kernel,
                        plan.kernel_threads,
                    ),
                ),
            )
        )
        return dict(zip(csr.vertices, values))
    shards = split_shards(vertices)
    values = merge_ordered(
        run_sharded(
            dependency_at_target_shard_dict,
            shards,
            n_jobs=plan.n_jobs,
            plan=plan,
            shared=interned_payload(
                plan,
                ("dep-at-target-dict", id(graph), graph.version, target),
                lambda: (graph, target),
            ),
        )
    )
    return dict(zip(vertices, values))


# ----------------------------------------------------------------------
# Shard workers (module-level so the multiprocessing pool can pickle them)
# ----------------------------------------------------------------------
def iter_batches(items: Sequence, batch_size: int):
    """Yield contiguous slices of *items* of at most *batch_size* elements."""
    for start in range(0, len(items), batch_size):
        yield items[start : start + batch_size]


def dependency_sum_shard_csr(shared, shard):
    """Shard worker: sum the dependency vectors of the shard's source indices.

    ``shared`` is ``(csr, batch_size)``, optionally extended with
    ``kernel`` (third element) and ``kernel_threads`` (fourth) — the
    positional tail threads an :class:`~repro.execution.plan.
    ExecutionPlan`'s kernel rung and thread count into the worker process
    (shorter payloads resolve ``"auto"`` / 1).  The sum follows the
    canonical accumulation order (one vector addition per source, in shard
    order), so the buffer is bit-identical however the sources are batched
    — and whichever kernel rung, on however many threads, runs the passes.
    """
    csr, batch_size = shared[0], shared[1]
    kernel = shared[2] if len(shared) > 2 else "auto"
    kernel_threads = shared[3] if len(shared) > 3 else 1
    from repro.shortest_paths.batch import batch_source_dependencies

    out = np.zeros(csr.number_of_vertices())
    for batch in iter_batches(shard, batch_size):
        batch_source_dependencies(
            csr, batch, out=out, kernel=kernel, kernel_threads=kernel_threads
        )
    return out


def dependency_sum_shard_dict(shared, shard):
    """Dict-backend twin of :func:`dependency_sum_shard_csr` (``shared`` = graph)."""
    graph = shared
    build = spd_builder(graph)
    totals: Dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
    for s in shard:
        for v, delta in accumulate_dependencies(build(graph, s)).items():
            if v != s:
                totals[v] += delta
    return totals


def dependency_at_target_shard_csr(shared, shard) -> List[float]:
    """Shard worker: per-source dependency on one target index.

    ``shared`` is ``(csr, batch_size, target_index)``, optionally extended
    with ``kernel`` (fourth element) and ``kernel_threads`` (fifth — see
    :func:`dependency_sum_shard_csr`); returns one float per shard source,
    in shard order.  A source equal to the target reads its own delta
    entry, which is 0 by construction — matching the dict backend's
    explicit skip.
    """
    csr, batch_size, target_index = shared[0], shared[1], shared[2]
    kernel = shared[3] if len(shared) > 3 else "auto"
    kernel_threads = shared[4] if len(shared) > 4 else 1
    from repro.shortest_paths.batch import batch_source_dependencies

    values: List[float] = []
    for batch in iter_batches(shard, batch_size):
        deltas = batch_source_dependencies(
            csr, batch, kernel=kernel, kernel_threads=kernel_threads
        )
        values.extend(float(deltas[k, target_index]) for k in range(len(batch)))
    return values


def dependency_at_target_shard_dict(shared, shard) -> List[float]:
    """Dict-backend twin of :func:`dependency_at_target_shard_csr` (``shared`` = (graph, target))."""
    graph, target = shared
    build = spd_builder(graph)
    values: List[float] = []
    for s in shard:
        if s == target:
            values.append(0.0)
            continue
        values.append(accumulate_dependencies(build(graph, s)).get(target, 0.0))
    return values


# ----------------------------------------------------------------------
# CSR kernels
# ----------------------------------------------------------------------
def accumulate_dependencies_csr(spd: CSRShortestPathDAG, *, kernel: str = "auto"):
    """Return the dependency array ``delta`` for the source of *spd*.

    ``delta[i]`` is :math:`\\delta_{s\\bullet}(v_i)` with ``delta[source] =
    0`` — the array twin of :func:`accumulate_dependencies`.  BFS-built DAGs
    carry their edges grouped by level, so the Brandes recursion runs one
    vectorised pass per level (every child of level ``L + 1`` has its final
    delta before the level-``L`` edges are processed).  Dijkstra-built DAGs
    have no levels and fall back to a per-vertex sweep in reverse settle
    order over the CSR predecessor arrays.

    ``kernel`` selects the rung (:func:`~repro.graphs.csr.resolve_kernel`);
    the compiled twins replay the exact per-level edge-order summation
    (BFS DAGs) and the reverse-settle-order coefficient products
    (Dijkstra DAGs), so the knob never changes a result.
    """
    if resolve_kernel(kernel) == "compiled":
        from repro.shortest_paths.compiled import accumulate_dependencies_compiled

        return accumulate_dependencies_compiled(spd)
    n = spd.csr.number_of_vertices()
    sig = spd.sig
    delta = np.zeros(n)
    if spd.level_edges is not None:
        for parents, children in reversed(spd.level_edges):
            contrib = sig[parents] / sig[children] * (1.0 + delta[children])
            delta += np.bincount(parents, weights=contrib, minlength=n)
    else:
        pred_indptr = spd.pred_indptr
        pred_indices = spd.pred_indices
        for w in spd.order_indices[::-1].tolist():
            parents = pred_indices[pred_indptr[w] : pred_indptr[w + 1]]
            if parents.size:
                delta[parents] += sig[parents] * ((1.0 + delta[w]) / sig[w])
    delta[spd.source_index] = 0.0
    return delta


def csr_source_dependencies(csr: "CSRGraph", source: int, *, kernel: str = "auto"):
    """Return the dependency array of vertex index *source* (build + accumulate).

    On the compiled rung the whole pass runs as one fused kernel (BFS or
    Dijkstra wave + back-propagation without materialising the DAG), and
    weighted snapshots on the numpy rung take the fused interpreter pass
    (:func:`~repro.shortest_paths.dijkstra.dijkstra_source_dependencies_csr`);
    every path is bitwise identical to build-then-accumulate.
    """
    if resolve_kernel(kernel) == "compiled":
        from repro.shortest_paths.compiled import source_dependencies_compiled

        return source_dependencies_compiled(csr, source)
    if csr.weighted:
        return dijkstra_source_dependencies_csr(csr, source)
    return accumulate_dependencies_csr(csr_spd_builder(csr)(csr, source))


def csr_dependency_on_target(csr: "CSRGraph", source: int, target: int) -> float:
    """Return :math:`\\delta_{source\\bullet}(target)` in index space."""
    if source == target:
        return 0.0
    return float(csr_source_dependencies(csr, source)[target])


def csr_edge_dependency(spd: CSRShortestPathDAG, a: int, b: int) -> float:
    """Return the dependency of the source of *spd* on the undirected edge ``{a, b}``.

    Sums the contributions of both possible DAG orientations, mirroring
    :func:`accumulate_edge_dependencies` read at a single edge: an
    orientation ``(v, w)`` contributes ``sigma[v] / sigma[w] * (1 +
    delta[w])`` when ``v`` is a DAG predecessor of ``w``.
    """
    delta = accumulate_dependencies_csr(spd)
    sig = spd.sig
    total = 0.0
    for v, w in ((a, b), (b, a)):
        if sig[w] > 0.0 and v in spd.parents_of(w):
            total += float(sig[v] / sig[w] * (1.0 + delta[w]))
    return total
