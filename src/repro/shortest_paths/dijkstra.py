"""Dijkstra-based construction of shortest-path DAGs for weighted graphs.

The paper's algorithms apply unchanged to weighted graphs with strictly
positive weights; the per-sample cost becomes
``O(|E(G)| + |V(G)| log |V(G)|)``.  This module provides the weighted
counterpart of :func:`repro.shortest_paths.bfs.bfs_spd`.

Array-native rung
-----------------
The CSR kernels here are the interpreter rung of the weighted kernel
ladder (the compiled twins live in :mod:`repro.shortest_paths.compiled`).
All per-source state is preallocated flat storage — distance, tentative
distance, path-count and predecessor-offset arrays — refilled per source
with no dict or ``itertools.count`` churn, and the adjacency is walked
through a cached per-snapshot list-of-``(neighbour, weight)`` view
(:func:`csr_adjacency_pairs`) instead of per-edge numpy scalar reads.
The priority queue is CPython's C-accelerated ``heapq`` over
``(distance, counter, vertex)`` entries: the counter makes the key set
strictly totally ordered, so *any* correct binary heap — this one and the
flat-array heap of the compiled twin — pops vertices in the identical
order, which is what makes the rungs bit-identical (same settle order ⇒
same relaxation sequence ⇒ same float partial sums).

Tie handling mirrors the dict rung exactly: a candidate path ties an
existing distance when ``|candidate - existing| <= _EPSILON *
max(1.0, candidate)`` (weights are strictly positive, so candidates are
non-negative and the ``abs`` of the reference comparison is redundant).
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import NegativeWeightError
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import np
from repro.shortest_paths.spd import CSRShortestPathDAG, ShortestPathDAG

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.csr import CSRGraph

__all__ = [
    "dijkstra_spd",
    "dijkstra_distances",
    "dijkstra_spd_csr",
    "dijkstra_distances_csr",
    "dijkstra_source_dependencies_csr",
    "csr_adjacency_pairs",
    "validate_positive_weights",
]

#: Tolerance used when comparing path lengths for equality.  Weighted
#: shortest-path counting needs an explicit tolerance because float addition
#: is not associative; 1e-12 relative to typical weights keeps path counts
#: exact for the weight ranges used in the benchmarks.
_EPSILON = 1e-12

_INF = float("inf")


def dijkstra_spd(graph: Graph, source: Vertex) -> ShortestPathDAG:
    """Return the shortest-path DAG rooted at *source* for a weighted graph.

    Raises
    ------
    NegativeWeightError
        If an edge with non-positive weight is encountered.
    """
    graph.validate_vertex(source)
    distance: Dict[Vertex, float] = {}
    sigma: Dict[Vertex, float] = {source: 1.0}
    predecessors: Dict[Vertex, List[Vertex]] = {source: []}
    order: List[Vertex] = []
    seen: Dict[Vertex, float] = {source: 0.0}
    counter = itertools.count()
    heap: List = [(0.0, next(counter), source)]
    while heap:
        dist_u, _, u = heapq.heappop(heap)
        if u in distance:
            continue  # already settled via a shorter path
        distance[u] = dist_u
        order.append(u)
        for v, weight in graph.adjacency(u).items():
            if weight <= 0.0:
                raise NegativeWeightError(u, v, weight)
            candidate = dist_u + weight
            if v in distance:
                # Already settled: only register an extra predecessor when
                # the candidate matches the settled distance exactly.
                if abs(candidate - distance[v]) <= _EPSILON * max(1.0, abs(candidate)):
                    sigma[v] += sigma[u]
                    predecessors[v].append(u)
                continue
            previous = seen.get(v)
            if previous is None or candidate < previous - _EPSILON * max(1.0, abs(candidate)):
                seen[v] = candidate
                sigma[v] = sigma[u]
                predecessors[v] = [u]
                heapq.heappush(heap, (candidate, next(counter), v))
            elif abs(candidate - previous) <= _EPSILON * max(1.0, abs(candidate)):
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    return ShortestPathDAG(
        source=source,
        distance=distance,
        sigma=sigma,
        predecessors=predecessors,
        order=order,
    )


def dijkstra_distances(graph: Graph, source: Vertex) -> Dict[Vertex, float]:
    """Return only the distance map from *source* in a weighted graph."""
    spd = dijkstra_spd(graph, source)
    return dict(spd.distance)


def csr_adjacency_pairs(csr: "CSRGraph") -> List[List[Tuple[int, float]]]:
    """Return (and cache on *csr*) the list-of-pairs adjacency view.

    ``result[u]`` is the list of ``(neighbour_index, weight)`` pairs of
    vertex ``u`` in CSR edge order — the representation the interpreter
    Dijkstra loops iterate, trading one ``O(m)`` conversion per snapshot
    for the removal of every per-edge numpy scalar read.  The conversion
    also performs the weight-positivity check once for the whole snapshot
    (vectorised), so the traversal loops carry no per-edge guard.

    Raises
    ------
    NegativeWeightError
        If any edge of the snapshot has a non-positive weight.  Stricter
        than the old per-edge traversal guard (which only saw edges
        reachable from the queried source); a snapshot either passes for
        every source or raises for every source.
    """
    adjacency = csr._dijkstra_adj
    if adjacency is not None:
        return adjacency
    validate_positive_weights(csr)
    indptr = csr.indptr.tolist()
    pairs = list(zip(csr.indices.tolist(), csr.weights.tolist()))
    adjacency = [pairs[indptr[u] : indptr[u + 1]] for u in range(len(indptr) - 1)]
    csr._dijkstra_adj = adjacency
    return adjacency


def validate_positive_weights(csr: "CSRGraph") -> None:
    """Raise :class:`NegativeWeightError` if any weight of *csr* is <= 0.

    One vectorised pass over the whole snapshot; a built pair view
    (:func:`csr_adjacency_pairs`) proves the check already passed, so
    repeat calls are free.
    """
    if csr._dijkstra_adj is not None:
        return
    weights = csr.weights
    if weights.size and float(weights.min()) <= 0.0:
        pos = int(np.argmax(weights <= 0.0))
        u = int(np.searchsorted(csr.indptr, pos, side="right")) - 1
        raise NegativeWeightError(
            csr.vertex_at(u), csr.vertex_at(int(csr.indices[pos])), float(weights[pos])
        )


def _check_source_index(csr: "CSRGraph", source: int) -> int:
    n = csr.number_of_vertices()
    if not 0 <= source < n:
        raise IndexError(f"source index {source} out of range for {n} vertices")
    return n


def _dijkstra_wave(
    csr: "CSRGraph", source: int, with_dag: bool
) -> Tuple[List[float], List[int], List[float], List[Optional[List[int]]]]:
    """Run one Dijkstra pass; returns ``(dist, order, sig, predecessors)``.

    The shared engine of the CSR kernels below.  ``dist[u]`` doubles as the
    settled marker (``inf`` = unsettled); ``tent`` keeps the tentative
    distances of frontier vertices, replacing the dict rung's ``seen`` map
    (``inf`` = never seen, which makes the first-touch test a plain
    comparison).  With ``with_dag=False`` the sigma/predecessor bookkeeping
    is skipped and only distances and settle order are produced.
    """
    adjacency = csr_adjacency_pairs(csr)
    n = csr.number_of_vertices()
    dist: List[float] = [_INF] * n
    tent: List[float] = [_INF] * n
    order: List[int] = []
    sig: List[float] = [0.0] * n
    predecessors: List[Optional[List[int]]] = [None] * n
    if with_dag:
        sig[source] = 1.0
        predecessors[source] = []
    tent[source] = 0.0
    heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
    counter = 1
    push = heapq.heappush
    pop = heapq.heappop
    append_order = order.append
    if with_dag:
        while heap:
            dist_u, _, u = pop(heap)
            if dist[u] != _INF:
                continue  # already settled via a shorter path
            dist[u] = dist_u
            append_order(u)
            sigma_u = sig[u]
            for v, weight in adjacency[u]:
                candidate = dist_u + weight
                tolerance = _EPSILON * candidate if candidate > 1.0 else _EPSILON
                settled = dist[v]
                if settled != _INF:
                    if -tolerance <= candidate - settled <= tolerance:
                        sig[v] += sigma_u
                        predecessors[v].append(u)
                    continue
                previous = tent[v]
                if candidate < previous - tolerance:
                    tent[v] = candidate
                    sig[v] = sigma_u
                    predecessors[v] = [u]
                    push(heap, (candidate, counter, v))
                    counter += 1
                elif -tolerance <= candidate - previous <= tolerance:
                    sig[v] += sigma_u
                    predecessors[v].append(u)
    else:
        while heap:
            dist_u, _, u = pop(heap)
            if dist[u] != _INF:
                continue
            dist[u] = dist_u
            append_order(u)
            for v, weight in adjacency[u]:
                if dist[v] != _INF:
                    continue
                candidate = dist_u + weight
                tolerance = _EPSILON * candidate if candidate > 1.0 else _EPSILON
                if candidate < tent[v] - tolerance:
                    tent[v] = candidate
                    push(heap, (candidate, counter, v))
                    counter += 1
    return dist, order, sig, predecessors


def dijkstra_spd_csr(
    csr: "CSRGraph", source: int, *, kernel: str = "auto"
) -> CSRShortestPathDAG:
    """Return the array-backed SPD rooted at vertex index *source* (weighted).

    Index-space mirror of :func:`dijkstra_spd`: the heap discipline, the
    tie-breaking counter and the ``_EPSILON`` comparisons are identical, so
    both backends settle vertices in the same order and count the same
    shortest paths bit-for-bit.  The result carries no ``level_edges`` (a
    weighted DAG has no BFS levels) but ships ready-made CSR predecessor
    arrays in parent-settle order; dependency accumulation runs the ordered
    per-vertex sweep over them.

    ``kernel`` selects the rung (:func:`~repro.graphs.csr.resolve_kernel`):
    the compiled twin :func:`~repro.shortest_paths.compiled.
    dijkstra_spd_compiled` replays the same settle order through a
    flat-array heap, so the knob never changes a result.
    """
    from repro.graphs.csr import resolve_kernel

    if resolve_kernel(kernel) == "compiled":
        from repro.shortest_paths.compiled import dijkstra_spd_compiled

        return dijkstra_spd_compiled(csr, source)
    n = _check_source_index(csr, source)
    dist, order, sig, predecessors = _dijkstra_wave(csr, source, True)
    # Flatten the per-vertex parent lists into the CSR predecessor layout.
    counts = np.fromiter(
        (0 if p is None else len(p) for p in predecessors), dtype=np.int64, count=n
    )
    pred_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=pred_indptr[1:])
    flat = [p for parents in predecessors if parents for p in parents]
    pred_indices = np.asarray(flat, dtype=np.int64)
    return CSRShortestPathDAG(
        csr,
        source,
        np.asarray(dist),
        np.asarray(sig),
        np.asarray(order, dtype=np.int64),
        level_edges=None,
        pred_indptr=pred_indptr,
        pred_indices=pred_indices,
    )


def dijkstra_distances_csr(csr: "CSRGraph", source: int):
    """Return ``(dist, order)`` from vertex index *source* (weighted).

    The weighted twin of :func:`repro.shortest_paths.bfs.bfs_distances_csr`:
    ``dist`` is the float distance array (``inf`` = unreachable) and
    ``order`` the settle order, without any sigma/predecessor bookkeeping.
    ``dist`` is bit-identical to :func:`dijkstra_spd_csr`'s ``dist`` field —
    the settle logic is the same loop with the DAG branches removed.
    """
    _check_source_index(csr, source)
    dist, order, _, _ = _dijkstra_wave(csr, source, False)
    return np.asarray(dist), np.asarray(order, dtype=np.int64)


def dijkstra_source_dependencies_csr(csr: "CSRGraph", source: int):
    """Fused per-source weighted pass: the dependency array of *source*.

    One call runs the Dijkstra wave and the Brandes back-propagation in
    reverse settle order (the weighted replacement for the BFS level
    order) without materialising the DAG arrays.  Bit-identical to
    ``accumulate_dependencies_csr(dijkstra_spd_csr(csr, source))``: the
    wave is the same loop, and the sweep computes the same
    coefficient-first products — ``delta[p] += sig[p] * ((1 + delta[w]) /
    sig[w])`` touches each (distinct) parent's cell independently, so the
    scalar loop and the numpy fancy-indexed accumulation agree bitwise.
    """
    _check_source_index(csr, source)
    dist, order, sig, predecessors = _dijkstra_wave(csr, source, True)
    delta = [0.0] * len(dist)
    for w in reversed(order):
        parents = predecessors[w]
        if parents:
            coefficient = (1.0 + delta[w]) / sig[w]
            for p in parents:
                delta[p] += sig[p] * coefficient
    delta[source] = 0.0
    return np.asarray(delta)
