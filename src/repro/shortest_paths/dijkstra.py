"""Dijkstra-based construction of shortest-path DAGs for weighted graphs.

The paper's algorithms apply unchanged to weighted graphs with strictly
positive weights; the per-sample cost becomes
``O(|E(G)| + |V(G)| log |V(G)|)``.  This module provides the weighted
counterpart of :func:`repro.shortest_paths.bfs.bfs_spd`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional

from repro.errors import NegativeWeightError
from repro.graphs.core import Graph, Vertex
from repro.shortest_paths.spd import ShortestPathDAG

__all__ = ["dijkstra_spd", "dijkstra_distances"]

#: Tolerance used when comparing path lengths for equality.  Weighted
#: shortest-path counting needs an explicit tolerance because float addition
#: is not associative; 1e-12 relative to typical weights keeps path counts
#: exact for the weight ranges used in the benchmarks.
_EPSILON = 1e-12


def dijkstra_spd(graph: Graph, source: Vertex) -> ShortestPathDAG:
    """Return the shortest-path DAG rooted at *source* for a weighted graph.

    Raises
    ------
    NegativeWeightError
        If an edge with non-positive weight is encountered.
    """
    graph.validate_vertex(source)
    distance: Dict[Vertex, float] = {}
    sigma: Dict[Vertex, float] = {source: 1.0}
    predecessors: Dict[Vertex, List[Vertex]] = {source: []}
    order: List[Vertex] = []
    seen: Dict[Vertex, float] = {source: 0.0}
    counter = itertools.count()
    heap: List = [(0.0, next(counter), source)]
    while heap:
        dist_u, _, u = heapq.heappop(heap)
        if u in distance:
            continue  # already settled via a shorter path
        distance[u] = dist_u
        order.append(u)
        for v, weight in graph.adjacency(u).items():
            if weight <= 0.0:
                raise NegativeWeightError(u, v, weight)
            candidate = dist_u + weight
            if v in distance:
                # Already settled: only register an extra predecessor when
                # the candidate matches the settled distance exactly.
                if abs(candidate - distance[v]) <= _EPSILON * max(1.0, abs(candidate)):
                    sigma[v] += sigma[u]
                    predecessors[v].append(u)
                continue
            previous = seen.get(v)
            if previous is None or candidate < previous - _EPSILON * max(1.0, abs(candidate)):
                seen[v] = candidate
                sigma[v] = sigma[u]
                predecessors[v] = [u]
                heapq.heappush(heap, (candidate, next(counter), v))
            elif abs(candidate - previous) <= _EPSILON * max(1.0, abs(candidate)):
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    return ShortestPathDAG(
        source=source,
        distance=distance,
        sigma=sigma,
        predecessors=predecessors,
        order=order,
    )


def dijkstra_distances(graph: Graph, source: Vertex) -> Dict[Vertex, float]:
    """Return only the distance map from *source* in a weighted graph."""
    spd = dijkstra_spd(graph, source)
    return dict(spd.distance)
