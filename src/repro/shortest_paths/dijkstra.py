"""Dijkstra-based construction of shortest-path DAGs for weighted graphs.

The paper's algorithms apply unchanged to weighted graphs with strictly
positive weights; the per-sample cost becomes
``O(|E(G)| + |V(G)| log |V(G)|)``.  This module provides the weighted
counterpart of :func:`repro.shortest_paths.bfs.bfs_spd`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import NegativeWeightError
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import np
from repro.shortest_paths.spd import CSRShortestPathDAG, ShortestPathDAG

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.csr import CSRGraph

__all__ = ["dijkstra_spd", "dijkstra_distances", "dijkstra_spd_csr"]

#: Tolerance used when comparing path lengths for equality.  Weighted
#: shortest-path counting needs an explicit tolerance because float addition
#: is not associative; 1e-12 relative to typical weights keeps path counts
#: exact for the weight ranges used in the benchmarks.
_EPSILON = 1e-12


def dijkstra_spd(graph: Graph, source: Vertex) -> ShortestPathDAG:
    """Return the shortest-path DAG rooted at *source* for a weighted graph.

    Raises
    ------
    NegativeWeightError
        If an edge with non-positive weight is encountered.
    """
    graph.validate_vertex(source)
    distance: Dict[Vertex, float] = {}
    sigma: Dict[Vertex, float] = {source: 1.0}
    predecessors: Dict[Vertex, List[Vertex]] = {source: []}
    order: List[Vertex] = []
    seen: Dict[Vertex, float] = {source: 0.0}
    counter = itertools.count()
    heap: List = [(0.0, next(counter), source)]
    while heap:
        dist_u, _, u = heapq.heappop(heap)
        if u in distance:
            continue  # already settled via a shorter path
        distance[u] = dist_u
        order.append(u)
        for v, weight in graph.adjacency(u).items():
            if weight <= 0.0:
                raise NegativeWeightError(u, v, weight)
            candidate = dist_u + weight
            if v in distance:
                # Already settled: only register an extra predecessor when
                # the candidate matches the settled distance exactly.
                if abs(candidate - distance[v]) <= _EPSILON * max(1.0, abs(candidate)):
                    sigma[v] += sigma[u]
                    predecessors[v].append(u)
                continue
            previous = seen.get(v)
            if previous is None or candidate < previous - _EPSILON * max(1.0, abs(candidate)):
                seen[v] = candidate
                sigma[v] = sigma[u]
                predecessors[v] = [u]
                heapq.heappush(heap, (candidate, next(counter), v))
            elif abs(candidate - previous) <= _EPSILON * max(1.0, abs(candidate)):
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    return ShortestPathDAG(
        source=source,
        distance=distance,
        sigma=sigma,
        predecessors=predecessors,
        order=order,
    )


def dijkstra_distances(graph: Graph, source: Vertex) -> Dict[Vertex, float]:
    """Return only the distance map from *source* in a weighted graph."""
    spd = dijkstra_spd(graph, source)
    return dict(spd.distance)


def dijkstra_spd_csr(csr: "CSRGraph", source: int) -> CSRShortestPathDAG:
    """Return the array-backed SPD rooted at vertex index *source* (weighted).

    Index-space mirror of :func:`dijkstra_spd`: the heap discipline, the
    tie-breaking counter and the ``_EPSILON`` comparisons are identical, so
    both backends settle vertices in the same order and count the same
    shortest paths bit-for-bit.  The result carries no ``level_edges`` (a
    weighted DAG has no BFS levels); dependency accumulation falls back to
    the ordered per-vertex sweep.
    """
    n = csr.number_of_vertices()
    if not 0 <= source < n:
        raise IndexError(f"source index {source} out of range for {n} vertices")
    indptr, indices, weights = csr.indptr, csr.indices, csr.weights
    dist = np.full(n, np.inf)
    sig = np.zeros(n)
    sig[source] = 1.0
    settled = np.zeros(n, dtype=bool)
    predecessors: List[List[int]] = [[] for _ in range(n)]
    order: List[int] = []
    seen: Dict[int, float] = {source: 0.0}
    counter = itertools.count()
    heap: List = [(0.0, next(counter), source)]
    while heap:
        dist_u, _, u = heapq.heappop(heap)
        if settled[u]:
            continue  # already settled via a shorter path
        settled[u] = True
        dist[u] = dist_u
        order.append(u)
        sigma_u = sig[u]
        for pos in range(int(indptr[u]), int(indptr[u + 1])):
            v = int(indices[pos])
            weight = float(weights[pos])
            if weight <= 0.0:
                raise NegativeWeightError(csr.vertex_at(u), csr.vertex_at(v), weight)
            candidate = dist_u + weight
            tolerance = _EPSILON * max(1.0, abs(candidate))
            if settled[v]:
                if abs(candidate - dist[v]) <= tolerance:
                    sig[v] += sigma_u
                    predecessors[v].append(u)
                continue
            previous = seen.get(v)
            if previous is None or candidate < previous - tolerance:
                seen[v] = candidate
                sig[v] = sigma_u
                predecessors[v] = [u]
                heapq.heappush(heap, (candidate, next(counter), v))
            elif abs(candidate - previous) <= tolerance:
                sig[v] += sigma_u
                predecessors[v].append(u)
    # Flatten the per-vertex parent lists into the CSR predecessor layout.
    counts = np.array([len(p) for p in predecessors], dtype=np.int64)
    pred_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=pred_indptr[1:])
    flat = [p for parents in predecessors for p in parents]
    pred_indices = np.asarray(flat, dtype=np.int64)
    return CSRShortestPathDAG(
        csr,
        source,
        dist,
        sig,
        np.asarray(order, dtype=np.int64),
        level_edges=None,
        pred_indptr=pred_indptr,
        pred_indices=pred_indices,
    )
