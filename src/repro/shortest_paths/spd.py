"""The shortest-path DAG (SPD) data structure.

Section 2.1 of the paper: for every source vertex *s* the SPD rooted at *s*
is the DAG containing all shortest paths starting from *s*.  It is the
work-horse of every algorithm in the library — exact Brandes, all baseline
samplers, and the Metropolis-Hastings acceptance ratio all consume SPDs.

An SPD stores, for each vertex *v* reachable from the source:

* ``distance[v]`` — the shortest-path distance d(s, v);
* ``sigma[v]`` — the number of distinct shortest paths from *s* to *v*
  (:math:`\\sigma_{sv}`);
* ``predecessors[v]`` — the parent set :math:`P_s(v)` of *v* in the DAG;
* ``order`` — the vertices in non-decreasing distance order, which is the
  order needed for forward accumulation and, reversed, for the Brandes
  dependency recursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.graphs.core import Vertex
from repro.graphs.csr import np

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.csr import CSRGraph

__all__ = ["ShortestPathDAG", "CSRShortestPathDAG"]


@dataclass
class ShortestPathDAG:
    """All shortest paths from a single source vertex.

    Instances are produced by :func:`repro.shortest_paths.bfs.bfs_spd` for
    unweighted graphs and :func:`repro.shortest_paths.dijkstra.dijkstra_spd`
    for weighted graphs with positive weights.
    """

    #: The source (root) vertex of the DAG.
    source: Vertex
    #: Shortest-path distance from the source to each reachable vertex.
    distance: Dict[Vertex, float]
    #: Number of shortest paths from the source to each reachable vertex.
    sigma: Dict[Vertex, float]
    #: Predecessor (parent) lists: ``predecessors[v]`` is P_s(v).
    predecessors: Dict[Vertex, List[Vertex]]
    #: Reachable vertices in non-decreasing distance order (source first).
    order: List[Vertex] = field(default_factory=list)

    # ------------------------------------------------------------------
    def reachable(self) -> List[Vertex]:
        """Return the vertices reachable from the source (including it)."""
        return list(self.order)

    def number_of_reachable(self) -> int:
        """Return how many vertices are reachable from the source."""
        return len(self.order)

    def is_reachable(self, vertex: Vertex) -> bool:
        """Return ``True`` if *vertex* is reachable from the source."""
        return vertex in self.distance

    def path_count(self, vertex: Vertex) -> float:
        """Return :math:`\\sigma_{s,vertex}` (0 when unreachable)."""
        return self.sigma.get(vertex, 0.0)

    def distance_to(self, vertex: Vertex) -> float:
        """Return d(source, vertex), or ``inf`` when unreachable."""
        return self.distance.get(vertex, float("inf"))

    def parents(self, vertex: Vertex) -> List[Vertex]:
        """Return the predecessor list :math:`P_s(vertex)` (empty if none)."""
        return self.predecessors.get(vertex, [])

    # ------------------------------------------------------------------
    def successors(self) -> Dict[Vertex, List[Vertex]]:
        """Return the child lists of the DAG (inverse of the predecessor map).

        Computed on demand; used by forward traversals such as the
        per-target path counting in :meth:`paths_through`.
        """
        children: Dict[Vertex, List[Vertex]] = {v: [] for v in self.order}
        for child, parents in self.predecessors.items():
            for parent in parents:
                children[parent].append(child)
        return children

    def paths_through(self, vertex: Vertex) -> Dict[Vertex, float]:
        """Return :math:`\\sigma_{s t}(vertex)` for every target *t*.

        ``result[t]`` is the number of shortest paths from the source to *t*
        that pass through *vertex* (with the convention that paths "through"
        an endpoint are not counted, matching the betweenness definition).

        The count is ``sigma[vertex] * (number of shortest paths from vertex
        to t inside the DAG)``; the latter is accumulated with a forward
        sweep over the DAG in distance order.
        """
        if vertex not in self.distance:
            return {}
        # paths_from[t] = number of shortest paths from `vertex` to t that
        # stay inside the DAG (i.e. are suffixes of shortest s->t paths).
        paths_from: Dict[Vertex, float] = {vertex: 1.0}
        start_distance = self.distance[vertex]
        for t in self.order:
            if self.distance[t] <= start_distance or t == vertex:
                continue
            total = 0.0
            for parent in self.predecessors.get(t, []):
                total += paths_from.get(parent, 0.0)
            if total:
                paths_from[t] = total
        sigma_v = self.sigma[vertex]
        result: Dict[Vertex, float] = {}
        for t, count in paths_from.items():
            if t == vertex or t == self.source:
                continue
            result[t] = sigma_v * count
        return result

    def pair_dependencies(self, vertex: Vertex) -> Dict[Vertex, float]:
        """Return :math:`\\delta_{s t}(vertex) = \\sigma_{st}(vertex)/\\sigma_{st}` for all targets *t*."""
        through = self.paths_through(vertex)
        return {
            t: through[t] / self.sigma[t]
            for t in through
            if self.sigma.get(t, 0.0) > 0.0
        }

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raises :class:`AssertionError` on violation.

        Used by the property-based test-suite: sigma of a vertex must equal
        the sum of the sigmas of its predecessors, predecessors must be
        exactly one step closer to the source, and the source itself must
        have distance 0 and sigma 1.
        """
        assert self.distance.get(self.source) == 0.0, "source must have distance 0"
        assert self.sigma.get(self.source) == 1.0, "source must have sigma 1"
        assert not self.predecessors.get(self.source), "source must have no predecessors"
        for v in self.order:
            if v == self.source:
                continue
            parents = self.predecessors.get(v, [])
            assert parents, f"non-source vertex {v!r} must have at least one predecessor"
            assert self.sigma[v] == sum(self.sigma[p] for p in parents), (
                f"sigma[{v!r}] must equal the sum of predecessor sigmas"
            )


class CSRShortestPathDAG:
    """Array-backed shortest-path DAG over a :class:`~repro.graphs.csr.CSRGraph`.

    Produced by :func:`repro.shortest_paths.bfs.bfs_spd_csr` and
    :func:`repro.shortest_paths.dijkstra.dijkstra_spd_csr`.  All per-vertex
    quantities live in dense numpy arrays indexed by CSR vertex index:

    * ``dist`` — ``float64`` distances (``inf`` for unreachable vertices);
    * ``sig`` — ``float64`` shortest-path counts (0 for unreachable);
    * ``order_indices`` — reachable vertex indices in non-decreasing distance
      order (exactly the dequeue/settle order of the dict builders);
    * predecessor lists in CSR layout, built lazily from the recorded DAG
      edges: the parents of index ``i`` are
      ``pred_indices[pred_indptr[i]:pred_indptr[i + 1]]``, in the same order
      the dict builder would have appended them.

    For unweighted (BFS-built) DAGs, ``level_edges`` additionally groups the
    DAG edges by the level of the child vertex, which is what lets the
    dependency accumulation in :mod:`repro.shortest_paths.dependencies` run
    one vectorised pass per level instead of one dict operation per edge.
    Dijkstra-built DAGs set it to ``None`` and fall back to the per-vertex
    ordered sweep.

    Compatibility mapping API
    -------------------------
    The class quacks like :class:`ShortestPathDAG` where it matters: the
    ``distance`` / ``sigma`` / ``predecessors`` / ``order`` properties
    materialise the vertex-keyed dictionaries (and label list) lazily, cached
    after the first access; the reader methods (:meth:`distance_to`,
    :meth:`path_count`, :meth:`parents`, :meth:`is_reachable`,
    :meth:`reachable`) answer straight from the arrays, and :meth:`to_dag`
    produces a full dict-backed :class:`ShortestPathDAG` for consumers that
    need one.  Hot paths should use the arrays directly.
    """

    __slots__ = (
        "csr",
        "source_index",
        "dist",
        "sig",
        "order_indices",
        "level_edges",
        "_pred_indptr",
        "_pred_indices",
        "_distance_dict",
        "_sigma_dict",
        "_pred_dict",
        "_order_list",
    )

    def __init__(
        self,
        csr: "CSRGraph",
        source_index: int,
        dist,
        sig,
        order_indices,
        *,
        level_edges=None,
        pred_indptr=None,
        pred_indices=None,
    ) -> None:
        self.csr = csr
        self.source_index = int(source_index)
        self.dist = dist
        self.sig = sig
        self.order_indices = order_indices
        self.level_edges = level_edges
        self._pred_indptr = pred_indptr
        self._pred_indices = pred_indices
        self._distance_dict: Optional[Dict[Vertex, float]] = None
        self._sigma_dict: Optional[Dict[Vertex, float]] = None
        self._pred_dict: Optional[Dict[Vertex, List[Vertex]]] = None
        self._order_list: Optional[List[Vertex]] = None

    # ------------------------------------------------------------------
    # Array-native API (index space)
    # ------------------------------------------------------------------
    @property
    def pred_indptr(self):
        """CSR-layout offsets of the predecessor lists (built lazily)."""
        if self._pred_indptr is None:
            self._build_predecessors()
        return self._pred_indptr

    @property
    def pred_indices(self):
        """Flat predecessor-index array matching :attr:`pred_indptr`."""
        if self._pred_indices is None:
            self._build_predecessors()
        return self._pred_indices

    def _build_predecessors(self) -> None:
        n = self.csr.number_of_vertices()
        if self.level_edges is None:
            raise RuntimeError(
                "predecessor arrays were neither recorded nor derivable; "
                "the builder must pass pred_indptr/pred_indices or level_edges"
            )
        if self.level_edges:
            parents = np.concatenate([p for p, _ in self.level_edges])
            children = np.concatenate([c for _, c in self.level_edges])
            # Stable sort by child keeps, within each child, the order the
            # dict builder appends parents (frontier order, then adjacency
            # order) — required for rng-identical path backtracking.
            perm = np.argsort(children, kind="stable")
            self._pred_indices = parents[perm]
            counts = np.bincount(children, minlength=n)
        else:
            self._pred_indices = np.empty(0, dtype=np.int64)
            counts = np.zeros(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._pred_indptr = indptr

    def parents_of(self, index: int):
        """Return the predecessor-index array of vertex *index* (a view)."""
        indptr = self.pred_indptr
        return self.pred_indices[indptr[index] : indptr[index + 1]]

    def number_of_reachable(self) -> int:
        """Return how many vertices are reachable from the source."""
        return int(self.order_indices.shape[0])

    # ------------------------------------------------------------------
    # Compatibility mapping API (vertex space)
    # ------------------------------------------------------------------
    @property
    def source(self) -> Vertex:
        """The source vertex *label* (mirrors ``ShortestPathDAG.source``)."""
        return self.csr.vertex_at(self.source_index)

    @property
    def distance(self) -> Dict[Vertex, float]:
        """Vertex-keyed distance dict (lazy; reachable vertices only)."""
        if self._distance_dict is None:
            vertex_at = self.csr.vertex_at
            dist = self.dist
            self._distance_dict = {
                vertex_at(i): float(dist[i]) for i in self.order_indices.tolist()
            }
        return self._distance_dict

    @property
    def sigma(self) -> Dict[Vertex, float]:
        """Vertex-keyed path-count dict (lazy; reachable vertices only)."""
        if self._sigma_dict is None:
            vertex_at = self.csr.vertex_at
            sig = self.sig
            self._sigma_dict = {
                vertex_at(i): float(sig[i]) for i in self.order_indices.tolist()
            }
        return self._sigma_dict

    @property
    def predecessors(self) -> Dict[Vertex, List[Vertex]]:
        """Vertex-keyed predecessor lists (lazy; reachable vertices only)."""
        if self._pred_dict is None:
            vertex_at = self.csr.vertex_at
            indptr = self.pred_indptr
            indices = self.pred_indices
            result: Dict[Vertex, List[Vertex]] = {}
            for i in self.order_indices.tolist():
                result[vertex_at(i)] = [
                    vertex_at(p) for p in indices[indptr[i] : indptr[i + 1]].tolist()
                ]
            self._pred_dict = result
        return self._pred_dict

    @property
    def order(self) -> List[Vertex]:
        """Reachable vertex labels in traversal order (lazy compat view)."""
        if self._order_list is None:
            vertex_at = self.csr.vertex_at
            self._order_list = [vertex_at(i) for i in self.order_indices.tolist()]
        return self._order_list

    def reachable(self) -> List[Vertex]:
        """Return the reachable vertex labels in traversal order."""
        return list(self.order)

    def is_reachable(self, vertex: Vertex) -> bool:
        """Return ``True`` if *vertex* is reachable from the source.

        Like every reader below, mirrors the dict DAG's lenient contract: a
        label absent from the snapshot reads as unreachable, not an error.
        """
        index = self.csr.find_index(vertex)
        return False if index is None else bool(np.isfinite(self.dist[index]))

    def distance_to(self, vertex: Vertex) -> float:
        """Return d(source, vertex), or ``inf`` when unreachable."""
        index = self.csr.find_index(vertex)
        return float("inf") if index is None else float(self.dist[index])

    def path_count(self, vertex: Vertex) -> float:
        """Return :math:`\\sigma_{s,vertex}` (0 when unreachable)."""
        index = self.csr.find_index(vertex)
        return 0.0 if index is None else float(self.sig[index])

    def parents(self, vertex: Vertex) -> List[Vertex]:
        """Return the predecessor labels of *vertex* (empty if none)."""
        index = self.csr.find_index(vertex)
        if index is None:
            return []
        vertex_at = self.csr.vertex_at
        return [vertex_at(p) for p in self.parents_of(index).tolist()]

    def to_dag(self) -> ShortestPathDAG:
        """Materialise a fully dict-backed :class:`ShortestPathDAG` copy."""
        return ShortestPathDAG(
            source=self.source,
            distance=dict(self.distance),
            sigma=dict(self.sigma),
            predecessors={v: list(ps) for v, ps in self.predecessors.items()},
            order=self.reachable(),
        )
