"""The shortest-path DAG (SPD) data structure.

Section 2.1 of the paper: for every source vertex *s* the SPD rooted at *s*
is the DAG containing all shortest paths starting from *s*.  It is the
work-horse of every algorithm in the library — exact Brandes, all baseline
samplers, and the Metropolis-Hastings acceptance ratio all consume SPDs.

An SPD stores, for each vertex *v* reachable from the source:

* ``distance[v]`` — the shortest-path distance d(s, v);
* ``sigma[v]`` — the number of distinct shortest paths from *s* to *v*
  (:math:`\\sigma_{sv}`);
* ``predecessors[v]`` — the parent set :math:`P_s(v)` of *v* in the DAG;
* ``order`` — the vertices in non-decreasing distance order, which is the
  order needed for forward accumulation and, reversed, for the Brandes
  dependency recursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graphs.core import Vertex

__all__ = ["ShortestPathDAG"]


@dataclass
class ShortestPathDAG:
    """All shortest paths from a single source vertex.

    Instances are produced by :func:`repro.shortest_paths.bfs.bfs_spd` for
    unweighted graphs and :func:`repro.shortest_paths.dijkstra.dijkstra_spd`
    for weighted graphs with positive weights.
    """

    #: The source (root) vertex of the DAG.
    source: Vertex
    #: Shortest-path distance from the source to each reachable vertex.
    distance: Dict[Vertex, float]
    #: Number of shortest paths from the source to each reachable vertex.
    sigma: Dict[Vertex, float]
    #: Predecessor (parent) lists: ``predecessors[v]`` is P_s(v).
    predecessors: Dict[Vertex, List[Vertex]]
    #: Reachable vertices in non-decreasing distance order (source first).
    order: List[Vertex] = field(default_factory=list)

    # ------------------------------------------------------------------
    def reachable(self) -> List[Vertex]:
        """Return the vertices reachable from the source (including it)."""
        return list(self.order)

    def number_of_reachable(self) -> int:
        """Return how many vertices are reachable from the source."""
        return len(self.order)

    def is_reachable(self, vertex: Vertex) -> bool:
        """Return ``True`` if *vertex* is reachable from the source."""
        return vertex in self.distance

    def path_count(self, vertex: Vertex) -> float:
        """Return :math:`\\sigma_{s,vertex}` (0 when unreachable)."""
        return self.sigma.get(vertex, 0.0)

    def distance_to(self, vertex: Vertex) -> float:
        """Return d(source, vertex), or ``inf`` when unreachable."""
        return self.distance.get(vertex, float("inf"))

    def parents(self, vertex: Vertex) -> List[Vertex]:
        """Return the predecessor list :math:`P_s(vertex)` (empty if none)."""
        return self.predecessors.get(vertex, [])

    # ------------------------------------------------------------------
    def successors(self) -> Dict[Vertex, List[Vertex]]:
        """Return the child lists of the DAG (inverse of the predecessor map).

        Computed on demand; used by forward traversals such as the
        per-target path counting in :meth:`paths_through`.
        """
        children: Dict[Vertex, List[Vertex]] = {v: [] for v in self.order}
        for child, parents in self.predecessors.items():
            for parent in parents:
                children[parent].append(child)
        return children

    def paths_through(self, vertex: Vertex) -> Dict[Vertex, float]:
        """Return :math:`\\sigma_{s t}(vertex)` for every target *t*.

        ``result[t]`` is the number of shortest paths from the source to *t*
        that pass through *vertex* (with the convention that paths "through"
        an endpoint are not counted, matching the betweenness definition).

        The count is ``sigma[vertex] * (number of shortest paths from vertex
        to t inside the DAG)``; the latter is accumulated with a forward
        sweep over the DAG in distance order.
        """
        if vertex not in self.distance:
            return {}
        # paths_from[t] = number of shortest paths from `vertex` to t that
        # stay inside the DAG (i.e. are suffixes of shortest s->t paths).
        paths_from: Dict[Vertex, float] = {vertex: 1.0}
        start_distance = self.distance[vertex]
        for t in self.order:
            if self.distance[t] <= start_distance or t == vertex:
                continue
            total = 0.0
            for parent in self.predecessors.get(t, []):
                total += paths_from.get(parent, 0.0)
            if total:
                paths_from[t] = total
        sigma_v = self.sigma[vertex]
        result: Dict[Vertex, float] = {}
        for t, count in paths_from.items():
            if t == vertex or t == self.source:
                continue
            result[t] = sigma_v * count
        return result

    def pair_dependencies(self, vertex: Vertex) -> Dict[Vertex, float]:
        """Return :math:`\\delta_{s t}(vertex) = \\sigma_{st}(vertex)/\\sigma_{st}` for all targets *t*."""
        through = self.paths_through(vertex)
        return {
            t: through[t] / self.sigma[t]
            for t in through
            if self.sigma.get(t, 0.0) > 0.0
        }

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raises :class:`AssertionError` on violation.

        Used by the property-based test-suite: sigma of a vertex must equal
        the sum of the sigmas of its predecessors, predecessors must be
        exactly one step closer to the source, and the source itself must
        have distance 0 and sigma 1.
        """
        assert self.distance.get(self.source) == 0.0, "source must have distance 0"
        assert self.sigma.get(self.source) == 1.0, "source must have sigma 1"
        assert not self.predecessors.get(self.source), "source must have no predecessors"
        for v in self.order:
            if v == self.source:
                continue
            parents = self.predecessors.get(v, [])
            assert parents, f"non-source vertex {v!r} must have at least one predecessor"
            assert self.sigma[v] == sum(self.sigma[p] for p in parents), (
                f"sigma[{v!r}] must equal the sum of predecessor sigmas"
            )
