"""Balanced bidirectional BFS and shortest-path sampling between vertex pairs.

This is the substrate of the KADABRA-style baseline sampler (Borassi &
Natale 2016, discussed in Section 3.2 of the paper): a BFS is grown from both
endpoints *s* and *t*, always expanding the frontier that would touch fewer
edges, until the two frontiers meet.  The meeting structure is then used to
count shortest s-t paths and to sample one uniformly at random.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro._rng import RandomState, ensure_rng
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import np
from repro.shortest_paths.bfs import bfs_spd

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.csr import CSRGraph

__all__ = [
    "bidirectional_shortest_path_info",
    "bidirectional_shortest_path_info_csr",
    "sample_shortest_path",
    "sample_path_interior_csr",
    "all_shortest_paths",
]


def bidirectional_shortest_path_info(
    graph: Graph, s: Vertex, t: Vertex
) -> Tuple[float, float]:
    """Return ``(d(s, t), sigma_st)`` using a balanced bidirectional BFS.

    Returns ``(inf, 0.0)`` when *t* is unreachable from *s*.  For the pure
    Python reproduction the asymptotic win over a full BFS is what matters
    (about half the touched edges on low-diameter graphs), not absolute
    speed.
    """
    graph.validate_vertex(s)
    graph.validate_vertex(t)
    if s == t:
        return 0.0, 1.0

    dist_s: Dict[Vertex, float] = {s: 0.0}
    dist_t: Dict[Vertex, float] = {t: 0.0}
    sigma_s: Dict[Vertex, float] = {s: 1.0}
    sigma_t: Dict[Vertex, float] = {t: 1.0}
    frontier_s: List[Vertex] = [s]
    frontier_t: List[Vertex] = [t]
    level_s = 0.0
    level_t = 0.0

    while frontier_s and frontier_t:
        # Expand the side whose frontier has the smaller total degree —
        # the "balanced" rule of bb-BFS.
        work_s = sum(graph.degree(v) for v in frontier_s)
        work_t = sum(graph.degree(v) for v in frontier_t)
        if work_s <= work_t:
            frontier_s, level_s, met = _expand(
                graph, frontier_s, dist_s, sigma_s, level_s, dist_t
            )
        else:
            frontier_t, level_t, met = _expand(
                graph, frontier_t, dist_t, sigma_t, level_t, dist_s
            )
        if met:
            break
    else:
        return float("inf"), 0.0

    # Meeting vertices are those known to both searches with minimal total
    # distance; sum over them gives sigma_st.
    best = float("inf")
    for v in dist_s:
        if v in dist_t:
            best = min(best, dist_s[v] + dist_t[v])
    if best == float("inf"):
        return float("inf"), 0.0
    sigma = 0.0
    for v in dist_s:
        if v in dist_t and dist_s[v] + dist_t[v] == best:
            sigma += sigma_s[v] * sigma_t[v]
    return best, sigma


def _expand(
    graph: Graph,
    frontier: List[Vertex],
    dist: Dict[Vertex, float],
    sigma: Dict[Vertex, float],
    level: float,
    other_dist: Dict[Vertex, float],
) -> Tuple[List[Vertex], float, bool]:
    """Expand one BFS level; return the new frontier, level and whether the searches met."""
    next_frontier: List[Vertex] = []
    met = False
    for u in frontier:
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = level + 1.0
                sigma[v] = 0.0
                next_frontier.append(v)
            if dist[v] == level + 1.0:
                sigma[v] += sigma[u]
                if v in other_dist:
                    met = True
    return next_frontier, level + 1.0, met


def bidirectional_shortest_path_info_csr(
    csr: "CSRGraph", s: int, t: int
) -> Tuple[float, float]:
    """Return ``(d(s, t), sigma_st)`` for vertex *indices* on a CSR snapshot.

    Array-native twin of :func:`bidirectional_shortest_path_info`: both
    frontiers live in numpy arrays, each expansion is one gather over the
    CSR arrays, and the balanced rule compares the summed degrees of the two
    frontiers exactly as the dict implementation does.
    """
    n = csr.number_of_vertices()
    if s == t:
        return 0.0, 1.0
    degrees = csr.degrees()
    dist_s = np.full(n, np.inf)
    dist_t = np.full(n, np.inf)
    sigma_s = np.zeros(n)
    sigma_t = np.zeros(n)
    dist_s[s] = 0.0
    dist_t[t] = 0.0
    sigma_s[s] = 1.0
    sigma_t[t] = 1.0
    frontier_s = np.array([s], dtype=np.int64)
    frontier_t = np.array([t], dtype=np.int64)
    level_s = 0.0
    level_t = 0.0
    met = False
    while frontier_s.size and frontier_t.size:
        work_s = int(degrees[frontier_s].sum())
        work_t = int(degrees[frontier_t].sum())
        if work_s <= work_t:
            frontier_s, level_s, hit = _expand_csr(
                csr, frontier_s, dist_s, sigma_s, level_s, dist_t
            )
        else:
            frontier_t, level_t, hit = _expand_csr(
                csr, frontier_t, dist_t, sigma_t, level_t, dist_s
            )
        if hit:
            met = True
            break
    if not met:
        return float("inf"), 0.0
    both = np.isfinite(dist_s) & np.isfinite(dist_t)
    if not both.any():
        return float("inf"), 0.0
    totals = dist_s[both] + dist_t[both]
    best = float(totals.min())
    on_best = totals == best
    sigma = float((sigma_s[both][on_best] * sigma_t[both][on_best]).sum())
    return best, sigma


def _expand_csr(csr, frontier, dist, sigma, level, other_dist):
    """Vectorised one-level expansion; mirrors :func:`_expand` exactly."""
    from repro.shortest_paths.bfs import _gather_neighbors

    parents, nbrs = _gather_neighbors(csr, frontier)
    if nbrs.size == 0:
        return np.empty(0, dtype=np.int64), level + 1.0, False
    next_mask = np.isinf(dist[nbrs])
    children = nbrs[next_mask]
    if children.size:
        _, first_pos = np.unique(children, return_index=True)
        next_frontier = children[np.sort(first_pos)]
        dist[next_frontier] = level + 1.0
    else:
        next_frontier = np.empty(0, dtype=np.int64)
    # sigma flows along every edge into the new level (children only), and —
    # matching the dict implementation — only those edges can signal that the
    # searches met.
    on_level = dist[nbrs] == level + 1.0
    np.add.at(sigma, nbrs[on_level], sigma[parents[on_level]])
    met = bool(np.isfinite(other_dist[nbrs[on_level]]).any())
    return next_frontier, level + 1.0, met


def sample_path_interior_csr(spd, source: int, target: int, rng) -> List[int]:
    """Sample the interior of one uniform shortest source→target path, by index.

    Backtracks from *target* through an array-backed SPD, choosing each
    predecessor with probability proportional to its shortest-path count —
    the same uniform-path guarantee (and, deliberately, the same per-step
    ``rng.random()`` consumption and cumulative-scan tie-breaking) as the
    dict-backed samplers, so both backends walk identical paths for a fixed
    seed.  Returns the interior vertex indices from *target* backwards.
    """
    interior: List[int] = []
    sig = spd.sig
    current = target
    while True:
        parents = spd.parents_of(current)
        if parents.size == 0:
            break
        weights = sig[parents].tolist()
        total = sum(weights)
        pick = rng.random() * total
        cumulative = 0.0
        chosen = int(parents[-1])
        for parent, weight in zip(parents.tolist(), weights):
            cumulative += weight
            if pick <= cumulative:
                chosen = parent
                break
        if chosen == source:
            break
        interior.append(chosen)
        current = chosen
    return interior


def all_shortest_paths(graph: Graph, s: Vertex, t: Vertex) -> List[List[Vertex]]:
    """Return every shortest path from *s* to *t* as explicit vertex lists.

    Exponential in the worst case; used only on small graphs in tests and in
    the exact "internal vertices of sampled paths" bookkeeping of the
    Riondato–Kornaropoulos baseline when explicit paths are requested.
    """
    graph.validate_vertex(s)
    graph.validate_vertex(t)
    if s == t:
        return [[s]]
    spd = bfs_spd(graph, s) if not graph.weighted else None
    if spd is None:
        from repro.shortest_paths.dijkstra import dijkstra_spd

        spd = dijkstra_spd(graph, s)
    if not spd.is_reachable(t):
        return []
    paths: List[List[Vertex]] = []

    def _backtrack(vertex: Vertex, suffix: List[Vertex]) -> None:
        if vertex == s:
            paths.append([s] + suffix)
            return
        for parent in spd.parents(vertex):
            _backtrack(parent, [vertex] + suffix)

    _backtrack(t, [])
    return paths


def sample_shortest_path(
    graph: Graph, s: Vertex, t: Vertex, seed: RandomState = None
) -> Optional[List[Vertex]]:
    """Sample one shortest s-t path uniformly at random, or ``None`` if disconnected.

    The path is built by backtracking from *t* through the SPD rooted at
    *s*, choosing each predecessor with probability proportional to its
    shortest-path count — the standard trick that makes every shortest path
    equally likely, as required by the Riondato–Kornaropoulos sampler.
    """
    graph.validate_vertex(s)
    graph.validate_vertex(t)
    rng = ensure_rng(seed)
    if s == t:
        return [s]
    if graph.weighted:
        from repro.shortest_paths.dijkstra import dijkstra_spd

        spd = dijkstra_spd(graph, s)
    else:
        spd = bfs_spd(graph, s)
    if not spd.is_reachable(t):
        return None
    path: List[Vertex] = [t]
    current = t
    while current != s:
        parents = spd.parents(current)
        weights = [spd.sigma[p] for p in parents]
        total = sum(weights)
        pick = rng.random() * total
        cumulative = 0.0
        chosen = parents[-1]
        for parent, weight in zip(parents, weights):
            cumulative += weight
            if pick <= cumulative:
                chosen = parent
                break
        path.append(chosen)
        current = chosen
    path.reverse()
    return path
