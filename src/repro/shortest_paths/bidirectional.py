"""Balanced bidirectional BFS and shortest-path sampling between vertex pairs.

This is the substrate of the KADABRA-style baseline sampler (Borassi &
Natale 2016, discussed in Section 3.2 of the paper): a BFS is grown from both
endpoints *s* and *t*, always expanding the frontier that would touch fewer
edges, until the two frontiers meet.  The meeting structure is then used to
count shortest s-t paths and to sample one uniformly at random.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro._rng import RandomState, ensure_rng
from repro.graphs.core import Graph, Vertex
from repro.shortest_paths.bfs import bfs_spd

__all__ = ["bidirectional_shortest_path_info", "sample_shortest_path", "all_shortest_paths"]


def bidirectional_shortest_path_info(
    graph: Graph, s: Vertex, t: Vertex
) -> Tuple[float, float]:
    """Return ``(d(s, t), sigma_st)`` using a balanced bidirectional BFS.

    Returns ``(inf, 0.0)`` when *t* is unreachable from *s*.  For the pure
    Python reproduction the asymptotic win over a full BFS is what matters
    (about half the touched edges on low-diameter graphs), not absolute
    speed.
    """
    graph.validate_vertex(s)
    graph.validate_vertex(t)
    if s == t:
        return 0.0, 1.0

    dist_s: Dict[Vertex, float] = {s: 0.0}
    dist_t: Dict[Vertex, float] = {t: 0.0}
    sigma_s: Dict[Vertex, float] = {s: 1.0}
    sigma_t: Dict[Vertex, float] = {t: 1.0}
    frontier_s: List[Vertex] = [s]
    frontier_t: List[Vertex] = [t]
    level_s = 0.0
    level_t = 0.0

    while frontier_s and frontier_t:
        # Expand the side whose frontier has the smaller total degree —
        # the "balanced" rule of bb-BFS.
        work_s = sum(graph.degree(v) for v in frontier_s)
        work_t = sum(graph.degree(v) for v in frontier_t)
        if work_s <= work_t:
            frontier_s, level_s, met = _expand(
                graph, frontier_s, dist_s, sigma_s, level_s, dist_t
            )
        else:
            frontier_t, level_t, met = _expand(
                graph, frontier_t, dist_t, sigma_t, level_t, dist_s
            )
        if met:
            break
    else:
        return float("inf"), 0.0

    # Meeting vertices are those known to both searches with minimal total
    # distance; sum over them gives sigma_st.
    best = float("inf")
    for v in dist_s:
        if v in dist_t:
            best = min(best, dist_s[v] + dist_t[v])
    if best == float("inf"):
        return float("inf"), 0.0
    sigma = 0.0
    for v in dist_s:
        if v in dist_t and dist_s[v] + dist_t[v] == best:
            sigma += sigma_s[v] * sigma_t[v]
    return best, sigma


def _expand(
    graph: Graph,
    frontier: List[Vertex],
    dist: Dict[Vertex, float],
    sigma: Dict[Vertex, float],
    level: float,
    other_dist: Dict[Vertex, float],
) -> Tuple[List[Vertex], float, bool]:
    """Expand one BFS level; return the new frontier, level and whether the searches met."""
    next_frontier: List[Vertex] = []
    met = False
    for u in frontier:
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = level + 1.0
                sigma[v] = 0.0
                next_frontier.append(v)
            if dist[v] == level + 1.0:
                sigma[v] += sigma[u]
                if v in other_dist:
                    met = True
    return next_frontier, level + 1.0, met


def all_shortest_paths(graph: Graph, s: Vertex, t: Vertex) -> List[List[Vertex]]:
    """Return every shortest path from *s* to *t* as explicit vertex lists.

    Exponential in the worst case; used only on small graphs in tests and in
    the exact "internal vertices of sampled paths" bookkeeping of the
    Riondato–Kornaropoulos baseline when explicit paths are requested.
    """
    graph.validate_vertex(s)
    graph.validate_vertex(t)
    if s == t:
        return [[s]]
    spd = bfs_spd(graph, s) if not graph.weighted else None
    if spd is None:
        from repro.shortest_paths.dijkstra import dijkstra_spd

        spd = dijkstra_spd(graph, s)
    if not spd.is_reachable(t):
        return []
    paths: List[List[Vertex]] = []

    def _backtrack(vertex: Vertex, suffix: List[Vertex]) -> None:
        if vertex == s:
            paths.append([s] + suffix)
            return
        for parent in spd.parents(vertex):
            _backtrack(parent, [vertex] + suffix)

    _backtrack(t, [])
    return paths


def sample_shortest_path(
    graph: Graph, s: Vertex, t: Vertex, seed: RandomState = None
) -> Optional[List[Vertex]]:
    """Sample one shortest s-t path uniformly at random, or ``None`` if disconnected.

    The path is built by backtracking from *t* through the SPD rooted at
    *s*, choosing each predecessor with probability proportional to its
    shortest-path count — the standard trick that makes every shortest path
    equally likely, as required by the Riondato–Kornaropoulos sampler.
    """
    graph.validate_vertex(s)
    graph.validate_vertex(t)
    rng = ensure_rng(seed)
    if s == t:
        return [s]
    if graph.weighted:
        from repro.shortest_paths.dijkstra import dijkstra_spd

        spd = dijkstra_spd(graph, s)
    else:
        spd = bfs_spd(graph, s)
    if not spd.is_reachable(t):
        return None
    path: List[Vertex] = [t]
    current = t
    while current != s:
        parents = spd.parents(current)
        weights = [spd.sigma[p] for p in parents]
        total = sum(weights)
        pick = rng.random() * total
        cumulative = 0.0
        chosen = parents[-1]
        for parent, weight in zip(parents, weights):
            cumulative += weight
            if pick <= cumulative:
                chosen = parent
                break
        path.append(chosen)
        current = chosen
    path.reverse()
    return path
