"""Shortest-path substrate: SPDs, BFS/Dijkstra builders and dependency accumulation."""

from repro.shortest_paths.bfs import bfs_distances, bfs_spd, single_pair_distance
from repro.shortest_paths.bidirectional import (
    all_shortest_paths,
    bidirectional_shortest_path_info,
    sample_shortest_path,
)
from repro.shortest_paths.dependencies import (
    accumulate_dependencies,
    accumulate_edge_dependencies,
    all_dependencies_on_target,
    dependency_on_target,
    source_dependencies,
    spd_builder,
)
from repro.shortest_paths.dijkstra import dijkstra_distances, dijkstra_spd
from repro.shortest_paths.spd import ShortestPathDAG

__all__ = [
    "ShortestPathDAG",
    "bfs_spd",
    "bfs_distances",
    "single_pair_distance",
    "dijkstra_spd",
    "dijkstra_distances",
    "accumulate_dependencies",
    "accumulate_edge_dependencies",
    "source_dependencies",
    "dependency_on_target",
    "all_dependencies_on_target",
    "spd_builder",
    "bidirectional_shortest_path_info",
    "sample_shortest_path",
    "all_shortest_paths",
]
