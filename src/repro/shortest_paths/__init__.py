"""Shortest-path substrate: SPDs, BFS/Dijkstra builders and dependency accumulation.

Every builder and accumulator ships in two flavours: the dict-backed
reference implementation over :class:`~repro.graphs.core.Graph` and a
``*_csr`` kernel over the flat-array :class:`~repro.graphs.csr.CSRGraph`
snapshot (see that module for the backend contract).  The CSR kernels
additionally come in two bit-identical rungs — the numpy implementations
here and numba-compiled twins in :mod:`repro.shortest_paths.compiled`,
selected by the ``kernel`` knob (:func:`~repro.graphs.csr.resolve_kernel`).
"""

from repro.shortest_paths.batch import (
    BatchedSPD,
    accumulate_dependencies_batch_csr,
    batch_source_dependencies,
    bfs_spd_batch_csr,
)
from repro.shortest_paths.bfs import (
    bfs_distances,
    bfs_distances_csr,
    bfs_spd,
    bfs_spd_csr,
    single_pair_distance,
)
from repro.shortest_paths.compiled import (
    NUMBA_AVAILABLE,
    accumulate_dependencies_compiled,
    batch_dependencies_compiled,
    bfs_spd_compiled,
    source_dependencies_compiled,
    warm_up,
)
from repro.shortest_paths.bidirectional import (
    all_shortest_paths,
    bidirectional_shortest_path_info,
    bidirectional_shortest_path_info_csr,
    sample_shortest_path,
)
from repro.shortest_paths.dependencies import (
    accumulate_dependencies,
    accumulate_dependencies_csr,
    accumulate_edge_dependencies,
    all_dependencies_on_target,
    csr_dependency_on_target,
    csr_source_dependencies,
    csr_spd_builder,
    dependency_on_target,
    source_dependencies,
    spd_builder,
)
from repro.shortest_paths.dijkstra import dijkstra_distances, dijkstra_spd, dijkstra_spd_csr
from repro.shortest_paths.spd import CSRShortestPathDAG, ShortestPathDAG

__all__ = [
    "ShortestPathDAG",
    "CSRShortestPathDAG",
    "BatchedSPD",
    "bfs_spd",
    "bfs_spd_csr",
    "bfs_spd_batch_csr",
    "accumulate_dependencies_batch_csr",
    "batch_source_dependencies",
    "bfs_distances",
    "bfs_distances_csr",
    "single_pair_distance",
    "dijkstra_spd",
    "dijkstra_spd_csr",
    "dijkstra_distances",
    "accumulate_dependencies",
    "accumulate_dependencies_csr",
    "accumulate_edge_dependencies",
    "source_dependencies",
    "dependency_on_target",
    "all_dependencies_on_target",
    "csr_source_dependencies",
    "csr_dependency_on_target",
    "spd_builder",
    "csr_spd_builder",
    "bidirectional_shortest_path_info",
    "bidirectional_shortest_path_info_csr",
    "sample_shortest_path",
    "all_shortest_paths",
    "NUMBA_AVAILABLE",
    "bfs_spd_compiled",
    "accumulate_dependencies_compiled",
    "source_dependencies_compiled",
    "batch_dependencies_compiled",
    "warm_up",
]
