"""Breadth-first construction of shortest-path DAGs for unweighted graphs.

Building the SPD rooted at a source costs ``O(|E(G)|)`` time (Section 2.1),
which is also the per-sample cost quoted for every sampler in the paper.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.graphs.core import Graph, Vertex
from repro.shortest_paths.spd import ShortestPathDAG

__all__ = ["bfs_spd", "bfs_distances", "single_pair_distance"]


def bfs_spd(graph: Graph, source: Vertex, *, cutoff: Optional[float] = None) -> ShortestPathDAG:
    """Return the shortest-path DAG rooted at *source* for an unweighted graph.

    Parameters
    ----------
    graph:
        The input graph.  Edge weights are ignored; every edge counts as
        length 1.
    source:
        The root vertex.
    cutoff:
        Optional maximum distance; vertices farther than *cutoff* are not
        explored.  Used by truncated traversals in the examples.
    """
    graph.validate_vertex(source)
    distance: Dict[Vertex, float] = {source: 0.0}
    sigma: Dict[Vertex, float] = {source: 1.0}
    predecessors: Dict[Vertex, List[Vertex]] = {source: []}
    order: List[Vertex] = []
    queue = deque([source])
    while queue:
        u = queue.popleft()
        order.append(u)
        d_u = distance[u]
        if cutoff is not None and d_u >= cutoff:
            continue
        for v in graph.neighbors(u):
            if v not in distance:
                distance[v] = d_u + 1.0
                sigma[v] = 0.0
                predecessors[v] = []
                queue.append(v)
            if distance[v] == d_u + 1.0:
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    return ShortestPathDAG(
        source=source,
        distance=distance,
        sigma=sigma,
        predecessors=predecessors,
        order=order,
    )


def bfs_distances(graph: Graph, source: Vertex) -> Dict[Vertex, float]:
    """Return only the distance map from *source* (cheaper than a full SPD)."""
    graph.validate_vertex(source)
    distance: Dict[Vertex, float] = {source: 0.0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        d_u = distance[u]
        for v in graph.neighbors(u):
            if v not in distance:
                distance[v] = d_u + 1.0
                queue.append(v)
    return distance


def single_pair_distance(graph: Graph, source: Vertex, target: Vertex) -> float:
    """Return d(source, target), or ``inf`` if *target* is unreachable."""
    graph.validate_vertex(source)
    graph.validate_vertex(target)
    if source == target:
        return 0.0
    distance: Dict[Vertex, float] = {source: 0.0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        d_u = distance[u]
        for v in graph.neighbors(u):
            if v not in distance:
                if v == target:
                    return d_u + 1.0
                distance[v] = d_u + 1.0
                queue.append(v)
    return float("inf")
