"""Breadth-first construction of shortest-path DAGs for unweighted graphs.

Building the SPD rooted at a source costs ``O(|E(G)|)`` time (Section 2.1),
which is also the per-sample cost quoted for every sampler in the paper.

Two implementations share this module:

* :func:`bfs_spd` / :func:`bfs_distances` — the reference dict-backed
  traversal over :class:`~repro.graphs.core.Graph`;
* :func:`bfs_spd_csr` / :func:`bfs_distances_csr` — level-synchronous,
  numpy-vectorised traversals over a :class:`~repro.graphs.csr.CSRGraph`
  snapshot.  Each BFS level is expanded with one gather over the CSR arrays
  instead of one dict lookup per edge, which is where the CSR backend's
  speedup comes from.  Frontier and predecessor ordering deliberately mirror
  the dict implementation (queue order / adjacency order), so both backends
  produce identical DAGs and — for samplers that backtrack through them —
  identical rng-driven paths.

Cutoff semantics
----------------
``cutoff`` is **inclusive**: exactly the vertices with ``d(source, v) <=
cutoff`` are discovered and returned; no vertex beyond the cutoff is ever
enqueued or recorded.  (An earlier revision compared ``distance >= cutoff``
at dequeue time, which silently *included* vertices one level beyond a
fractional cutoff — e.g. ``cutoff=1.5`` returned vertices at distance 2.
The check is now equivalent to testing ``d_u + 1 > cutoff`` before
discovering neighbours, on both backends.)
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import np, resolve_kernel
from repro.shortest_paths.spd import CSRShortestPathDAG, ShortestPathDAG

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.csr import CSRGraph

__all__ = [
    "bfs_spd",
    "bfs_distances",
    "single_pair_distance",
    "bfs_spd_csr",
    "bfs_distances_csr",
]


def bfs_spd(graph: Graph, source: Vertex, *, cutoff: Optional[float] = None) -> ShortestPathDAG:
    """Return the shortest-path DAG rooted at *source* for an unweighted graph.

    Parameters
    ----------
    graph:
        The input graph.  Edge weights are ignored; every edge counts as
        length 1.
    source:
        The root vertex.
    cutoff:
        Optional maximum distance (inclusive): exactly the vertices with
        ``d(source, v) <= cutoff`` are explored and returned.  Used by
        truncated traversals in the examples.
    """
    graph.validate_vertex(source)
    distance: Dict[Vertex, float] = {source: 0.0}
    sigma: Dict[Vertex, float] = {source: 1.0}
    predecessors: Dict[Vertex, List[Vertex]] = {source: []}
    order: List[Vertex] = []
    queue = deque([source])
    while queue:
        u = queue.popleft()
        order.append(u)
        d_u = distance[u]
        if cutoff is not None and d_u + 1.0 > cutoff:
            continue
        for v in graph.neighbors(u):
            if v not in distance:
                distance[v] = d_u + 1.0
                sigma[v] = 0.0
                predecessors[v] = []
                queue.append(v)
            if distance[v] == d_u + 1.0:
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    return ShortestPathDAG(
        source=source,
        distance=distance,
        sigma=sigma,
        predecessors=predecessors,
        order=order,
    )


def bfs_distances(graph: Graph, source: Vertex) -> Dict[Vertex, float]:
    """Return only the distance map from *source* (cheaper than a full SPD)."""
    graph.validate_vertex(source)
    distance: Dict[Vertex, float] = {source: 0.0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        d_u = distance[u]
        for v in graph.neighbors(u):
            if v not in distance:
                distance[v] = d_u + 1.0
                queue.append(v)
    return distance


def single_pair_distance(graph: Graph, source: Vertex, target: Vertex) -> float:
    """Return d(source, target), or ``inf`` if *target* is unreachable."""
    graph.validate_vertex(source)
    graph.validate_vertex(target)
    if source == target:
        return 0.0
    distance: Dict[Vertex, float] = {source: 0.0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        d_u = distance[u]
        for v in graph.neighbors(u):
            if v not in distance:
                if v == target:
                    return d_u + 1.0
                distance[v] = d_u + 1.0
                queue.append(v)
    return float("inf")


# ----------------------------------------------------------------------
# CSR kernels
# ----------------------------------------------------------------------
def _gather_neighbors(csr: "CSRGraph", frontier):
    """Return ``(parents, nbrs)`` — every out-edge of *frontier*, flattened.

    ``parents[k]`` is the frontier vertex whose adjacency produced
    ``nbrs[k]``; edges appear in frontier order and, within one parent, in
    adjacency order — the exact order the dict BFS visits them.
    """
    indptr = csr.indptr
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    cum = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    flat = np.repeat(starts, counts) + offsets
    return np.repeat(frontier, counts), csr.indices[flat]


def bfs_spd_csr(
    csr: "CSRGraph", source: int, *, cutoff: Optional[float] = None, kernel: str = "auto"
) -> CSRShortestPathDAG:
    """Return the array-backed SPD rooted at vertex index *source*.

    Level-synchronous vectorised BFS: each iteration gathers the whole next
    level with numpy primitives.  Distances, path counts, traversal order and
    predecessor ordering are identical to :func:`bfs_spd` on the same graph
    (``cutoff`` is inclusive, as documented in the module docstring).

    ``kernel`` selects the rung that runs the wave
    (:func:`~repro.graphs.csr.resolve_kernel`): ``"compiled"`` routes to
    the numba twin in :mod:`repro.shortest_paths.compiled`, which returns
    a bit-identical DAG — the knob never changes a result.
    """
    if resolve_kernel(kernel) == "compiled":
        from repro.shortest_paths.compiled import bfs_spd_compiled

        return bfs_spd_compiled(csr, source, cutoff=cutoff)
    n = csr.number_of_vertices()
    if not 0 <= source < n:
        raise IndexError(f"source index {source} out of range for {n} vertices")
    dist = np.full(n, np.inf)
    sig = np.zeros(n)
    dist[source] = 0.0
    sig[source] = 1.0
    frontier = np.array([source], dtype=np.int64)
    order_parts = [frontier]
    level_edges: List[Tuple] = []
    level = 0.0
    while frontier.size:
        if cutoff is not None and level + 1.0 > cutoff:
            break
        parents, nbrs = _gather_neighbors(csr, frontier)
        if nbrs.size == 0:
            break
        # DAG edges point to the next level: exactly the neighbours not yet
        # assigned a distance (same-level and backward edges are finite here).
        mask = np.isinf(dist[nbrs])
        children = nbrs[mask]
        if children.size == 0:
            break
        edge_parents = parents[mask]
        # bincount-as-scatter-add: much faster than np.add.at for the
        # many-small-updates pattern of a BFS level.
        sig += np.bincount(children, weights=sig[edge_parents], minlength=n)
        # New frontier: unique children in first-touch order, matching the
        # dict BFS queue (np.unique alone would sort by index instead).
        _, first_pos = np.unique(children, return_index=True)
        frontier = children[np.sort(first_pos)]
        dist[frontier] = level + 1.0
        order_parts.append(frontier)
        level_edges.append((edge_parents, children))
        level += 1.0
    order = np.concatenate(order_parts) if len(order_parts) > 1 else order_parts[0]
    return CSRShortestPathDAG(
        csr, source, dist, sig, order, level_edges=level_edges
    )


def bfs_distances_csr(csr: "CSRGraph", source: int):
    """Return ``(dist, order)`` arrays for vertex index *source*.

    ``dist`` is the full ``float64`` distance array (``inf`` when
    unreachable) and ``order`` lists the reachable indices in discovery
    order — the same iteration order :func:`bfs_distances` yields, which
    callers rely on when they rebuild insertion-ordered dicts at the result
    boundary.
    """
    n = csr.number_of_vertices()
    if not 0 <= source < n:
        raise IndexError(f"source index {source} out of range for {n} vertices")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    order_parts = [frontier]
    level = 0.0
    while frontier.size:
        _, nbrs = _gather_neighbors(csr, frontier)
        if nbrs.size == 0:
            break
        fresh = nbrs[np.isinf(dist[nbrs])]
        if fresh.size == 0:
            break
        _, first_pos = np.unique(fresh, return_index=True)
        frontier = fresh[np.sort(first_pos)]
        dist[frontier] = level + 1.0
        order_parts.append(frontier)
        level += 1.0
    order = np.concatenate(order_parts) if len(order_parts) > 1 else order_parts[0]
    return dist, order
