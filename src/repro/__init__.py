"""repro — Metropolis-Hastings algorithms for estimating betweenness centrality.

A from-scratch, pure-Python reproduction of

    M. H. Chehreghani, T. Abdessalem, A. Bifet.
    "Metropolis-Hastings Algorithms for Estimating Betweenness Centrality"
    (EDBT 2019; arXiv:1704.07351).

The package is organised in layers:

* :mod:`repro.graphs` — graph data structure, generators, I/O and statistics;
* :mod:`repro.shortest_paths` — shortest-path DAGs and Brandes dependency
  accumulation (the substrate every estimator shares);
* :mod:`repro.exact` — exact betweenness (Brandes, single vertex, edges,
  groups, degree-one compression);
* :mod:`repro.samplers` — the baseline approximate estimators the paper
  compares against;
* :mod:`repro.mcmc` — the paper's contribution: the single-space and
  joint-space Metropolis-Hastings samplers, their theoretical bounds and
  chain diagnostics;
* :mod:`repro.centrality` — the high-level one-call API;
* :mod:`repro.analysis` — error metrics, rank correlation, coverage and
  convergence tooling used by the benchmark harness;
* :mod:`repro.datasets` — synthetic stand-ins for the evaluation networks.

Quickstart
----------
>>> from repro import barbell_graph, betweenness_single, betweenness_exact
>>> g = barbell_graph(8, 2)
>>> bridge = 8                                  # a bridge vertex
>>> exact = betweenness_exact(g, [bridge])[bridge]
>>> approx = betweenness_single(g, bridge, method="mh", samples=300, seed=1)
>>> abs(approx.estimate - exact) < 0.1
True
"""

from repro.centrality.api import (
    betweenness_exact,
    betweenness_ranking,
    betweenness_single,
    relative_betweenness,
    suggested_chain_length,
)
from repro.errors import (
    AlgorithmError,
    ConfigurationError,
    DatasetError,
    GraphError,
    GraphStructureError,
    NegativeWeightError,
    NotConnectedError,
    ReproError,
    SamplingError,
    VertexNotFoundError,
)
from repro.exact import (
    betweenness_centrality,
    betweenness_of_vertex,
    exact_relative_betweenness,
)
from repro.graphs import (
    CSRGraph,
    Graph,
    barabasi_albert_graph,
    barbell_graph,
    erdos_renyi_graph,
    grid_graph,
    planted_partition_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.mcmc import (
    DependencyOracle,
    JointSpaceMHSampler,
    SingleSpaceMHSampler,
    mu_of_vertex,
    required_samples,
)
from repro.datasets import load_dataset

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # high-level API
    "betweenness_single",
    "betweenness_exact",
    "relative_betweenness",
    "betweenness_ranking",
    "suggested_chain_length",
    # core classes
    "Graph",
    "CSRGraph",
    "SingleSpaceMHSampler",
    "JointSpaceMHSampler",
    "DependencyOracle",
    # exact algorithms
    "betweenness_centrality",
    "betweenness_of_vertex",
    "exact_relative_betweenness",
    # bounds
    "mu_of_vertex",
    "required_samples",
    # generators & datasets (the most common ones re-exported for convenience)
    "barbell_graph",
    "star_graph",
    "grid_graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "planted_partition_graph",
    "load_dataset",
    # errors
    "ReproError",
    "GraphError",
    "GraphStructureError",
    "VertexNotFoundError",
    "NotConnectedError",
    "NegativeWeightError",
    "AlgorithmError",
    "SamplingError",
    "ConfigurationError",
    "DatasetError",
]
