"""HTTP serving tier: session registry, request coalescing, metrics.

``repro-bc serve`` (:mod:`repro.serving.server`) puts a long-running
HTTP/JSON daemon in front of the warm
:class:`~repro.centrality.session.BetweennessSession` layer:

* :mod:`repro.serving.registry` — many named graphs, one thread-safe warm
  session each, with load / evict / mutate lifecycle and graph-version
  stamps on every answer;
* :mod:`repro.serving.coalesce` — in-flight coalescing of byte-identical
  request bodies (the ``interned_payload`` idiom lifted to the request
  layer) plus bounded-admission overload control;
* :mod:`repro.serving.metrics` — a dependency-free Prometheus-text metrics
  registry (counters, gauges, histograms with quantile export);
* :mod:`repro.serving.queries` — the one query-to-JSON-payload mapping the
  HTTP daemon and the ``repro-bc batch`` stream share, so their receipts
  cannot drift.

Everything is standard library only (``http.server`` underneath); the
daemon adds no dependencies to the library.
"""

from repro.serving.coalesce import CoalesceTimeout, OverloadedError, RequestCoalescer
from repro.serving.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serving.registry import GraphNotLoaded, ManagedSession, SessionRegistry
from repro.serving.server import ServingApp, ServingConfig, create_server

__all__ = [
    "RequestCoalescer",
    "OverloadedError",
    "CoalesceTimeout",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SessionRegistry",
    "ManagedSession",
    "GraphNotLoaded",
    "ServingApp",
    "ServingConfig",
    "create_server",
]
