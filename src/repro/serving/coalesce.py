"""In-flight request coalescing and bounded admission.

The ``interned_payload`` idiom of :mod:`repro.execution.runtime` — hand the
pool the *same object* so work is paid once — lifted to the request layer:
byte-identical concurrent requests share **one** computation and one
rendered response.  The serving daemon keys computations on
``(graph name, graph version, endpoint, raw body bytes)``, so a dashboard
fan-out of identical queries costs one estimator run, and a request
admitted after a graph mutation can never join a pre-mutation computation
(the version is part of the key).

Two control planes ride along:

* **Admission** — at most ``max_inflight`` *distinct* computations run at
  once; an over-limit leader is refused with :class:`OverloadedError`
  (mapped to HTTP 429 + ``Retry-After`` upstream).  Followers joining an
  in-flight computation are always admitted: they add waiting, not work.
* **Deadlines** — every request waits on its computation with a timeout
  (:class:`CoalesceTimeout` → HTTP 504).  Computations run on their own
  daemon thread, so a timed-out request abandons the *response*, never the
  work: the computation finishes, stays joinable for late duplicates until
  it completes, and leaves the session's caches warm.  That is the
  "graceful cancellation" contract — Python threads cannot be killed, so
  the daemon guarantees it never hangs a client instead of pretending to
  abort the estimator.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.errors import ReproError

__all__ = ["RequestCoalescer", "OverloadedError", "CoalesceTimeout"]


class OverloadedError(ReproError):
    """Raised when admission control refuses a new computation."""

    def __init__(self, inflight: int, limit: int, retry_after: float) -> None:
        super().__init__(
            f"server overloaded: {inflight} computations in flight "
            f"(limit {limit}); retry after {retry_after:g}s"
        )
        self.inflight = inflight
        self.limit = limit
        self.retry_after = retry_after


class CoalesceTimeout(ReproError):
    """Raised when a request's wait deadline expires before its computation."""

    def __init__(self, timeout: float) -> None:
        super().__init__(
            f"request deadline of {timeout:g}s exceeded; the computation "
            "continues in the background and its result is discarded"
        )
        self.timeout = timeout


class _Computation:
    """One in-flight computation: result slot + completion event."""

    __slots__ = ("key", "event", "value", "error", "followers")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.followers = 0

    def finish(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        self.value = value
        self.error = error
        self.event.set()


class RequestCoalescer:
    """Deduplicate identical in-flight computations behind one result.

    Parameters
    ----------
    max_inflight:
        Upper bound on concurrently running *distinct* computations
        (``None`` = unbounded).  The admission bound of the daemon.
    retry_after:
        The hint (seconds) carried by :class:`OverloadedError` and exported
        as the HTTP ``Retry-After`` header.
    """

    def __init__(
        self, max_inflight: Optional[int] = None, retry_after: float = 1.0
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1 or None, got {max_inflight!r}")
        self.max_inflight = max_inflight
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, _Computation] = {}
        self.coalesce_hits = 0  #: lifetime follower count (joined an in-flight run)
        self.computations = 0  #: lifetime leader count (started a fresh run)
        self.rejections = 0  #: lifetime admission refusals

    # ------------------------------------------------------------------
    def inflight_count(self) -> int:
        """Number of computations currently running."""
        with self._lock:
            return len(self._inflight)

    def waiters(self, key: Hashable) -> int:
        """Follower count of the in-flight computation under *key* (0 if none)."""
        with self._lock:
            computation = self._inflight.get(key)
            return computation.followers if computation is not None else 0

    # ------------------------------------------------------------------
    def execute(
        self,
        key: Hashable,
        fn: Callable[[], Any],
        timeout: Optional[float] = None,
    ) -> Tuple[Any, bool]:
        """Run *fn* under *key*, coalescing onto an identical in-flight run.

        Returns ``(result, coalesced)`` — ``coalesced`` is ``True`` when
        this request joined a computation another request started.  Raises
        :class:`OverloadedError` when starting a fresh computation would
        exceed the admission bound, :class:`CoalesceTimeout` when the wait
        deadline expires, and re-raises the computation's own exception for
        every request sharing it (each sharer reports the same failure —
        one broken computation never strands its followers).
        """
        with self._lock:
            computation = self._inflight.get(key)
            if computation is not None:
                computation.followers += 1
                self.coalesce_hits += 1
                coalesced = True
            else:
                if (
                    self.max_inflight is not None
                    and len(self._inflight) >= self.max_inflight
                ):
                    self.rejections += 1
                    raise OverloadedError(
                        len(self._inflight), self.max_inflight, self.retry_after
                    )
                computation = _Computation(key)
                self._inflight[key] = computation
                self.computations += 1
                coalesced = False
                worker = threading.Thread(
                    target=self._run,
                    args=(computation, fn),
                    name=f"repro-serve-compute-{self.computations}",
                    daemon=True,
                )
                worker.start()
        if not computation.event.wait(timeout):
            raise CoalesceTimeout(timeout if timeout is not None else 0.0)
        if computation.error is not None:
            raise computation.error
        return computation.value, coalesced

    def _run(self, computation: _Computation, fn: Callable[[], Any]) -> None:
        try:
            value = fn()
        except BaseException as exc:  # noqa: BLE001 - relayed to every waiter
            self._finish(computation, error=exc)
        else:
            self._finish(computation, value=value)

    def _finish(
        self,
        computation: _Computation,
        value: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        # Remove from the in-flight table *before* signalling: a request
        # arriving after completion must start (or queue) a fresh
        # computation, never read a completed one — results may embed
        # time-dependent receipts, and "in-flight" is the whole contract.
        with self._lock:
            if self._inflight.get(computation.key) is computation:
                del self._inflight[computation.key]
        computation.finish(value=value, error=error)
