"""One query-dictionary → result-payload mapping for every serving surface.

Both streaming front ends — ``repro-bc batch`` (JSONL over stdin) and
``repro-bc serve`` (HTTP/JSON) — accept the same query objects
(``{"op": "estimate", "vertex": 3, "samples": 200, "seed": 7}`` and
friends) and must answer with the same payload shape, execution stamp
included.  This module is the single implementation both delegate to, so
the two surfaces cannot drift (``tests/test_serving.py`` pins them against
each other and against the one-shot CLI commands).

The payload builders stamp provenance through
:func:`repro.execution.stamp.execution_stamp` — the same helper the
benchmark harness uses for its table headers.
"""

from __future__ import annotations

from typing import Optional

from repro.centrality.api import MCMC_SINGLE_METHODS
from repro.errors import ReproError
from repro.execution.stamp import execution_stamp

__all__ = [
    "parse_vertex",
    "estimate_payload",
    "relative_payload",
    "execute_query",
    "QUERY_OPS",
]

#: The query operations every serving surface accepts.
QUERY_OPS = ("estimate", "relative", "ranking", "exact")


def parse_vertex(label: str) -> object:
    """Interpret a vertex label as an int when possible, else as a string."""
    try:
        return int(label)
    except ValueError:
        return label


def estimate_payload(
    vertex, result, kernel: Optional[str] = None, kernel_threads: Optional[int] = None
) -> dict:
    """JSON payload of one single-vertex estimate (all serving surfaces)."""
    return {
        "vertex": str(vertex),
        "method": result.method,
        "estimate": result.estimate,
        "samples": result.samples,
        "elapsed_seconds": result.elapsed_seconds,
        "acceptance_rate": result.diagnostics.get("acceptance_rate"),
        **execution_stamp(result.diagnostics, kernel, kernel_threads),
        # Multi-chain extras: null unless the chains/rhat driver ran.
        "converged": result.diagnostics.get("converged"),
    }


def relative_payload(
    estimate, kernel: Optional[str] = None, kernel_threads: Optional[int] = None
) -> dict:
    """JSON payload of one relative-betweenness estimate (all serving surfaces)."""
    return {
        **execution_stamp(estimate.diagnostics, kernel, kernel_threads),
        "reference_set": [str(v) for v in estimate.reference_set],
        "sample_counts": {str(v): c for v, c in estimate.sample_counts.items()},
        "acceptance_rate": estimate.acceptance_rate,
        "ranking": [str(v) for v in estimate.ranking()],
        "relative": {
            str(ri): {str(rj): value for rj, value in row.items()}
            for ri, row in estimate.relative.items()
        },
        "ratios": {f"{ri}/{rj}": value for (ri, rj), value in estimate.ratios.items()},
    }


def execute_query(
    session,
    query: dict,
    default_chains: Optional[int] = None,
    kernel: Optional[str] = None,
    kernel_threads: Optional[int] = None,
) -> dict:
    """Execute one parsed query dictionary against a warm session.

    *session* is a :class:`~repro.centrality.session.BetweennessSession`
    or its :class:`~repro.centrality.session.ThreadSafeSession` wrapper —
    both expose the same query surface.  *default_chains* applies to MCMC
    queries that do not set ``"chains"`` themselves; *kernel* /
    *kernel_threads* are the resolved kernel rung and thread count stamped
    into the payload.
    """
    op = query.get("op", "estimate")
    seed = query.get("seed")
    if op == "estimate":
        method = query.get("method", "mh")
        chains = query.get(
            "chains", default_chains if method in MCMC_SINGLE_METHODS else None
        )
        vertex = parse_vertex(str(query["vertex"]))
        result = session.estimate(
            vertex,
            method=method,
            samples=int(query.get("samples", 200)),
            seed=seed,
            n_chains=chains,
            rhat_target=query.get("rhat"),
        )
        return estimate_payload(
            vertex, result, kernel=kernel, kernel_threads=kernel_threads
        )
    chains = query.get("chains", default_chains)
    if op == "relative":
        vertices = [parse_vertex(str(v)) for v in query["vertices"]]
        estimate = session.relative(
            vertices, samples=int(query.get("samples", 1000)), seed=seed, n_chains=chains
        )
        return relative_payload(estimate, kernel=kernel, kernel_threads=kernel_threads)
    if op == "ranking":
        vertices = query.get("vertices")
        members = (
            [parse_vertex(str(v)) for v in vertices] if vertices is not None else None
        )
        ranked = session.ranking(
            members,
            k=query.get("k"),
            samples=int(query.get("samples", 1000)),
            seed=seed,
            n_chains=chains,
        )
        return {"ranking": [str(v) for v in ranked]}
    if op == "exact":
        vertices = query.get("vertices")
        members = (
            [parse_vertex(str(v)) for v in vertices] if vertices is not None else None
        )
        scores = session.exact(members)
        items = sorted(scores.items(), key=lambda kv: kv[1], reverse=True)
        if query.get("top") is not None:
            items = items[: int(query["top"])]
        return {"scores": {str(v): score for v, score in items}}
    raise ReproError(
        f"unknown query op {op!r}; expected one of {'/'.join(QUERY_OPS)}"
    )
