"""A dependency-free Prometheus-text metrics registry.

The serving daemon exports its observability through the Prometheus text
exposition format (``GET /metrics``), but the library takes no dependency
on ``prometheus_client`` — the subset the daemon needs (labelled counters,
gauges with optional callbacks, cumulative histograms) is small and fully
specified, so it lives here in ~200 lines of stdlib Python.

Contracts the test-suite pins (``tests/test_serving.py``):

* ``render()`` output is well-formed exposition text: every line is a
  ``# HELP`` / ``# TYPE`` comment or a ``name{labels} value`` sample.
* Histogram bucket counts are cumulative and therefore monotone
  non-decreasing in ``le``, ending at the ``+Inf`` bucket == ``_count``.
* Counter samples never decrease across any sequence of operations
  (negative increments are rejected).

All metric operations are thread-safe (one lock per metric), because the
daemon observes them from concurrent handler threads.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds), tuned for a local
#: estimation service: sub-millisecond cache hits up to multi-second
#: exact/MCMC queries.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_sample(
    name: str, labels: Sequence[Tuple[str, str]], value: float
) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label_value(str(val))}"' for key, val in labels
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Metric:
    """Shared plumbing: name/help/labels validation and the child table."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help_text = " ".join(str(help_text).split())
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def _labelvalues(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def header_lines(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def sample_lines(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically non-decreasing sum, optionally labelled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add *amount* (>= 0) to the child selected by *labels*."""
        if amount < 0:
            raise ValueError(f"counters can only increase, got {amount!r}")
        key = self._labelvalues(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of the child selected by *labels* (0 if untouched)."""
        key = self._labelvalues(labels)
        with self._lock:
            return float(self._children.get(key, 0.0))

    def total(self) -> float:
        """Sum over every child (handy for assertions across label sets)."""
        with self._lock:
            return float(sum(self._children.values()))

    def sample_lines(self) -> List[str]:
        with self._lock:
            items = sorted(self._children.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [
            _format_sample(self.name, list(zip(self.labelnames, key)), value)
            for key, value in items
        ]


class Gauge(_Metric):
    """A value that can go up and down; optionally computed at scrape time."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        if fn is not None and labelnames:
            raise ValueError("callback gauges cannot be labelled")
        self._fn = fn

    def set(self, value: float, **labels) -> None:
        key = self._labelvalues(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._labelvalues(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        if self._fn is not None:
            return float(self._fn())
        key = self._labelvalues(labels)
        with self._lock:
            return float(self._children.get(key, 0.0))

    def sample_lines(self) -> List[str]:
        if self._fn is not None:
            try:
                value = float(self._fn())
            except Exception:
                # A scrape must never take the daemon down with it; a
                # broken callback reads as NaN, which Prometheus accepts.
                value = math.nan
            return [_format_sample(self.name, [], value)]
        with self._lock:
            items = sorted(self._children.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [
            _format_sample(self.name, list(zip(self.labelnames, key)), value)
            for key, value in items
        ]


class _HistogramChild:
    __slots__ = ("counts", "total", "count")

    def __init__(self, nbuckets: int) -> None:
        self.counts = [0] * nbuckets
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Cumulative-bucket histogram with quantile estimation.

    Buckets are recorded per-bucket internally and rendered cumulatively
    (the Prometheus ``le`` convention).  :meth:`quantile` interpolates a
    quantile from the bucket boundaries — which is how the daemon exports
    P50/P95 latency gauges without keeping raw samples.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        edges = sorted(float(edge) for edge in buckets)
        if len(set(edges)) != len(edges):
            raise ValueError("histogram bucket edges must be distinct")
        if not edges:
            raise ValueError("histograms need at least one finite bucket")
        self.edges = tuple(edges)

    def _child(self, key: Tuple[str, ...]) -> _HistogramChild:
        child = self._children.get(key)
        if child is None:
            child = _HistogramChild(len(self.edges))
            self._children[key] = child
        return child  # type: ignore[return-value]

    def observe(self, value: float, **labels) -> None:
        """Record one observation."""
        value = float(value)
        key = self._labelvalues(labels)
        with self._lock:
            child = self._child(key)
            child.total += value
            child.count += 1
            for index, edge in enumerate(self.edges):
                if value <= edge:
                    child.counts[index] += 1
                    break

    def count(self, **labels) -> int:
        key = self._labelvalues(labels)
        with self._lock:
            child = self._children.get(key)
            return child.count if child is not None else 0  # type: ignore[union-attr]

    def quantile(self, q: float, **labels) -> Optional[float]:
        """Estimate the *q*-quantile (0..1) by linear bucket interpolation.

        ``None`` with no observations.  Observations beyond the last finite
        bucket edge clamp to that edge (the same information loss any
        Prometheus-side ``histogram_quantile`` has).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        key = self._labelvalues(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None or child.count == 0:
                return None
            counts = list(child.counts)  # type: ignore[union-attr]
            total = child.count  # type: ignore[union-attr]
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                lower = 0.0 if index == 0 else self.edges[index - 1]
                upper = self.edges[index]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.edges[-1]

    def sample_lines(self) -> List[str]:
        with self._lock:
            items = [
                (key, list(child.counts), child.total, child.count)  # type: ignore[union-attr]
                for key, child in sorted(self._children.items())
            ]
        if not items and not self.labelnames:
            items = [((), [0] * len(self.edges), 0.0, 0)]
        lines: List[str] = []
        for key, counts, total, count in items:
            labels = list(zip(self.labelnames, key))
            cumulative = 0
            for edge, bucket_count in zip(self.edges, counts):
                cumulative += bucket_count
                lines.append(
                    _format_sample(
                        f"{self.name}_bucket",
                        labels + [("le", _format_value(edge))],
                        cumulative,
                    )
                )
            lines.append(
                _format_sample(f"{self.name}_bucket", labels + [("le", "+Inf")], count)
            )
            lines.append(_format_sample(f"{self.name}_sum", labels, total))
            lines.append(_format_sample(f"{self.name}_count", labels, count))
        return lines


class MetricsRegistry:
    """An ordered collection of metrics rendering to exposition text."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}

    def register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered with a "
                        f"different type"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Counter:
        return self.register(Counter(name, help_text, labelnames))  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        return self.register(Gauge(name, help_text, labelnames, fn))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self.register(Histogram(name, help_text, labelnames, buckets))  # type: ignore[return-value]

    def metrics(self) -> Iterable[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def render(self) -> str:
        """Render every registered metric as Prometheus exposition text."""
        lines: List[str] = []
        for metric in self.metrics():
            lines.extend(metric.header_lines())
            lines.extend(metric.sample_lines())
        return "\n".join(lines) + "\n"
