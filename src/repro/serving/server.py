"""``repro-bc serve``: the HTTP/JSON daemon over the session registry.

A :class:`ServingApp` is the transport-free core — route dispatch, request
coalescing, admission control, receipts and metrics — and
:func:`create_server` mounts it on a stdlib
:class:`~http.server.ThreadingHTTPServer` (one handler thread per
connection, no new dependencies).  Keeping the core separate from the
socket is what lets the test harness drive fault injection from inside the
process while real clients talk over the wire.

Routes
------
===========================================  =====================================
``GET  /healthz``                            liveness probe
``GET  /metrics``                            Prometheus text exposition
``GET  /graphs``                             list loaded graphs
``PUT  /graphs/<name>``                      load/replace a graph (dataset or edges)
``GET  /graphs/<name>``                      describe one graph
``DELETE /graphs/<name>``                    evict a graph (closes its session)
``POST /graphs/<name>/mutate``               batched edge upserts/removals; the
                                             response carries the invalidation
                                             receipt (rows evicted vs retained,
                                             ``version_changed``)
``POST /graphs/<name>/<op>``                 query: estimate/relative/ranking/exact
===========================================  =====================================

Query semantics
---------------
Query bodies are the ``repro-bc batch`` JSONL objects
(:mod:`repro.serving.queries` is the shared implementation).  Byte-identical
bodies hitting the same graph version **coalesce**: they share one
computation and one rendered response — the response body bytes are
identical by construction, and the ``X-Repro-Coalesced`` header (never the
body) tells a client whether it joined an in-flight run.  Every response
carries a ``receipt`` — graph name, the graph version the answer was
computed against (read atomically with the query under the session lock),
and the execution stamp (backend / jobs / batch size / kernel / kernel
threads / chains) —
so an answer is auditable back to what actually ran.

Overload and deadlines
----------------------
At most ``max_inflight`` distinct computations run at once; an over-limit
request gets ``429`` with a ``Retry-After`` header.  Every request waits on
its computation with ``request_timeout`` seconds; past the deadline the
client gets a structured ``504`` while the computation finishes in the
background (Python cannot kill a thread — the daemon promises to never
hang a client, not to abort an estimator mid-pass; the finished result
still warms the session's caches).
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.execution import ExecutionPlan, resolve_kernel_threads
from repro.execution.stamp import EXECUTION_STAMP_KEYS, execution_stamp, resolve_kernel_quiet
from repro.graphs.core import Graph
from repro.graphs.csr import resolve_backend
from repro.serving.coalesce import CoalesceTimeout, OverloadedError, RequestCoalescer
from repro.serving.metrics import MetricsRegistry
from repro.serving.queries import QUERY_OPS, execute_query
from repro.serving.registry import GraphNotLoaded, RegistryFull, SessionRegistry

__all__ = [
    "ServingConfig",
    "ServingApp",
    "Response",
    "BetweennessHTTPServer",
    "create_server",
]


@dataclasses.dataclass
class ServingConfig:
    """Daemon knobs (the ``repro-bc serve`` flags map onto these)."""

    #: Upper bound on concurrently running distinct computations
    #: (``None`` = unbounded); exceeding it answers 429.
    max_inflight: Optional[int] = 16
    #: Per-request wait deadline in seconds (``None`` = wait forever).
    request_timeout: Optional[float] = 60.0
    #: Retry hint (seconds) on 429 responses.
    retry_after: float = 1.0
    #: Default chain count applied to MCMC queries without ``"chains"``.
    default_chains: Optional[int] = None
    #: Bound on simultaneously loaded graphs.
    max_sessions: int = 8
    #: Traversal backend sessions run when no plan is given.
    backend: str = "auto"
    #: CSR kernel rung requested (resolved once, stamped in receipts).
    kernel: str = "auto"
    #: Compiled-kernel thread count (``None`` resolves from
    #: ``REPRO_KERNEL_THREADS``; result-neutral, stamped in receipts).
    kernel_threads: Optional[int] = None
    #: Rows of each session's persistent dependency arena.
    arena_capacity: Optional[int] = None
    #: Mutation invalidation scoping: ``None`` resolves from
    #: ``REPRO_INVALIDATION`` (default ``"delta"``); ``"full"`` forces the
    #: legacy destroy-everything path.
    invalidation: Optional[str] = None
    #: Verify connectivity on load and after mutation.
    check_connected: bool = True


@dataclasses.dataclass
class Response:
    """One dispatched response: status, JSON/text body bytes, extra headers."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = ()


def _json_response(status: int, payload: dict, headers: Tuple[Tuple[str, str], ...] = ()) -> Response:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return Response(status, body, "application/json", headers)


def _error_response(
    status: int,
    error_type: str,
    message: str,
    headers: Tuple[Tuple[str, str], ...] = (),
    **extra,
) -> Response:
    payload = {"error": {"type": error_type, "message": message, **extra}}
    return _json_response(status, payload, headers)


class ServingApp:
    """Transport-free daemon core: registry + coalescer + metrics + routes."""

    def __init__(
        self,
        *,
        plan: Optional[ExecutionPlan] = None,
        config: Optional[ServingConfig] = None,
        registry: Optional[SessionRegistry] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ServingConfig()
        self.plan = plan
        self.registry = (
            registry
            if registry is not None
            else SessionRegistry(
                plan=plan,
                backend=self.config.backend,
                arena_capacity=self.config.arena_capacity,
                invalidation=self.config.invalidation,
                check_connected=self.config.check_connected,
                max_sessions=self.config.max_sessions,
            )
        )
        self.coalescer = RequestCoalescer(
            self.config.max_inflight, self.config.retry_after
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._kernel = resolve_kernel_quiet(self.config.kernel)
        self._kernel_threads = resolve_kernel_threads(self.config.kernel_threads)
        self.started_at = time.time()
        #: Fault-injection / test hook: called (with the coalesce key) at
        #: the start of every computation, on the computation thread.  The
        #: concurrency harness uses it to hold a coalesce window open; the
        #: fault tests use it to kill pools mid-request.
        self.before_compute = None
        self._passes_lock = threading.Lock()
        self._passes_seen: Dict[str, int] = {}
        self._build_metrics()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _build_metrics(self) -> None:
        m = self.metrics
        self.requests_total = m.counter(
            "repro_requests_total",
            "HTTP requests handled, by endpoint and status code.",
            ("endpoint", "status"),
        )
        self.request_seconds = m.histogram(
            "repro_request_seconds",
            "End-to-end request latency in seconds (all endpoints).",
        )
        m.gauge(
            "repro_request_latency_p50_seconds",
            "Estimated median request latency (bucket interpolation).",
            fn=lambda: self.request_seconds.quantile(0.50) or 0.0,
        )
        m.gauge(
            "repro_request_latency_p95_seconds",
            "Estimated P95 request latency (bucket interpolation).",
            fn=lambda: self.request_seconds.quantile(0.95) or 0.0,
        )
        self.coalesce_hits = m.counter(
            "repro_coalesce_hits_total",
            "Query requests that joined an identical in-flight computation.",
        )
        self.coalesce_misses = m.counter(
            "repro_coalesce_misses_total",
            "Query requests that started a fresh computation.",
        )
        self.admission_rejections = m.counter(
            "repro_admission_rejections_total",
            "Requests refused by the in-flight admission bound (HTTP 429).",
        )
        self.request_timeouts = m.counter(
            "repro_request_timeouts_total",
            "Requests whose wait deadline expired (HTTP 504).",
        )
        m.gauge(
            "repro_inflight_computations",
            "Distinct query computations currently running.",
            fn=self.coalescer.inflight_count,
        )
        m.gauge(
            "repro_sessions",
            "Graphs currently loaded in the session registry.",
            fn=lambda: float(len(self.registry)),
        )
        self.brandes_passes = m.counter(
            "repro_brandes_passes_total",
            "Brandes passes performed by warm sessions, by graph "
            "(delta-accumulated from ExecutionContext.stats, so the series "
            "stays monotone across graph reloads).",
            ("graph",),
        )
        self.arena_rows = m.gauge(
            "repro_arena_rows_published",
            "Dependency-arena rows published, by graph.",
            ("graph",),
        )
        self.arena_occupancy = m.gauge(
            "repro_arena_occupancy",
            "Dependency-arena fill fraction (published / capacity), by graph.",
            ("graph",),
        )
        self.invalidations = m.counter(
            "repro_invalidations_total",
            "Warm-state invalidations applied by mutate requests, by graph "
            'and mode ("noop" idempotent, "delta" affected-region scoped, '
            '"full" destroy-everything).',
            ("graph", "mode"),
        )
        self.invalidation_rows_evicted = m.counter(
            "repro_invalidation_arena_rows_evicted_total",
            "Dependency-arena rows tombstoned by delta-scoped invalidations, "
            "by graph.",
            ("graph",),
        )
        self.invalidation_rows_retained = m.gauge(
            "repro_invalidation_arena_rows_retained",
            "Arena rows that survived the most recent mutation of each graph "
            "(0 after a full invalidation).",
            ("graph",),
        )
        self.invalidation_sources_affected = m.gauge(
            "repro_invalidation_sources_affected",
            "Affected-source count of the most recent delta-scoped "
            "invalidation, by graph.",
            ("graph",),
        )
        self.invalidation_oracle_retained = m.gauge(
            "repro_invalidation_oracle_vectors_retained",
            "Warm oracle vectors that survived the most recent mutation of "
            "each graph.",
            ("graph",),
        )
        self.invalidation_rows_compacted = m.counter(
            "repro_invalidation_arena_rows_compacted_total",
            "Tombstoned dependency-arena rows whose capacity was reclaimed "
            "by compaction during delta-scoped invalidations, by graph.",
            ("graph",),
        )

    def _observe_session(self, name: str, stats: Dict[str, object]) -> None:
        """Fold one session-stats snapshot into the exported metrics."""
        passes = int(stats.get("brandes_passes", 0) or 0)
        with self._passes_lock:
            seen = self._passes_seen.get(name, 0)
            delta = passes - seen
            if delta > 0:
                self._passes_seen[name] = passes
        if delta > 0:
            self.brandes_passes.inc(delta, graph=name)
        context = stats.get("context") or {}
        arena = context.get("arena")
        if arena:
            self.arena_rows.set(arena.get("published", 0), graph=name)
        occupancy = context.get("arena_occupancy")
        if occupancy is not None:
            self.arena_occupancy.set(occupancy, graph=name)

    def _forget_session(self, name: str) -> None:
        with self._passes_lock:
            self._passes_seen.pop(name, None)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, method: str, path: str, body: bytes = b"") -> Response:
        """Route one request; always returns a structured :class:`Response`."""
        start = time.perf_counter()
        endpoint, handler = self._route(method, path.rstrip("/") or "/")
        try:
            if handler is None:
                response = _error_response(
                    404, "not_found", f"no route for {method} {path}"
                )
            else:
                response = handler(body)
        except OverloadedError as exc:
            self.admission_rejections.inc()
            response = _error_response(
                429,
                "overloaded",
                str(exc),
                headers=(("Retry-After", f"{exc.retry_after:g}"),),
                retry_after=exc.retry_after,
            )
        except CoalesceTimeout as exc:
            self.request_timeouts.inc()
            response = _error_response(504, "timeout", str(exc), timeout=exc.timeout)
        except GraphNotLoaded as exc:
            response = _error_response(404, "graph_not_loaded", str(exc))
        except RegistryFull as exc:
            response = _error_response(409, "registry_full", str(exc))
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            response = _error_response(
                400, "bad_request", str(exc) or type(exc).__name__
            )
        except Exception as exc:  # noqa: BLE001 - the daemon must answer
            response = _error_response(
                500, "internal", f"{type(exc).__name__}: {exc}"
            )
        elapsed = time.perf_counter() - start
        self.request_seconds.observe(elapsed)
        self.requests_total.inc(endpoint=endpoint, status=str(response.status))
        return response

    def _route(self, method: str, path: str):
        """Resolve ``(endpoint label, handler)`` for one request line."""
        if path == "/healthz" and method == "GET":
            return "healthz", lambda body: self._handle_health()
        if path == "/metrics" and method == "GET":
            return "metrics", lambda body: self._handle_metrics()
        if path == "/graphs" and method == "GET":
            return "graphs", lambda body: self._handle_list()
        if path.startswith("/graphs/"):
            parts = [part for part in path.split("/") if part]
            if len(parts) == 2:
                name = parts[1]
                if method in ("PUT", "POST"):
                    return "load", lambda body: self._handle_load(name, body)
                if method == "GET":
                    return "describe", lambda body: self._handle_describe(name)
                if method == "DELETE":
                    return "evict", lambda body: self._handle_evict(name)
            elif len(parts) == 3 and method == "POST":
                name, op = parts[1], parts[2]
                if op == "mutate":
                    return "mutate", lambda body: self._handle_mutate(name, body)
                if op in QUERY_OPS:
                    return op, lambda body: self._handle_query(name, op, body)
        return method.lower(), None

    # ------------------------------------------------------------------
    # Lifecycle endpoints
    # ------------------------------------------------------------------
    def _handle_health(self) -> Response:
        return _json_response(
            200,
            {
                "status": "ok",
                "graphs": self.registry.names(),
                "uptime_seconds": time.time() - self.started_at,
            },
        )

    def _handle_metrics(self) -> Response:
        return Response(
            200,
            self.metrics.render().encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _handle_list(self) -> Response:
        return _json_response(200, {"graphs": self.registry.describe_all()})

    def _parse_body(self, body: bytes) -> dict:
        if not body:
            return {}
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(f"request body is not valid JSON: {exc}")
        if not isinstance(parsed, dict):
            raise ReproError("request body must be a JSON object")
        return parsed

    def _handle_load(self, name: str, body: bytes) -> Response:
        spec = self._parse_body(body)
        graph = self._build_graph(spec)
        entry = self.registry.load(name, graph)
        self._forget_session(name)
        return _json_response(200, {"loaded": entry.describe()})

    def _build_graph(self, spec: dict) -> Graph:
        """Materialise a graph from a load-request body."""
        if ("dataset" in spec) == ("edges" in spec):
            raise ReproError(
                'a load request names exactly one graph source: {"dataset": ...}'
                ' or {"edges": [[u, v], ...]}'
            )
        if "dataset" in spec:
            from repro.datasets.registry import load_dataset

            return load_dataset(
                str(spec["dataset"]),
                size=str(spec.get("size", "small")),
                seed=spec.get("seed", 0),
            )
        edges = spec["edges"]
        if not isinstance(edges, list) or not edges:
            raise ReproError('"edges" must be a non-empty list of [u, v(, w)] pairs')
        weighted = bool(spec.get("weighted", any(len(edge) == 3 for edge in edges)))
        return Graph.from_edges(
            [tuple(edge) for edge in edges],
            directed=bool(spec.get("directed", False)),
            weighted=weighted,
        )

    def _handle_describe(self, name: str) -> Response:
        return _json_response(200, self.registry.get(name).describe())

    def _handle_evict(self, name: str) -> Response:
        summary = self.registry.evict(name)
        self._forget_session(name)
        return _json_response(200, {"evicted": summary})

    def _handle_mutate(self, name: str, body: bytes) -> Response:
        spec = self._parse_body(body)
        add_edges = spec.get("add_edges", [])
        remove_edges = spec.get("remove_edges", [])
        if not isinstance(add_edges, list) or not isinstance(remove_edges, list):
            raise ReproError('"add_edges" / "remove_edges" must be lists of pairs')
        if not add_edges and not remove_edges:
            raise ReproError("a mutation names at least one edge to add or remove")
        entry = self.registry.get(name)
        summary = entry.mutate(add_edges=add_edges, remove_edges=remove_edges)
        receipt = summary.get("invalidation") or {}
        mode = str(receipt.get("mode", "full"))
        self.invalidations.inc(graph=name, mode=mode)
        if mode != "noop":
            self.invalidation_rows_evicted.inc(
                int(receipt.get("arena_rows_evicted", 0) or 0), graph=name
            )
            self.invalidation_rows_retained.set(
                int(receipt.get("arena_rows_retained", 0) or 0), graph=name
            )
            self.invalidation_sources_affected.set(
                int(receipt.get("affected_sources", 0) or 0), graph=name
            )
            self.invalidation_oracle_retained.set(
                int(receipt.get("oracle_vectors_retained", 0) or 0), graph=name
            )
            self.invalidation_rows_compacted.inc(
                int(receipt.get("arena_rows_compacted", 0) or 0), graph=name
            )
        return _json_response(200, {"mutated": summary})

    # ------------------------------------------------------------------
    # Query endpoint
    # ------------------------------------------------------------------
    def _handle_query(self, name: str, op: str, body: bytes) -> Response:
        query = self._parse_body(body)
        if "op" in query and query["op"] != op:
            raise ReproError(
                f'the query body says op {query["op"]!r} but was posted to '
                f"the {op!r} endpoint"
            )
        entry = self.registry.get(name)
        # The coalesce key: byte-identical bodies against the same graph
        # version share one computation.  The version in the key gates
        # cross-mutation sharing; the receipt's version is read under the
        # session lock below and is authoritative.
        key = (name, entry.version, op, bytes(body))

        def compute() -> bytes:
            if self.before_compute is not None:
                self.before_compute(key)
            started = time.perf_counter()
            with entry.session.lock:
                payload = execute_query(
                    entry.session,
                    dict(query, op=op),
                    default_chains=self.config.default_chains,
                    kernel=self._kernel,
                    kernel_threads=self._kernel_threads,
                )
                version = entry.version
            stats = entry.stats()
            self._observe_session(name, stats)
            record = {
                "op": op,
                **payload,
                "receipt": self._receipt(
                    name, op, version, payload, time.perf_counter() - started
                ),
            }
            return json.dumps(record, sort_keys=True).encode("utf-8")

        rendered, coalesced = self.coalescer.execute(
            key, compute, timeout=self.config.request_timeout
        )
        if coalesced:
            self.coalesce_hits.inc()
        else:
            self.coalesce_misses.inc()
        return Response(
            200,
            rendered,
            "application/json",
            (("X-Repro-Coalesced", "1" if coalesced else "0"),),
        )

    def _receipt(
        self, name: str, op: str, version: int, payload: dict, elapsed: float
    ) -> dict:
        """The per-response audit receipt.

        Execution stamps come from the payload when the estimator reported
        diagnostics (estimate / relative), else from the registry's plan —
        either way every receipt carries the full
        :data:`~repro.execution.stamp.EXECUTION_STAMP_KEYS` set.
        """
        if all(key in payload for key in ("backend", "jobs", "kernel")):
            stamp = {key: payload.get(key) for key in EXECUTION_STAMP_KEYS}
        else:
            plan = self.plan
            stamp = execution_stamp(
                {
                    "backend": resolve_backend(
                        plan.backend if plan is not None else self.config.backend
                    ),
                    "n_jobs": plan.n_jobs if plan is not None else None,
                    "batch_size": plan.batch_size if plan is not None else None,
                },
                kernel=self._kernel,
                kernel_threads=self._kernel_threads,
            )
        return {
            "graph": name,
            "graph_version": version,
            "op": op,
            "server_seconds": elapsed,
            **stamp,
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every session (idempotent)."""
        self.registry.close()


class BetweennessHTTPServer(ThreadingHTTPServer):
    """The daemon socket: one handler thread per connection, app attached."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app: ServingApp) -> None:
        super().__init__(address, _Handler)
        self.app = app

    def close(self) -> None:
        """Stop serving and release every session."""
        self.shutdown()
        self.server_close()
        self.app.close()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-bc-serve"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request accounting lives in /metrics, not on stderr

    def _dispatch(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        response = self.server.app.dispatch(self.command, self.path, body)
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for key, value in response.headers:
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(response.body)

    do_GET = do_POST = do_PUT = do_DELETE = _dispatch


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    plan: Optional[ExecutionPlan] = None,
    config: Optional[ServingConfig] = None,
    app: Optional[ServingApp] = None,
) -> BetweennessHTTPServer:
    """Build a daemon on ``(host, port)`` (port 0 = ephemeral, for tests).

    Call ``serve_forever()`` on the result (typically from a thread or a
    CLI entry point) and ``close()`` to tear it down.
    """
    if app is None:
        app = ServingApp(plan=plan, config=config)
    elif plan is not None or config is not None:
        raise ConfigurationError(
            "pass either a ready ServingApp or plan/config, not both"
        )
    return BetweennessHTTPServer((host, port), app)
