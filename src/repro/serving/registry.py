"""The daemon's session registry: many named graphs, one warm session each.

One :class:`SessionRegistry` owns every graph the daemon serves.  Each
entry (:class:`ManagedSession`) pairs a mutable
:class:`~repro.graphs.core.Graph` with a
:class:`~repro.centrality.session.ThreadSafeSession` wrapping the warm
:class:`~repro.centrality.session.BetweennessSession`, so

* loading a graph pays session cold-start once, and every later query
  against that name is warm (persistent pool, arena, oracles);
* mutating a graph goes through the session's lock
  (:meth:`ManagedSession.mutate`) as one batched journal window, and the
  warm state is re-synced eagerly — delta-scoped when the journal proves
  an affected region — so the mutate response itself carries the
  invalidation receipt and a query can never see a stale version;
* evicting (or replacing) a name closes its session, releasing worker
  processes and shared-memory segments.

The registry itself is thread-safe: load/evict/lookup race freely with
queries from the daemon's handler threads.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.centrality.session import BetweennessSession, ThreadSafeSession
from repro.errors import ConfigurationError, ReproError
from repro.execution import ExecutionPlan
from repro.graphs.core import Graph

__all__ = ["GraphNotLoaded", "RegistryFull", "ManagedSession", "SessionRegistry"]


class GraphNotLoaded(ReproError):
    """A query or lifecycle call named a graph the registry does not hold."""

    def __init__(self, name: str, known: Sequence[str]) -> None:
        loaded = ", ".join(sorted(known)) if known else "none"
        super().__init__(f"graph {name!r} is not loaded (loaded: {loaded})")
        self.name = name


class RegistryFull(ReproError):
    """Loading one more graph would exceed the registry's session bound."""

    def __init__(self, limit: int) -> None:
        super().__init__(
            f"session registry is full ({limit} graphs loaded); evict one "
            "before loading another"
        )
        self.limit = limit


class ManagedSession:
    """One named graph plus its thread-safe warm session."""

    def __init__(
        self,
        name: str,
        graph: Graph,
        *,
        plan: Optional[ExecutionPlan] = None,
        backend: str = "auto",
        arena_capacity: Optional[int] = None,
        invalidation: Optional[str] = None,
        check_connected: bool = True,
    ) -> None:
        self.name = name
        self.graph = graph
        self.session = ThreadSafeSession(
            BetweennessSession(
                graph,
                plan,
                backend=backend,
                arena_capacity=arena_capacity,
                invalidation=invalidation,
                check_connected=check_connected,
            )
        )
        self.created_at = time.time()

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The graph's current mutation-counter version."""
        return self.graph.version

    def mutate(
        self,
        add_edges: Sequence[Sequence[object]] = (),
        remove_edges: Sequence[Sequence[object]] = (),
    ) -> Dict[str, object]:
        """Apply edge upserts/removals under the session lock.

        Each *add_edges* element is ``(u, v)`` or ``(u, v, weight)``; each
        *remove_edges* element is ``(u, v)``.  The whole request is one
        :meth:`~repro.graphs.core.Graph.batch_mutations` window — one
        journal entry, at most one version bump — and the session's warm
        state is re-synced eagerly, so the returned summary carries the
        invalidation receipt: ``version_changed`` is ``False`` when every
        op no-opped (clients and the coalescer keep their warm keys), and
        ``invalidation`` itemises what was evicted versus retained.
        """
        old_version = self.graph.version

        def apply(graph: Graph) -> None:
            with graph.batch_mutations():
                for edge in add_edges:
                    if len(edge) == 2:
                        graph.add_edge(edge[0], edge[1])
                    elif len(edge) == 3:
                        graph.add_edge(edge[0], edge[1], weight=float(edge[2]))
                    else:
                        raise ReproError(
                            f"each added edge must be (u, v) or (u, v, weight), "
                            f"got {list(edge)!r}"
                        )
                for edge in remove_edges:
                    if len(edge) != 2:
                        raise ReproError(
                            f"each removed edge must be (u, v), got {list(edge)!r}"
                        )
                    graph.remove_edge(edge[0], edge[1])

        receipt = self.session.mutate(apply)
        return {
            "graph": self.name,
            "old_version": old_version,
            "graph_version": self.graph.version,
            "version_changed": receipt.version_changed,
            "edges_added": len(add_edges),
            "edges_removed": len(remove_edges),
            "invalidation": receipt.as_dict(),
        }

    def describe(self) -> Dict[str, object]:
        """A lifecycle summary (the ``GET /graphs`` row)."""
        stats = self.session.stats()
        return {
            "graph": self.name,
            "vertices": self.graph.number_of_vertices(),
            "edges": self.graph.number_of_edges(),
            "directed": self.graph.directed,
            "weighted": self.graph.weighted,
            "graph_version": self.graph.version,
            "queries": stats["queries"],
            "brandes_passes": stats["brandes_passes"],
            "arena": stats["context"]["arena"],
            "created_at": self.created_at,
        }

    def stats(self) -> Dict[str, object]:
        """The wrapped session's stats (locked read)."""
        return self.session.stats()

    def close(self) -> None:
        self.session.close()


class SessionRegistry:
    """Thread-safe name → :class:`ManagedSession` table with a size bound.

    Parameters
    ----------
    plan:
        Default :class:`~repro.execution.ExecutionPlan` every loaded
        session runs under (per-load overrides may replace it later).
    backend / arena_capacity / invalidation / check_connected:
        Forwarded to each :class:`BetweennessSession`.
    max_sessions:
        Hard bound on simultaneously loaded graphs — each session owns
        worker processes and shared-memory segments, so the bound is a
        resource cap, not a cache size.  Exceeding it raises
        :class:`RegistryFull` (HTTP 409 upstream); eviction is explicit.
    """

    def __init__(
        self,
        *,
        plan: Optional[ExecutionPlan] = None,
        backend: str = "auto",
        arena_capacity: Optional[int] = None,
        invalidation: Optional[str] = None,
        check_connected: bool = True,
        max_sessions: int = 8,
    ) -> None:
        if max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {max_sessions!r}"
            )
        self._plan = plan
        self._backend = backend
        self._arena_capacity = arena_capacity
        self._invalidation = invalidation
        self._check_connected = check_connected
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._sessions: Dict[str, ManagedSession] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def get(self, name: str) -> ManagedSession:
        """Look up a loaded graph; :class:`GraphNotLoaded` otherwise."""
        with self._lock:
            self._require_open()
            entry = self._sessions.get(name)
            if entry is None:
                raise GraphNotLoaded(name, list(self._sessions))
            return entry

    def load(self, name: str, graph: Graph) -> ManagedSession:
        """Load (or replace) *name* with a warm session over *graph*.

        Replacement closes the old session after the new one is up — a
        failed load (disconnected graph, bad plan) leaves the existing
        entry serving untouched.
        """
        if not name or "/" in name:
            raise ReproError(
                f"graph names must be non-empty and slash-free, got {name!r}"
            )
        with self._lock:
            self._require_open()
            replacing = self._sessions.get(name)
            if replacing is None and len(self._sessions) >= self.max_sessions:
                raise RegistryFull(self.max_sessions)
        entry = ManagedSession(
            name,
            graph,
            plan=self._plan,
            backend=self._backend,
            arena_capacity=self._arena_capacity,
            invalidation=self._invalidation,
            check_connected=self._check_connected,
        )
        with self._lock:
            self._require_open()
            replaced = self._sessions.get(name)
            self._sessions[name] = entry
        if replaced is not None:
            replaced.close()
        return entry

    def evict(self, name: str) -> Dict[str, object]:
        """Close and drop *name*; :class:`GraphNotLoaded` when absent."""
        with self._lock:
            self._require_open()
            entry = self._sessions.pop(name, None)
        if entry is None:
            raise GraphNotLoaded(name, self.names())
        summary = {
            "graph": name,
            "graph_version": entry.version,
            "queries": entry.stats()["queries"],
        }
        entry.close()
        return summary

    def describe_all(self) -> List[Dict[str, object]]:
        with self._lock:
            entries = list(self._sessions.values())
        return [entry.describe() for entry in sorted(entries, key=lambda e: e.name)]

    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise ConfigurationError("the session registry has been closed")

    def close(self) -> None:
        """Close every session (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._sessions.values())
            self._sessions.clear()
        for entry in entries:
            entry.close()

    def __enter__(self) -> "SessionRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
