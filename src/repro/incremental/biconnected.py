"""Articulation points and bridges over a CSR snapshot (iterative Tarjan).

The structural side of incremental betweenness maintenance (iCentral and
its family reason about the biconnected component containing a mutated
edge).  For *per-source dependency vectors* — this library's unit of warm
state — biconnected containment alone is not a sound retention bound (see
:mod:`repro.incremental.affected`), so these routines serve as receipt
diagnostics (was the touched edge a bridge?) and as an independent
structural check in the property tests, not as the eviction rule.

Both routines run one iterative lowlink DFS over the CSR arrays — no
recursion, so deep path graphs cannot blow the Python stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Set, Tuple

try:  # pragma: no cover - exercised implicitly on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.errors import ConfigurationError, GraphStructureError

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.csr import CSRGraph

__all__ = ["articulation_points", "bridges"]


def _lowlink(csr: "CSRGraph") -> Tuple["np.ndarray", "np.ndarray", "np.ndarray", Set[int], Set[FrozenSet[int]]]:
    """One DFS computing discovery/lowlink arrays, articulation set and bridges."""
    if np is None:
        raise ConfigurationError(
            "biconnected analysis requires numpy, which is not installed"
        )
    if csr.directed:
        raise GraphStructureError("biconnected analysis requires an undirected graph")
    n = csr.number_of_vertices()
    disc = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    aps: Set[int] = set()
    bridge_set: Set[FrozenSet[int]] = set()
    indptr, indices = csr.indptr, csr.indices
    timer = 0
    for root in range(n):
        if disc[root] != -1:
            continue
        root_children = 0
        # Stack frames: (vertex, next edge-pointer into indices).
        disc[root] = low[root] = timer
        timer += 1
        stack = [(root, int(indptr[root]))]
        while stack:
            v, ptr = stack[-1]
            if ptr < int(indptr[v + 1]):
                stack[-1] = (v, ptr + 1)
                w = int(indices[ptr])
                if disc[w] == -1:
                    parent[w] = v
                    if v == root:
                        root_children += 1
                    disc[w] = low[w] = timer
                    timer += 1
                    stack.append((w, int(indptr[w])))
                elif w != parent[v]:
                    # Back edge (simple graph: the single parent entry is
                    # the tree edge, every other occurrence is a cycle).
                    if disc[w] < low[v]:
                        low[v] = disc[w]
            else:
                stack.pop()
                if stack:
                    u = stack[-1][0]
                    if low[v] < low[u]:
                        low[u] = low[v]
                    if low[v] > disc[u]:
                        bridge_set.add(frozenset((u, v)))
                    if u != root and low[v] >= disc[u]:
                        aps.add(u)
        if root_children > 1:
            aps.add(root)
    return disc, low, parent, aps, bridge_set


def articulation_points(csr: "CSRGraph") -> "np.ndarray":
    """Return a boolean per-index mask of the articulation points of *csr*."""
    n = csr.number_of_vertices()
    _, _, _, aps, _ = _lowlink(csr)
    mask = np.zeros(n, dtype=bool)
    for v in aps:
        mask[v] = True
    return mask


def bridges(csr: "CSRGraph") -> Set[FrozenSet[int]]:
    """Return the bridge edges of *csr* as a set of frozen index pairs."""
    _, _, _, _, bridge_set = _lowlink(csr)
    return bridge_set
