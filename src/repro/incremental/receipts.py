"""The invalidation receipt every mutation-consuming layer emits.

One mutable record threads through the whole invalidation path: the
execution runtime fills in the arena accounting, the session adds oracle
and chain retention, and the serving tier serialises the result into the
mutate response and the ``/metrics`` exposition.  A single shape keeps
the three surfaces from inventing divergent vocabularies for "what was
evicted, what survived, and why".
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

__all__ = ["InvalidationReceipt"]


@dataclass
class InvalidationReceipt:
    """What one graph-change invalidation actually did.

    ``mode`` is ``"noop"`` (nothing changed — the idempotent-mutate case),
    ``"delta"`` (journal consumed, affected region evicted, the rest
    retained) or ``"full"`` (the legacy destroy-everything path;
    ``reason`` names why delta scoping was not possible).
    """

    mode: str
    version_from: int
    version_to: int
    reason: Optional[str] = None
    affected_sources: Optional[int] = None
    total_sources: Optional[int] = None
    arena_rows_evicted: int = 0
    arena_rows_retained: int = 0
    #: Tombstoned rows whose arena space this invalidation reclaimed (the
    #: runtime compacts once eviction has spent over half the capacity).
    arena_rows_compacted: int = 0
    payload_entries_evicted: int = 0
    oracle_vectors_evicted: int = 0
    oracle_vectors_retained: int = 0
    chains_continued: int = 0
    chains_restarted: int = 0
    touched_endpoints: int = 0

    @property
    def version_changed(self) -> bool:
        """Whether the mutation actually advanced the graph version."""
        return self.version_from != self.version_to

    def as_dict(self) -> dict:
        """Serialise for JSON surfaces (adds the derived ``version_changed``)."""
        payload = asdict(self)
        payload["version_changed"] = self.version_changed
        return payload
