"""Affected-source detection: which per-source rows can a mutation change?

The unit of warm state everywhere in this library is the *per-source
dependency vector* ``delta_s(.)`` (one Brandes pass from source ``s``).
After a mutation, a cached vector for ``s`` may be retained exactly when
the whole single-source shortest-path structure from ``s`` — distances,
path counts and the DAG — is unchanged, because then the kernels replay
the identical float operations and the vector is bit-identical to a cold
recompute.

The detection rule
------------------
For every touched endpoint pair ``(u, v)`` (the endpoints of each edge
the journal recorded), flag every source ``s`` with
``d(s, u) != d(s, v)`` on the **post-mutation** graph.  The union over
all touched pairs is the affected region; everything else is provably
retained:

* *Insertion* of ``(u, v)``: a strictly shorter ``s``-path must cross the
  new edge, so its prefix gives ``d(s, v) = d(s, u) + 1`` (or vice
  versa); equal distances rule that out.  The new edge also never joins
  the DAG of an unflagged source (a DAG edge needs
  ``d(s, v) = d(s, u) + 1``), so path counts and accumulation order are
  untouched.
* *Removal* of ``(u, v)``: the first removed edge on a lost shortest path
  would exhibit ``d(s, u) != d(s, v)`` on the new graph; unflagged
  sources keep every old shortest path, and the removed edge was never in
  their DAG (same equal-distance argument on the old graph, whose
  distances coincide with the new ones for unflagged sources).
* *Composites* (one journal window with several deltas): reorder as
  removals-then-insertions; the same first-changed-edge arguments apply
  pairwise on the final graph, so testing every touched pair on the final
  snapshot covers the whole window.

``inf == inf`` counts as equal — a source that cannot reach either
endpoint in the final graph is unaffected by that pair — which also makes
connected-component containment a corollary of the rule.

Why this instead of biconnected-component containment: iCentral's BCC
argument bounds *pair-dependency* changes for the aggregate BC score, but
per-source dependency *vectors* of sources outside the mutated BCC do
change whenever distances through an articulation point shift, so raw BCC
containment would under-approximate — the one direction the contract
forbids.  The distance rule is strictly tighter and costs one BFS per
unique touched endpoint.  :mod:`repro.incremental.biconnected` keeps the
structural machinery for diagnostics and for independent superset checks
in the test-suite.

Weighted graphs: float distance *equality* is only provably conservative
for the integral BFS metric, so weighted windows use a different rule.
Weight-only windows (every record is ``weight-changed``) run the
edge-tightness test of :func:`_weight_only_region` over per-endpoint
Dijkstra distances — a source is flagged when the mutated edge is tight
or improving from it under either the old or the new weight, within the
kernel tie tolerance widened by :data:`_TIE_SAFETY`.  Weighted windows
containing *structural* records (edge additions/removals) keep the full
fallback: the tightness argument needs the mutated edge present in both
snapshots.

Safe fallbacks (``AffectedRegion.everything``): vertex additions or
removals (the CSR index space itself changes), directed graphs, weighted
windows with structural edge records (see above), weight records missing
either weight, journal overflow and over-budget endpoint sets.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Tuple

from repro.errors import ConfigurationError

try:  # pragma: no cover - exercised implicitly on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.core import GraphDelta
    from repro.graphs.csr import CSRGraph

__all__ = [
    "AffectedRegion",
    "affected_sources",
    "resolve_invalidation",
    "DEFAULT_MAX_BFS",
    "INVALIDATION_MODES",
]

#: Default cap on the number of traversal passes (BFS unweighted,
#: Dijkstra weighted) :func:`affected_sources` will spend before declaring
#: the detection over budget and falling back to
#: full invalidation (one pass per unique touched endpoint; a Brandes
#: recompute of a single retained row already costs a few passes, so a
#: large touched set quickly stops being worth scoping).
DEFAULT_MAX_BFS = 32

#: Accepted values of the invalidation-mode knob: ``"delta"`` consumes the
#: change journal and retains unaffected warm state, ``"full"`` keeps the
#: legacy destroy-everything protocol (the benchmark baseline).
INVALIDATION_MODES = ("delta", "full")


def resolve_invalidation(mode: Optional[str] = None) -> str:
    """Resolve the invalidation-mode knob to ``"delta"`` or ``"full"``.

    Explicit arguments win; otherwise the ``REPRO_INVALIDATION``
    environment variable decides, defaulting to ``"delta"``.  The twin of
    :func:`repro.graphs.csr.resolve_backend` for the mutation path — the
    two modes are result-identical by the over-approximation contract, so
    the knob can only change wall-clock and eviction accounting.
    """
    if mode is None:
        mode = os.environ.get("REPRO_INVALIDATION") or "delta"
    if mode not in INVALIDATION_MODES:
        raise ConfigurationError(
            f"unknown invalidation mode {mode!r}; expected one of {INVALIDATION_MODES}"
        )
    return mode


@dataclass
class AffectedRegion:
    """The outcome of affected-source detection for one journal window.

    ``mask`` is a boolean per-source-index array over the post-mutation
    snapshot (``True`` = the cached row for that source must be evicted),
    or ``None`` when detection fell back to "everything changed" —
    ``reason`` then names why.  ``endpoints`` records the unique touched
    endpoint indices the BFS passes ran from (receipt diagnostics).
    """

    mask: Optional["np.ndarray"]
    reason: Optional[str] = None
    endpoints: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def everything(self) -> bool:
        """Whether detection fell back to full invalidation."""
        return self.mask is None

    def count(self) -> Optional[int]:
        """Number of affected sources, or ``None`` on full fallback."""
        return None if self.mask is None else int(self.mask.sum())

    def indices(self) -> "np.ndarray":
        """The affected source indices (requires a concrete mask)."""
        if self.mask is None:
            raise ValueError("full-fallback region has no index set")
        return np.nonzero(self.mask)[0]


def _everything(reason: str) -> AffectedRegion:
    return AffectedRegion(mask=None, reason=reason)


def affected_sources(
    csr: "CSRGraph",
    deltas: Optional[Iterable["GraphDelta"]],
    *,
    max_bfs: int = DEFAULT_MAX_BFS,
) -> AffectedRegion:
    """Compute the affected-source region of a journal window.

    *csr* is the **post-mutation** snapshot; *deltas* the journal records
    since the consumer's stamped version (``None`` signals journal
    overflow).  Returns an :class:`AffectedRegion` whose mask over-
    approximates the set of sources whose dependency vectors differ from
    the pre-mutation graph — see the module docstring for the rule and
    its proof obligations.  Detection never under-approximates; every
    case it cannot prove falls back to ``everything``.
    """
    if np is None:
        return _everything("no-numpy")
    if deltas is None:
        return _everything("journal-overflow")
    deltas = tuple(deltas)
    n = csr.number_of_vertices()
    mask = np.zeros(n, dtype=bool)
    if not deltas:
        return AffectedRegion(mask=mask)
    if any(d.touches_vertices for d in deltas):
        return _everything("vertex-change")
    if csr.directed:
        return _everything("directed")
    if csr.weighted:
        if any(d.structural for d in deltas):
            return _everything("weighted")
        return _weight_only_region(csr, deltas, max_bfs=max_bfs)

    pairs = []
    for delta in deltas:
        ui = csr.find_index(delta.u)
        vi = csr.find_index(delta.v)
        if ui is None or vi is None:
            # An endpoint the final snapshot does not know (e.g. the
            # journal mixed edge ops with a removal of the endpoint that
            # the vertex-change gate somehow missed): not provable, so
            # not retained.
            return _everything("unknown-endpoint")
        pairs.append((ui, vi))

    unique = sorted({i for pair in pairs for i in pair})
    if len(unique) > max_bfs:
        return _everything("over-budget")

    from repro.shortest_paths.bfs import bfs_distances_csr

    dist = {endpoint: bfs_distances_csr(csr, endpoint)[0] for endpoint in unique}
    for ui, vi in pairs:
        # inf != inf is False: sources reaching neither endpoint are
        # provably unaffected by this pair.
        mask |= dist[ui] != dist[vi]
    return AffectedRegion(mask=mask, endpoints=tuple(unique))


#: Safety factor applied on top of the Dijkstra relaxation tolerance
#: (``_EPSILON``) when testing edge tightness: a source whose distances
#: tie the mutated edge anywhere within this widened band is flagged, so
#: the retained sources sit strictly outside the band the traversal
#: kernels use for their own tie comparisons — their relaxation branches
#: provably cannot flip between the old- and new-weight snapshots.  The
#: widened band also absorbs the last-ulp asymmetry of float path sums:
#: the rule evaluates ``d(endpoint, s)`` (one pass per endpoint) where the
#: kernels from source ``s`` sum the same undirected path in the opposite
#: order, and the two sums may differ by a few ulps — orders of magnitude
#: inside this band for any realistic path length.
_TIE_SAFETY = 4.0


def _weight_only_region(
    csr: "CSRGraph",
    deltas: Tuple["GraphDelta", ...],
    *,
    max_bfs: int,
) -> AffectedRegion:
    """The edge-tightness rule for weight-only journal windows.

    Every delta is a ``weight-changed`` record on the undirected weighted
    *csr* (the caller has already excluded structural, directed and
    vertex-touching windows).  A source ``s`` is flagged for a mutated
    edge ``(u, v)`` when the edge is *tight or improving* from ``s`` in
    either orientation under either the old or the new weight:

    .. math::

       d(s, a) + w \\le d(s, b) + \\text{tol}
       \\quad (a, b) \\in \\{(u, v), (v, u)\\},\\; w \\in \\{w_{old}, w_{new}\\}

    with ``d`` the **post-mutation** Dijkstra distances and ``tol`` the
    kernel relaxation tolerance widened by :data:`_TIE_SAFETY`.  Why the
    four tests cover every change for an unflagged source:

    * tight under ``w_new``: the edge sits in the post-mutation shortest-
      path DAG of ``s`` (every post DAG membership is exactly post
      tightness), so path counts or accumulation may involve it — flag.
    * improving under ``w_old`` (``d(s,a) + w_old < d(s,b)``): the
      pre-mutation graph contained an ``s``-path strictly shorter than the
      post distance of ``b``, so distances changed — flag.  (Improving
      under ``w_new`` is impossible: post distances already satisfy the
      triangle inequality over the post edge.)
    * tight under ``w_old``: if distances did *not* change, the edge sat
      in the pre-mutation DAG — flag.

    For a source failing all four tests (both orientations), the post
    distance function is also valid for the pre-mutation graph — no post
    shortest path crosses a mutated edge (a crossing would be tight under
    ``w_new``), and a strictly shorter pre path would put a first mutated-
    edge crossing ``(a, b)`` with unaffected prefix at
    ``d(s,a) + w_old \\le d(s,b)``, i.e. tight-or-improving under
    ``w_old``.  Distances, DAG membership and tie comparisons (the safety
    band) are therefore identical, the traversal kernels replay the same
    float operations, and the cached row is bit-identical — the same
    retention contract as the unweighted distance rule.
    """
    pairs = []
    for delta in deltas:
        ui = csr.find_index(delta.u)
        vi = csr.find_index(delta.v)
        if ui is None or vi is None:
            return _everything("unknown-endpoint")
        if delta.old_weight is None or delta.weight is None:
            # A weight-changed record without both weights cannot be
            # validated against the tightness rule: not provable, so not
            # retained.
            return _everything("unknown-weight")
        pairs.append((ui, vi, float(delta.old_weight), float(delta.weight)))

    unique = sorted({i for ui, vi, _, _ in pairs for i in (ui, vi)})
    if len(unique) > max_bfs:
        return _everything("over-budget")

    from repro.shortest_paths.dijkstra import _EPSILON, dijkstra_distances_csr

    mask = np.zeros(csr.number_of_vertices(), dtype=bool)
    # Undirected: d(s, endpoint) == d(endpoint, s), so one Dijkstra pass
    # per unique endpoint yields the distance of *every* source to it —
    # the weighted twin of the BFS passes above, same max_bfs budget.
    dist = {
        endpoint: dijkstra_distances_csr(csr, endpoint)[0] for endpoint in unique
    }
    for ui, vi, old_weight, new_weight in pairs:
        for a, b in ((ui, vi), (vi, ui)):
            da, db = dist[a], dist[b]
            # The mutated edge keeps both endpoints in one component, so
            # finiteness agrees; the guard keeps inf arithmetic (and the
            # trivially-true inf <= inf comparison) out of the mask.
            reachable = np.isfinite(da) & np.isfinite(db)
            for w in (old_weight, new_weight):
                candidate = da + w
                slack = _TIE_SAFETY * _EPSILON * np.maximum(1.0, candidate)
                mask |= reachable & (candidate <= db + slack)
    return AffectedRegion(mask=mask, endpoints=tuple(unique))
