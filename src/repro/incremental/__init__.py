"""Delta-scoped invalidation: affected-region reasoning for mutations.

The warm-serving tier keeps expensive per-source state alive between
queries — dependency-vector rows in the shared arena, oracle caches, MH
chain positions.  Before this package existed, every mutation invalidated
all of it through a single scalar ``graph.version`` comparison.  The
modules here consume the typed change journal of
:class:`~repro.graphs.core.Graph` instead and compute which *sources*
can actually be affected by a mutation, so every layer can evict only
those rows and retain the rest:

:mod:`repro.incremental.affected`
    ``affected_sources(csr, deltas)`` — the BFS distance-change region
    from the touched endpoints, with "everything" as the safe fallback
    (journal overflow, vertex ops, directed/weighted graphs).
:mod:`repro.incremental.biconnected`
    Articulation points and bridges (iterative Tarjan over the CSR
    arrays) — the iCentral-style structural machinery, used for receipt
    diagnostics and as an independent containment check in the tests.
:mod:`repro.incremental.receipts`
    :class:`InvalidationReceipt` — the structured "what was evicted vs
    retained, and why" record every mutation-consuming layer emits.

The determinism contract is absolute and is what every consumer relies
on: a source *not* in the affected region has a bit-identical dependency
vector on the mutated graph, so retaining its cached row can never change
a result.  Detection may only over-approximate, never under-approximate.
"""

from repro.incremental.affected import (
    DEFAULT_MAX_BFS,
    INVALIDATION_MODES,
    AffectedRegion,
    affected_sources,
    resolve_invalidation,
)
from repro.incremental.biconnected import articulation_points, bridges
from repro.incremental.receipts import InvalidationReceipt

__all__ = [
    "AffectedRegion",
    "InvalidationReceipt",
    "affected_sources",
    "articulation_points",
    "bridges",
    "resolve_invalidation",
    "DEFAULT_MAX_BFS",
    "INVALIDATION_MODES",
]
