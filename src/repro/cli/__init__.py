"""Command-line interface for the reproduction."""

from repro.cli.commands import build_parser, main_with_args, run

__all__ = ["build_parser", "run", "main_with_args"]
