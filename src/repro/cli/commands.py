"""Implementation of the ``repro-bc`` command-line interface.

Five sub-commands, mirroring the public Python API:

``estimate``
    Estimate the betweenness of a single vertex with any registered method.
``relative``
    Estimate relative betweenness scores / ratios of a set of vertices with
    the joint-space Metropolis-Hastings sampler.
``exact``
    Compute exact betweenness (all vertices or a selection) with Brandes.
``batch``
    Serve many queries from one warm
    :class:`~repro.centrality.session.BetweennessSession`: read a JSONL
    query file (or stdin), stream one JSON result per line.  The graph is
    loaded once, the worker pool / dependency arena persist across queries.
``datasets``
    List the built-in synthetic datasets.

Graphs are loaded either from an edge-list file (``--graph PATH``) or from a
named dataset (``--dataset NAME [--size SIZE]``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.centrality.api import (
    MCMC_SINGLE_METHODS,
    SINGLE_VERTEX_METHODS,
    _resolve_batch_size,
    _resolve_n_jobs,
    betweenness_exact,
    betweenness_single,
    relative_betweenness,
)
from repro.centrality.session import BetweennessSession
from repro.datasets.registry import SIZES, dataset_names, dataset_table, load_dataset
from repro.execution import resolve_plan
from repro.graphs.csr import BACKENDS, KERNELS
from repro.errors import ReproError
from repro.graphs.core import Graph
from repro.graphs.io import read_edge_list

__all__ = ["build_parser", "run", "main_with_args"]


def build_parser() -> argparse.ArgumentParser:
    """Return the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bc",
        description="Metropolis-Hastings betweenness centrality estimation (EDBT 2019 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    estimate = subparsers.add_parser("estimate", help="estimate the betweenness of one vertex")
    _add_graph_arguments(estimate)
    estimate.add_argument("--vertex", required=True, help="target vertex label")
    estimate.add_argument(
        "--method",
        default="mh",
        choices=sorted(SINGLE_VERTEX_METHODS),
        help="estimator to use (default: the paper's MH sampler)",
    )
    estimate.add_argument("--samples", type=int, default=200, help="chain length / sample count")
    estimate.add_argument("--seed", type=int, default=None, help="random seed")
    _add_execution_arguments(estimate)
    estimate.add_argument(
        "--chains",
        type=_positive_int,
        default=None,
        help="independent MH chains the sample budget is split over "
        "(MCMC methods only; per-chain rng streams, pooled deterministically)",
    )
    estimate.add_argument(
        "--rhat",
        type=_rhat_threshold,
        default=None,
        help="split-R-hat target for adaptive burn-in / early stop "
        "(> 1.0; implies --chains 4 when --chains is not given)",
    )
    _add_shared_cache_argument(estimate)

    relative = subparsers.add_parser(
        "relative", help="estimate relative betweenness scores of a vertex set"
    )
    _add_graph_arguments(relative)
    relative.add_argument(
        "--vertices", required=True, help="comma-separated reference vertex labels"
    )
    relative.add_argument("--samples", type=int, default=1000, help="joint chain length")
    relative.add_argument("--seed", type=int, default=None, help="random seed")
    _add_execution_arguments(relative)
    relative.add_argument(
        "--chains",
        type=_positive_int,
        default=None,
        help="independent joint chains the sample budget is split over",
    )
    _add_shared_cache_argument(relative)

    batch = subparsers.add_parser(
        "batch",
        help="serve a JSONL query stream from one warm session "
        "(graph loaded once, pool and dependency arena reused)",
    )
    _add_graph_arguments(batch)
    batch.add_argument(
        "--queries",
        required=True,
        help="path to a JSONL query file, or '-' for stdin; each line is an "
        'object like {"op": "estimate", "vertex": 3, "samples": 200, '
        '"seed": 7} with op one of estimate/relative/ranking/exact',
    )
    _add_execution_arguments(batch)
    batch.add_argument(
        "--chains",
        type=_positive_int,
        default=None,
        help="default chain count applied to MCMC queries that do not set "
        '"chains" themselves',
    )
    batch.add_argument(
        "--arena-capacity",
        type=_positive_int,
        default=None,
        help="rows of the session's persistent dependency arena "
        "(default: byte-budget heuristic)",
    )

    exact = subparsers.add_parser("exact", help="exact betweenness with Brandes's algorithm")
    _add_graph_arguments(exact)
    exact.add_argument(
        "--vertices",
        default=None,
        help="optional comma-separated vertex labels (default: all vertices)",
    )
    exact.add_argument("--top", type=int, default=None, help="print only the top-K vertices")
    _add_execution_arguments(exact)

    datasets = subparsers.add_parser("datasets", help="list the built-in synthetic datasets")
    datasets.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    return parser


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--graph", help="path to an edge-list file (two integers per line)")
    source.add_argument("--dataset", choices=dataset_names(), help="built-in dataset name")
    parser.add_argument("--size", default="small", choices=SIZES, help="built-in dataset size")
    parser.add_argument(
        "--weighted", action="store_true", help="treat the edge list as weighted (u v w lines)"
    )


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """The execution-engine knobs shared by every estimating sub-command."""
    parser.add_argument(
        "--backend",
        default="auto",
        choices=BACKENDS,
        help="traversal backend (default: auto = CSR kernels when numpy is available)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs,
        default=None,
        help="worker processes for the sharded source loop, or 'auto' to "
        "calibrate the count from a short timed probe (default: sequential)",
    )
    parser.add_argument(
        "--batch-size",
        type=_batch_size,
        default=None,
        help="sources per batched CSR traversal, or 'auto' to calibrate the "
        "size from a short timed probe (default: per-source kernels)",
    )
    parser.add_argument(
        "--kernel",
        default="auto",
        choices=KERNELS,
        help="CSR kernel rung: 'csr' (numpy) or 'compiled' (numba-jitted, "
        "bit-identical results; default: auto = compiled when numba imports)",
    )


def _add_shared_cache_argument(parser: argparse.ArgumentParser) -> None:
    """The cross-process oracle-cache knob of the multi-chain MCMC driver."""
    parser.add_argument(
        "--shared-cache",
        action="store_true",
        default=None,
        help="share one cross-process dependency-vector cache across the "
        "multi-chain driver's worker processes (requires --chains/--rhat; "
        "estimates are bit-identical with or without it)",
    )


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {raw!r}")
    return value


def _batch_size(raw: str):
    if raw == "auto":
        return "auto"
    return _positive_int(raw)


def _jobs(raw: str):
    if raw == "auto":
        return "auto"
    return _positive_int(raw)


def _rhat_threshold(raw: str) -> float:
    value = float(raw)
    if not value > 1.0:
        raise argparse.ArgumentTypeError(
            f"expected a threshold greater than 1.0, got {raw!r}"
        )
    return value


def _load_graph(args: argparse.Namespace) -> Graph:
    if args.graph:
        return read_edge_list(args.graph, weighted=args.weighted)
    return load_dataset(args.dataset, size=args.size)


def _parse_vertex(label: str) -> object:
    """Interpret a vertex label as an int when possible, else as a string."""
    try:
        return int(label)
    except ValueError:
        return label


def run(args: argparse.Namespace, out=sys.stdout) -> int:
    """Execute the parsed arguments; return a process exit code."""
    try:
        if args.command == "datasets":
            return _run_datasets(args, out)
        graph = _load_graph(args)
        if args.command == "estimate":
            return _run_estimate(args, graph, out)
        if args.command == "relative":
            return _run_relative(args, graph, out)
        if args.command == "exact":
            return _run_exact(args, graph, out)
        if args.command == "batch":
            return _run_batch(args, graph, out)
        raise ReproError(f"unknown command {args.command!r}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _resolved_kernel(kernel: str) -> str:
    """Resolve the ``--kernel`` argument for the payload stamp.

    Quietly: when ``compiled`` degrades to ``csr`` without numba, the run
    itself already warned once; the stamp just records what actually ran.
    """
    import warnings

    from repro.graphs.csr import resolve_kernel

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return resolve_kernel(kernel)


def _execution_stamp(diagnostics, kernel: Optional[str] = None) -> dict:
    """The execution stamp every estimating payload shares.

    Same semantics everywhere: null ``jobs`` / ``batch_size`` = engine not
    engaged, null ``chains`` / ``rhat`` / ``ess`` = the multi-chain driver
    did not run.  One assembly point instead of each command re-listing the
    keys (``estimate`` / ``relative`` previously kept diverging copies).
    ``kernel`` is the resolved CSR kernel rung the command ran.
    """
    return {
        "backend": diagnostics.get("backend"),
        "jobs": diagnostics.get("n_jobs"),
        "batch_size": diagnostics.get("batch_size"),
        "kernel": kernel,
        "chains": diagnostics.get("n_chains"),
        "rhat": diagnostics.get("rhat"),
        "ess": diagnostics.get("ess"),
        "shared_cache": diagnostics.get("shared_cache"),
    }


def _estimate_payload(vertex, result, kernel: Optional[str] = None) -> dict:
    """JSON payload of one single-vertex estimate (shared with ``batch``)."""
    return {
        "vertex": str(vertex),
        "method": result.method,
        "estimate": result.estimate,
        "samples": result.samples,
        "elapsed_seconds": result.elapsed_seconds,
        "acceptance_rate": result.diagnostics.get("acceptance_rate"),
        **_execution_stamp(result.diagnostics, kernel),
        # Multi-chain extras: null unless the chains/rhat driver ran.
        "converged": result.diagnostics.get("converged"),
    }


def _relative_payload(estimate, kernel: Optional[str] = None) -> dict:
    """JSON payload of one relative-betweenness estimate (shared with ``batch``)."""
    return {
        **_execution_stamp(estimate.diagnostics, kernel),
        "reference_set": [str(v) for v in estimate.reference_set],
        "sample_counts": {str(v): c for v, c in estimate.sample_counts.items()},
        "acceptance_rate": estimate.acceptance_rate,
        "ranking": [str(v) for v in estimate.ranking()],
        "relative": {
            str(ri): {str(rj): value for rj, value in row.items()}
            for ri, row in estimate.relative.items()
        },
        "ratios": {f"{ri}/{rj}": value for (ri, rj), value in estimate.ratios.items()},
    }


def _run_estimate(args: argparse.Namespace, graph: Graph, out) -> int:
    vertex = _parse_vertex(args.vertex)
    result = betweenness_single(
        graph,
        vertex,
        method=args.method,
        samples=args.samples,
        seed=args.seed,
        backend=args.backend,
        batch_size=args.batch_size,
        n_jobs=args.jobs,
        n_chains=args.chains,
        rhat_target=args.rhat,
        shared_cache=args.shared_cache,
        kernel=args.kernel,
    )
    payload = _estimate_payload(vertex, result, kernel=_resolved_kernel(args.kernel))
    print(json.dumps(payload, indent=2), file=out)
    return 0


def _run_relative(args: argparse.Namespace, graph: Graph, out) -> int:
    vertices = [_parse_vertex(v) for v in args.vertices.split(",") if v.strip() != ""]
    estimate = relative_betweenness(
        graph,
        vertices,
        samples=args.samples,
        seed=args.seed,
        backend=args.backend,
        batch_size=args.batch_size,
        n_jobs=args.jobs,
        n_chains=args.chains,
        shared_cache=args.shared_cache,
        kernel=args.kernel,
    )
    payload = _relative_payload(estimate, kernel=_resolved_kernel(args.kernel))
    print(json.dumps(payload, indent=2), file=out)
    return 0


def _batch_result(
    session: BetweennessSession,
    query: dict,
    default_chains,
    kernel: Optional[str] = None,
) -> dict:
    """Execute one parsed batch query against the warm session."""
    op = query.get("op", "estimate")
    seed = query.get("seed")
    if op == "estimate":
        method = query.get("method", "mh")
        chains = query.get("chains", default_chains if method in MCMC_SINGLE_METHODS else None)
        vertex = _parse_vertex(str(query["vertex"]))
        result = session.estimate(
            vertex,
            method=method,
            samples=int(query.get("samples", 200)),
            seed=seed,
            n_chains=chains,
            rhat_target=query.get("rhat"),
        )
        return _estimate_payload(vertex, result, kernel=kernel)
    chains = query.get("chains", default_chains)
    if op == "relative":
        vertices = [_parse_vertex(str(v)) for v in query["vertices"]]
        estimate = session.relative(
            vertices, samples=int(query.get("samples", 1000)), seed=seed, n_chains=chains
        )
        return _relative_payload(estimate, kernel=kernel)
    if op == "ranking":
        vertices = query.get("vertices")
        members = (
            [_parse_vertex(str(v)) for v in vertices] if vertices is not None else None
        )
        ranked = session.ranking(
            members,
            k=query.get("k"),
            samples=int(query.get("samples", 1000)),
            seed=seed,
            n_chains=chains,
        )
        return {"ranking": [str(v) for v in ranked]}
    if op == "exact":
        vertices = query.get("vertices")
        members = (
            [_parse_vertex(str(v)) for v in vertices] if vertices is not None else None
        )
        scores = session.exact(members)
        items = sorted(scores.items(), key=lambda kv: kv[1], reverse=True)
        if query.get("top") is not None:
            items = items[: int(query["top"])]
        return {"scores": {str(v): score for v, score in items}}
    raise ReproError(
        f"unknown batch op {op!r}; expected estimate/relative/ranking/exact"
    )


def _run_batch(args: argparse.Namespace, graph: Graph, out) -> int:
    """Stream JSONL queries through one warm session (one JSON result per line).

    Every query line is answered independently — a malformed or failing
    query emits an ``error`` record and the stream continues (exit code 1 at
    the end if anything failed).  The session — graph, worker pool, arena,
    oracles — stays warm across the whole stream, which is the point: the
    per-query marginal cost is the estimator work alone.
    """
    batch_size = _resolve_batch_size(graph, args.batch_size, args.backend)
    n_jobs = _resolve_n_jobs(graph, args.jobs, args.backend)
    plan = resolve_plan(
        None,
        backend=args.backend,
        batch_size=batch_size,
        n_jobs=n_jobs,
        kernel=args.kernel,
    )
    if args.queries == "-":
        lines = sys.stdin
        close_lines = False
    else:
        try:
            lines = open(args.queries, "r", encoding="utf-8")
        except OSError as exc:
            raise ReproError(f"cannot read the query file: {exc}")
        close_lines = True
    failures = 0
    try:
        with BetweennessSession(
            graph, plan, backend=args.backend, arena_capacity=args.arena_capacity
        ) as session:
            for lineno, line in enumerate(lines, start=1):
                line = line.strip()
                if not line:
                    continue
                record: dict = {"line": lineno}
                try:
                    query = json.loads(line)
                    if not isinstance(query, dict):
                        raise ReproError("each query line must be a JSON object")
                    if "id" in query:
                        record["id"] = query["id"]
                    record["op"] = query.get("op", "estimate")
                    record.update(
                        _batch_result(
                            session, query, args.chains,
                            kernel=_resolved_kernel(args.kernel),
                        )
                    )
                except (ReproError, ValueError, KeyError, TypeError) as exc:
                    failures += 1
                    record["error"] = str(exc) or type(exc).__name__
                print(json.dumps(record), file=out, flush=True)
    finally:
        if close_lines:
            lines.close()
    return 0 if failures == 0 else 1


def _run_exact(args: argparse.Namespace, graph: Graph, out) -> int:
    vertices: Optional[List[object]] = None
    if args.vertices:
        vertices = [_parse_vertex(v) for v in args.vertices.split(",") if v.strip() != ""]
    scores = betweenness_exact(
        graph,
        vertices,
        backend=args.backend,
        batch_size=args.batch_size,
        n_jobs=args.jobs,
        kernel=args.kernel,
    )
    items = sorted(scores.items(), key=lambda kv: kv[1], reverse=True)
    if args.top is not None:
        items = items[: args.top]
    payload = {str(v): score for v, score in items}
    print(json.dumps(payload, indent=2), file=out)
    return 0


def _run_datasets(args: argparse.Namespace, out) -> int:
    rows = dataset_table()
    if args.json:
        print(json.dumps(rows, indent=2), file=out)
        return 0
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        print(f"{row['name']:<{width}}  {row['stands_in_for']}", file=out)
    return 0


def main_with_args(argv: Optional[Sequence[str]] = None, out=sys.stdout) -> int:
    """Parse *argv* and run the CLI; returns the exit code (testable entry point)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args, out=out)
