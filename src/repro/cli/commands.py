"""Implementation of the ``repro-bc`` command-line interface.

Five sub-commands, mirroring the public Python API:

``estimate``
    Estimate the betweenness of a single vertex with any registered method.
``relative``
    Estimate relative betweenness scores / ratios of a set of vertices with
    the joint-space Metropolis-Hastings sampler.
``exact``
    Compute exact betweenness (all vertices or a selection) with Brandes.
``batch``
    Serve many queries from one warm
    :class:`~repro.centrality.session.BetweennessSession`: read a JSONL
    query file (or stdin), stream one JSON result per line.  The graph is
    loaded once, the worker pool / dependency arena persist across queries.
``serve``
    Run the long-lived HTTP/JSON daemon of :mod:`repro.serving`: a session
    registry of named warm graphs, request coalescing, admission control,
    and a Prometheus-text ``/metrics`` endpoint.  Accepts the same query
    objects as ``batch``, one endpoint per op.
``datasets``
    List the built-in synthetic datasets.

Graphs are loaded either from an edge-list file (``--graph PATH``) or from a
named dataset (``--dataset NAME [--size SIZE]``); ``serve`` can also start
empty and load graphs over HTTP.

The payload builders and execution stamp shared by ``estimate`` /
``relative`` / ``batch`` / ``serve`` live in :mod:`repro.serving.queries`
and :mod:`repro.execution.stamp` — one implementation, so the surfaces
cannot drift.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.centrality.api import (
    SINGLE_VERTEX_METHODS,
    _resolve_batch_size,
    _resolve_kernel_threads,
    _resolve_n_jobs,
    betweenness_exact,
    betweenness_single,
    relative_betweenness,
)
from repro.centrality.session import BetweennessSession
from repro.datasets.registry import SIZES, dataset_names, dataset_table, load_dataset
from repro.execution import resolve_kernel_threads, resolve_plan
from repro.execution.stamp import resolve_kernel_quiet
from repro.graphs.csr import BACKENDS, KERNELS
from repro.errors import ReproError
from repro.graphs.core import Graph
from repro.graphs.io import read_edge_list
from repro.serving.queries import (
    estimate_payload,
    execute_query,
    parse_vertex,
    relative_payload,
)

__all__ = ["build_parser", "run", "main_with_args"]


def build_parser() -> argparse.ArgumentParser:
    """Return the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bc",
        description="Metropolis-Hastings betweenness centrality estimation (EDBT 2019 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    estimate = subparsers.add_parser("estimate", help="estimate the betweenness of one vertex")
    _add_graph_arguments(estimate)
    estimate.add_argument("--vertex", required=True, help="target vertex label")
    estimate.add_argument(
        "--method",
        default="mh",
        choices=sorted(SINGLE_VERTEX_METHODS),
        help="estimator to use (default: the paper's MH sampler)",
    )
    estimate.add_argument("--samples", type=int, default=200, help="chain length / sample count")
    estimate.add_argument("--seed", type=int, default=None, help="random seed")
    _add_execution_arguments(estimate)
    estimate.add_argument(
        "--chains",
        type=_positive_int,
        default=None,
        help="independent MH chains the sample budget is split over "
        "(MCMC methods only; per-chain rng streams, pooled deterministically)",
    )
    estimate.add_argument(
        "--rhat",
        type=_rhat_threshold,
        default=None,
        help="split-R-hat target for adaptive burn-in / early stop "
        "(> 1.0; implies --chains 4 when --chains is not given)",
    )
    _add_shared_cache_argument(estimate)

    relative = subparsers.add_parser(
        "relative", help="estimate relative betweenness scores of a vertex set"
    )
    _add_graph_arguments(relative)
    relative.add_argument(
        "--vertices", required=True, help="comma-separated reference vertex labels"
    )
    relative.add_argument("--samples", type=int, default=1000, help="joint chain length")
    relative.add_argument("--seed", type=int, default=None, help="random seed")
    _add_execution_arguments(relative)
    relative.add_argument(
        "--chains",
        type=_positive_int,
        default=None,
        help="independent joint chains the sample budget is split over",
    )
    _add_shared_cache_argument(relative)

    batch = subparsers.add_parser(
        "batch",
        help="serve a JSONL query stream from one warm session "
        "(graph loaded once, pool and dependency arena reused)",
    )
    _add_graph_arguments(batch)
    batch.add_argument(
        "--queries",
        required=True,
        help="path to a JSONL query file, or '-' for stdin; each line is an "
        'object like {"op": "estimate", "vertex": 3, "samples": 200, '
        '"seed": 7} with op one of estimate/relative/ranking/exact',
    )
    _add_execution_arguments(batch)
    batch.add_argument(
        "--chains",
        type=_positive_int,
        default=None,
        help="default chain count applied to MCMC queries that do not set "
        '"chains" themselves',
    )
    batch.add_argument(
        "--arena-capacity",
        type=_positive_int,
        default=None,
        help="rows of the session's persistent dependency arena "
        "(default: byte-budget heuristic)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the HTTP/JSON daemon: named warm graphs, request "
        "coalescing, /metrics (see repro.serving)",
    )
    _add_graph_arguments(serve, required=False)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8035, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--name",
        default="default",
        help="registry name of the graph preloaded from --graph/--dataset",
    )
    _add_execution_arguments(serve)
    serve.add_argument(
        "--chains",
        type=_positive_int,
        default=None,
        help="default chain count applied to MCMC queries that do not set "
        '"chains" themselves',
    )
    serve.add_argument(
        "--arena-capacity",
        type=_positive_int,
        default=None,
        help="rows of each session's persistent dependency arena",
    )
    serve.add_argument(
        "--invalidation",
        choices=("delta", "full"),
        default=None,
        help="mutation invalidation scoping: 'delta' retains warm state "
        "outside the journal-proved affected region, 'full' destroys "
        "everything (default: REPRO_INVALIDATION, else delta)",
    )
    serve.add_argument(
        "--max-sessions",
        type=_positive_int,
        default=8,
        help="bound on simultaneously loaded graphs (each owns workers and "
        "shared memory)",
    )
    serve.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=16,
        help="bound on concurrently running distinct computations; over-limit "
        "requests get 429 + Retry-After",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-request wait deadline in seconds (expired requests get a "
        "structured 504; the computation finishes in the background)",
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        help="Retry-After hint (seconds) on 429 responses",
    )

    exact = subparsers.add_parser("exact", help="exact betweenness with Brandes's algorithm")
    _add_graph_arguments(exact)
    exact.add_argument(
        "--vertices",
        default=None,
        help="optional comma-separated vertex labels (default: all vertices)",
    )
    exact.add_argument("--top", type=int, default=None, help="print only the top-K vertices")
    _add_execution_arguments(exact)

    datasets = subparsers.add_parser("datasets", help="list the built-in synthetic datasets")
    datasets.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    return parser


def _add_graph_arguments(parser: argparse.ArgumentParser, required: bool = True) -> None:
    source = parser.add_mutually_exclusive_group(required=required)
    source.add_argument("--graph", help="path to an edge-list file (two integers per line)")
    source.add_argument("--dataset", choices=dataset_names(), help="built-in dataset name")
    parser.add_argument("--size", default="small", choices=SIZES, help="built-in dataset size")
    parser.add_argument(
        "--weighted", action="store_true", help="treat the edge list as weighted (u v w lines)"
    )


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """The execution-engine knobs shared by every estimating sub-command."""
    parser.add_argument(
        "--backend",
        default="auto",
        choices=BACKENDS,
        help="traversal backend (default: auto = CSR kernels when numpy is available)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs,
        default=None,
        help="worker processes for the sharded source loop, or 'auto' to "
        "calibrate the count from a short timed probe (default: sequential)",
    )
    parser.add_argument(
        "--batch-size",
        type=_batch_size,
        default=None,
        help="sources per batched CSR traversal, or 'auto' to calibrate the "
        "size from a short timed probe (default: per-source kernels)",
    )
    parser.add_argument(
        "--kernel",
        default="auto",
        choices=KERNELS,
        help="CSR kernel rung: 'csr' (numpy) or 'compiled' (numba-jitted, "
        "bit-identical results; default: auto = compiled when numba imports)",
    )
    parser.add_argument(
        "--kernel-threads",
        type=_jobs,
        default=None,
        help="threads for the compiled jit-parallel batch kernels, or 'auto' "
        "to calibrate from a short timed probe capped so threads x jobs "
        "stays within the machine (default: REPRO_KERNEL_THREADS, else 1; "
        "result-neutral at any count)",
    )


def _add_shared_cache_argument(parser: argparse.ArgumentParser) -> None:
    """The cross-process oracle-cache knob of the multi-chain MCMC driver."""
    parser.add_argument(
        "--shared-cache",
        action="store_true",
        default=None,
        help="share one cross-process dependency-vector cache across the "
        "multi-chain driver's worker processes (requires --chains/--rhat; "
        "estimates are bit-identical with or without it)",
    )


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {raw!r}")
    return value


def _batch_size(raw: str):
    if raw == "auto":
        return "auto"
    return _positive_int(raw)


def _jobs(raw: str):
    if raw == "auto":
        return "auto"
    return _positive_int(raw)


def _rhat_threshold(raw: str) -> float:
    value = float(raw)
    if not value > 1.0:
        raise argparse.ArgumentTypeError(
            f"expected a threshold greater than 1.0, got {raw!r}"
        )
    return value


def _load_graph(args: argparse.Namespace) -> Optional[Graph]:
    if args.graph:
        return read_edge_list(args.graph, weighted=args.weighted)
    if args.dataset:
        return load_dataset(args.dataset, size=args.size)
    return None


def run(args: argparse.Namespace, out=sys.stdout) -> int:
    """Execute the parsed arguments; return a process exit code."""
    try:
        if args.command == "datasets":
            return _run_datasets(args, out)
        graph = _load_graph(args)
        if args.command == "serve":
            return _run_serve(args, graph, out)
        if graph is None:
            raise ReproError("a graph source (--graph or --dataset) is required")
        if args.command == "estimate":
            return _run_estimate(args, graph, out)
        if args.command == "relative":
            return _run_relative(args, graph, out)
        if args.command == "exact":
            return _run_exact(args, graph, out)
        if args.command == "batch":
            return _run_batch(args, graph, out)
        raise ReproError(f"unknown command {args.command!r}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run_estimate(args: argparse.Namespace, graph: Graph, out) -> int:
    vertex = parse_vertex(args.vertex)
    kernel_threads = _resolve_kernel_threads(
        graph, args.kernel_threads, args.backend, args.kernel, args.jobs
    )
    result = betweenness_single(
        graph,
        vertex,
        method=args.method,
        samples=args.samples,
        seed=args.seed,
        backend=args.backend,
        batch_size=args.batch_size,
        n_jobs=args.jobs,
        n_chains=args.chains,
        rhat_target=args.rhat,
        shared_cache=args.shared_cache,
        kernel=args.kernel,
        kernel_threads=kernel_threads,
    )
    payload = estimate_payload(
        vertex,
        result,
        kernel=resolve_kernel_quiet(args.kernel),
        kernel_threads=resolve_kernel_threads(kernel_threads),
    )
    print(json.dumps(payload, indent=2), file=out)
    return 0


def _run_relative(args: argparse.Namespace, graph: Graph, out) -> int:
    vertices = [parse_vertex(v) for v in args.vertices.split(",") if v.strip() != ""]
    kernel_threads = _resolve_kernel_threads(
        graph, args.kernel_threads, args.backend, args.kernel, args.jobs
    )
    estimate = relative_betweenness(
        graph,
        vertices,
        samples=args.samples,
        seed=args.seed,
        backend=args.backend,
        batch_size=args.batch_size,
        n_jobs=args.jobs,
        n_chains=args.chains,
        shared_cache=args.shared_cache,
        kernel=args.kernel,
        kernel_threads=kernel_threads,
    )
    payload = relative_payload(
        estimate,
        kernel=resolve_kernel_quiet(args.kernel),
        kernel_threads=resolve_kernel_threads(kernel_threads),
    )
    print(json.dumps(payload, indent=2), file=out)
    return 0


def _run_batch(args: argparse.Namespace, graph: Graph, out) -> int:
    """Stream JSONL queries through one warm session (one JSON result per line).

    Every query line is answered independently — a malformed or failing
    query emits an ``error`` record and the stream continues (exit code 1 at
    the end if anything failed).  The session — graph, worker pool, arena,
    oracles — stays warm across the whole stream, which is the point: the
    per-query marginal cost is the estimator work alone.
    """
    batch_size = _resolve_batch_size(graph, args.batch_size, args.backend)
    n_jobs = _resolve_n_jobs(graph, args.jobs, args.backend)
    kernel_threads = _resolve_kernel_threads(
        graph, args.kernel_threads, args.backend, args.kernel, n_jobs
    )
    plan = resolve_plan(
        None,
        backend=args.backend,
        batch_size=batch_size,
        n_jobs=n_jobs,
        kernel=args.kernel,
        kernel_threads=kernel_threads,
    )
    if args.queries == "-":
        lines = sys.stdin
        close_lines = False
    else:
        try:
            lines = open(args.queries, "r", encoding="utf-8")
        except OSError as exc:
            raise ReproError(f"cannot read the query file: {exc}")
        close_lines = True
    failures = 0
    try:
        with BetweennessSession(
            graph, plan, backend=args.backend, arena_capacity=args.arena_capacity
        ) as session:
            for lineno, line in enumerate(lines, start=1):
                line = line.strip()
                if not line:
                    continue
                record: dict = {"line": lineno}
                try:
                    query = json.loads(line)
                    if not isinstance(query, dict):
                        raise ReproError("each query line must be a JSON object")
                    if "id" in query:
                        record["id"] = query["id"]
                    record["op"] = query.get("op", "estimate")
                    record.update(
                        execute_query(
                            session, query, default_chains=args.chains,
                            kernel=resolve_kernel_quiet(args.kernel),
                            kernel_threads=resolve_kernel_threads(kernel_threads),
                        )
                    )
                except (ReproError, ValueError, KeyError, TypeError) as exc:
                    failures += 1
                    record["error"] = str(exc) or type(exc).__name__
                print(json.dumps(record), file=out, flush=True)
    finally:
        if close_lines:
            lines.close()
    return 0 if failures == 0 else 1


def _run_serve(args: argparse.Namespace, graph: Optional[Graph], out) -> int:
    """Run the HTTP daemon until interrupted.

    With ``--graph``/``--dataset`` the named graph is preloaded (warm before
    the first request); without one the daemon starts empty and graphs
    arrive over ``PUT /graphs/<name>``.  Auto-calibrated ``--jobs`` /
    ``--batch-size`` probes run against the preloaded graph; with no graph
    to probe they fall back to the sequential defaults.
    """
    from repro.serving import ServingApp, ServingConfig, create_server

    if graph is not None:
        batch_size = _resolve_batch_size(graph, args.batch_size, args.backend)
        n_jobs = _resolve_n_jobs(graph, args.jobs, args.backend)
        kernel_threads = _resolve_kernel_threads(
            graph, args.kernel_threads, args.backend, args.kernel, n_jobs
        )
    else:
        batch_size = None if args.batch_size == "auto" else args.batch_size
        n_jobs = None if args.jobs == "auto" else args.jobs
        kernel_threads = None if args.kernel_threads == "auto" else args.kernel_threads
    plan = resolve_plan(
        None,
        backend=args.backend,
        batch_size=batch_size,
        n_jobs=n_jobs,
        kernel=args.kernel,
        kernel_threads=kernel_threads,
    )
    config = ServingConfig(
        max_inflight=args.max_inflight,
        request_timeout=args.timeout,
        retry_after=args.retry_after,
        default_chains=args.chains,
        max_sessions=args.max_sessions,
        backend=args.backend,
        kernel=args.kernel,
        kernel_threads=kernel_threads,
        arena_capacity=args.arena_capacity,
        invalidation=args.invalidation,
    )
    app = ServingApp(plan=plan, config=config)
    server = create_server(args.host, args.port, app=app)
    try:
        if graph is not None:
            app.registry.load(args.name, graph)
        host, port = server.server_address[:2]
        print(
            json.dumps(
                {
                    "serving": f"http://{host}:{port}",
                    "graphs": app.registry.names(),
                    "max_inflight": args.max_inflight,
                    "timeout_seconds": args.timeout,
                }
            ),
            file=out,
            flush=True,
        )
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _run_exact(args: argparse.Namespace, graph: Graph, out) -> int:
    vertices: Optional[List[object]] = None
    if args.vertices:
        vertices = [parse_vertex(v) for v in args.vertices.split(",") if v.strip() != ""]
    scores = betweenness_exact(
        graph,
        vertices,
        backend=args.backend,
        batch_size=args.batch_size,
        n_jobs=args.jobs,
        kernel=args.kernel,
        kernel_threads=args.kernel_threads,
    )
    items = sorted(scores.items(), key=lambda kv: kv[1], reverse=True)
    if args.top is not None:
        items = items[: args.top]
    payload = {str(v): score for v, score in items}
    print(json.dumps(payload, indent=2), file=out)
    return 0


def _run_datasets(args: argparse.Namespace, out) -> int:
    rows = dataset_table()
    if args.json:
        print(json.dumps(rows, indent=2), file=out)
        return 0
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        print(f"{row['name']:<{width}}  {row['stands_in_for']}", file=out)
    return 0


def main_with_args(argv: Optional[Sequence[str]] = None, out=sys.stdout) -> int:
    """Parse *argv* and run the CLI; returns the exit code (testable entry point)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args, out=out)
