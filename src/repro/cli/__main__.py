"""Console entry point: ``python -m repro.cli`` or the installed ``repro-bc`` script."""

from __future__ import annotations

import sys

from repro.cli.commands import main_with_args

__all__ = ["main"]


def main() -> None:
    """Run the CLI and exit with its return code."""
    sys.exit(main_with_args())


if __name__ == "__main__":
    main()
