"""Convergence diagnostics for the Metropolis-Hastings chains.

The paper's guarantees (Theorems 1 and 4) are non-asymptotic and hold
without burn-in, but practitioners still want to *see* that a chain is
healthy.  This module provides the standard MCMC diagnostics used by
benchmark E7 and by the examples:

* acceptance rate (already on the chain results; re-exported here for
  completeness of the diagnostics report);
* autocorrelation and effective sample size of the dependency trace;
* the Geweke z-score comparing the first and last portions of the trace;
* total-variation distance between the empirical visit distribution and the
  exact stationary distribution of Equation 5 (small graphs only, since the
  exact distribution needs a full Brandes sweep);
* cross-chain convergence statistics for the multi-chain driver of
  :mod:`repro.mcmc.multichain`: the Gelman–Rubin potential scale reduction
  factor (:func:`gelman_rubin`), its split-chain variant
  (:func:`split_rhat`, which also diagnoses a *single* chain by comparing
  its halves) and the pooled effective sample size
  (:func:`multichain_ess`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.graphs.core import Graph, Vertex
from repro.mcmc.single import ChainResult
from repro.shortest_paths.dependencies import all_dependencies_on_target

__all__ = [
    "autocorrelation",
    "effective_sample_size",
    "geweke_z_score",
    "total_variation_distance",
    "stationary_distribution",
    "empirical_vs_stationary",
    "ChainDiagnostics",
    "diagnose_chain",
    "gelman_rubin",
    "split_rhat",
    "multichain_ess",
    "MultiChainDiagnostics",
    "diagnose_chains",
]


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _variance(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return sum((v - mean) ** 2 for v in values) / (len(values) - 1)


def autocorrelation(trace: Sequence[float], lag: int) -> float:
    """Return the lag-*lag* autocorrelation of *trace* (0 when undefined)."""
    if lag < 0:
        raise ConfigurationError("lag must be non-negative")
    n = len(trace)
    if lag >= n or n < 2:
        return 0.0
    mean = _mean(trace)
    denominator = sum((v - mean) ** 2 for v in trace)
    if denominator == 0.0:
        return 0.0
    numerator = sum((trace[i] - mean) * (trace[i + lag] - mean) for i in range(n - lag))
    return numerator / denominator


def effective_sample_size(trace: Sequence[float], max_lag: Optional[int] = None) -> float:
    """Return the effective sample size of *trace*.

    Uses the initial-positive-sequence truncation: autocorrelations are
    summed until the first non-positive value.  A constant trace is reported
    as having an effective size equal to its length (there is nothing left to
    mix).
    """
    n = len(trace)
    if n == 0:
        return 0.0
    if _variance(trace) == 0.0:
        return float(n)
    if max_lag is None:
        max_lag = min(n - 1, 1000)
    rho_sum = 0.0
    for lag in range(1, max_lag + 1):
        rho = autocorrelation(trace, lag)
        if rho <= 0.0:
            break
        rho_sum += rho
    return n / (1.0 + 2.0 * rho_sum)


def geweke_z_score(
    trace: Sequence[float], first_fraction: float = 0.1, last_fraction: float = 0.5
) -> float:
    """Return the Geweke convergence z-score of *trace*.

    Compares the mean of the first ``first_fraction`` of the trace against
    the mean of the last ``last_fraction``; values within ±2 indicate the two
    segments are statistically compatible.
    """
    if not 0.0 < first_fraction < 1.0 or not 0.0 < last_fraction < 1.0:
        raise ConfigurationError("fractions must lie strictly between 0 and 1")
    if first_fraction + last_fraction > 1.0:
        raise ConfigurationError("the two fractions must not overlap")
    n = len(trace)
    if n < 4:
        return 0.0
    first = trace[: max(int(n * first_fraction), 1)]
    last = trace[-max(int(n * last_fraction), 1) :]
    var_first = _variance(first) / len(first)
    var_last = _variance(last) / len(last)
    spread = math.sqrt(var_first + var_last)
    if spread == 0.0:
        return 0.0
    return (_mean(first) - _mean(last)) / spread


def total_variation_distance(p: Dict[Vertex, float], q: Dict[Vertex, float]) -> float:
    """Return the total-variation distance between two distributions over vertices."""
    support = set(p) | set(q)
    return 0.5 * sum(abs(p.get(v, 0.0) - q.get(v, 0.0)) for v in support)


def stationary_distribution(graph: Graph, r: Vertex) -> Dict[Vertex, float]:
    """Return the exact stationary distribution of the single-space chain (Equation 5)."""
    deltas = all_dependencies_on_target(graph, r)
    total = sum(deltas.values())
    if total <= 0.0:
        raise ConfigurationError(
            f"vertex {r!r} has betweenness 0; the stationary distribution is undefined"
        )
    return {v: d / total for v, d in deltas.items() if d > 0.0}


def empirical_vs_stationary(graph: Graph, chain: ChainResult) -> float:
    """Return the TV distance between the chain's visit frequencies and Equation 5."""
    return total_variation_distance(
        chain.empirical_distribution(), stationary_distribution(graph, chain.target)
    )


@dataclass
class ChainDiagnostics:
    """Bundle of diagnostics for one chain run (produced by :func:`diagnose_chain`)."""

    acceptance_rate: float
    effective_sample_size: float
    geweke_z: float
    lag1_autocorrelation: float
    chain_length: int
    evaluations: int
    tv_distance_to_stationary: Optional[float] = None

    def healthy(self) -> bool:
        """Return ``True`` when the standard rules of thumb are satisfied.

        Acceptance rate not degenerate (between 5% and 99.9%), Geweke within
        ±2, and an effective sample size of at least 10.
        """
        return (
            0.05 <= self.acceptance_rate <= 0.999
            and abs(self.geweke_z) <= 2.0
            and self.effective_sample_size >= 10.0
        )


# ----------------------------------------------------------------------
# Cross-chain diagnostics (multi-chain driver)
# ----------------------------------------------------------------------


def gelman_rubin(traces: Sequence[Sequence[float]]) -> float:
    """Return the Gelman–Rubin potential scale reduction factor R̂ of *traces*.

    The classic between/within variance comparison over ``m >= 2`` chains:
    with *n* the common length (longer traces are truncated to the shortest),
    *W* the mean of the within-chain sample variances and *B/n* the sample
    variance of the chain means,

    .. math::

       \\hat R = \\sqrt{\\frac{\\frac{n-1}{n} W + B/n}{W}}.

    Values near 1 indicate the chains explored the same distribution.
    Degenerate cases are pinned explicitly: all chains constant *and* equal
    gives 1.0 (nothing left to mix); chains constant but *unequal* gives
    ``inf`` (they will never agree); fewer than two samples per chain gives
    ``inf`` (no information yet, treat as unconverged).

    Raises
    ------
    ConfigurationError
        If fewer than two traces are given — use :func:`split_rhat` to
        diagnose a single chain by comparing its halves.
    """
    if len(traces) < 2:
        raise ConfigurationError(
            "gelman_rubin needs at least two chains; use split_rhat for one"
        )
    n = min(len(trace) for trace in traces)
    if n < 2:
        return float("inf")
    truncated = [list(trace[:n]) for trace in traces]
    within = _mean([_variance(trace) for trace in truncated])
    means = [_mean(trace) for trace in truncated]
    between_over_n = _variance(means)
    if within == 0.0:
        return 1.0 if between_over_n == 0.0 else float("inf")
    var_plus = (n - 1) / n * within + between_over_n
    return math.sqrt(var_plus / within)


def split_rhat(traces: Sequence[Sequence[float]]) -> float:
    """Return the split-chain R̂ of *traces* (works for a single chain too).

    Each trace is truncated to the shortest length *n*, then split into its
    first and last ``n // 2`` samples (the middle element is dropped when
    *n* is odd), and :func:`gelman_rubin` is applied to the ``2 m`` halves.
    Splitting makes the statistic sensitive to within-chain drift — a chain
    whose first half lives somewhere else than its second half is not
    converged even if the *m* full chains agree — and it gives the
    degenerate 1-chain case a meaningful reading.  Returns ``inf`` when the
    halves would be shorter than two samples.
    """
    if not traces:
        raise ConfigurationError("split_rhat needs at least one chain")
    n = min(len(trace) for trace in traces)
    half = n // 2
    if half < 2:
        return float("inf")
    halves: List[List[float]] = []
    for trace in traces:
        truncated = list(trace[:n])
        halves.append(truncated[:half])
        halves.append(truncated[n - half :])
    return gelman_rubin(halves)


def multichain_ess(traces: Sequence[Sequence[float]]) -> float:
    """Return the pooled effective sample size of *traces*.

    The chains are independent by construction (per-chain rng streams), so
    their effective sample sizes — each computed with the
    initial-positive-sequence truncation of :func:`effective_sample_size` —
    simply add.
    """
    return sum(effective_sample_size(trace) for trace in traces)


@dataclass
class MultiChainDiagnostics:
    """Cross-chain convergence report (produced by :func:`diagnose_chains`).

    Attributes
    ----------
    n_chains:
        Number of pooled chains.
    rhat:
        Split-chain R̂ over the post-burn-in dependency traces.
    ess:
        Pooled effective sample size of the same traces.
    acceptance_rates:
        Per-chain acceptance rates, in chain order.
    chain_lengths:
        Per-chain iteration counts ``T`` (excluding initial states).
    evaluations:
        Brandes passes actually performed across every chain (cache misses;
        with chains sharing a per-process oracle this is the true total
        work, which per-chain ``ChainResult.evaluations`` cannot report).
    burn_in:
        Leading states excluded from each chain (driver-adapted when the
        R̂-driven mode converged, else the base sampler's setting).
    converged:
        ``True``/``False`` when an R̂ target drove the run, ``None`` when
        the chains ran their full fixed length.
    rounds:
        Scheduler rounds executed (1 unless the adaptive mode segmented the
        chains).
    """

    n_chains: int
    rhat: float
    ess: float
    acceptance_rates: List[float] = field(default_factory=list)
    chain_lengths: List[int] = field(default_factory=list)
    evaluations: int = 0
    burn_in: int = 0
    converged: Optional[bool] = None
    rounds: int = 1

    def mean_acceptance_rate(self) -> float:
        """Return the unweighted mean of the per-chain acceptance rates."""
        if not self.acceptance_rates:
            return 0.0
        return sum(self.acceptance_rates) / len(self.acceptance_rates)

    def healthy(self, *, rhat_threshold: float = 1.1) -> bool:
        """Return ``True`` when the standard multi-chain rules of thumb hold."""
        return (
            self.rhat <= rhat_threshold
            and self.ess >= 10.0
            and all(0.05 <= rate <= 0.999 for rate in self.acceptance_rates)
        )


def diagnose_chains(
    chains: Sequence[ChainResult],
    *,
    evaluations: int = 0,
    converged: Optional[bool] = None,
    rounds: int = 1,
) -> MultiChainDiagnostics:
    """Return :class:`MultiChainDiagnostics` for a family of single-space chains.

    The traces are the post-burn-in dependency traces, so the statistics
    describe exactly the samples that enter the pooled estimate.
    """
    if not chains:
        raise ConfigurationError("diagnose_chains needs at least one chain")
    traces = [chain.dependency_trace() for chain in chains]
    return MultiChainDiagnostics(
        n_chains=len(chains),
        rhat=split_rhat(traces),
        ess=multichain_ess(traces),
        acceptance_rates=[chain.acceptance_rate() for chain in chains],
        chain_lengths=[chain.chain_length() for chain in chains],
        evaluations=evaluations,
        burn_in=chains[0].burn_in,
        converged=converged,
        rounds=rounds,
    )


def diagnose_chain(
    chain: ChainResult, *, graph: Optional[Graph] = None
) -> ChainDiagnostics:
    """Return :class:`ChainDiagnostics` for a single-space chain run.

    Passing *graph* additionally computes the exact total-variation distance
    to the stationary distribution, which requires a full Brandes sweep —
    only do this on small graphs.
    """
    trace = chain.dependency_trace()
    tv: Optional[float] = None
    if graph is not None:
        tv = empirical_vs_stationary(graph, chain)
    return ChainDiagnostics(
        acceptance_rate=chain.acceptance_rate(),
        effective_sample_size=effective_sample_size(trace),
        geweke_z=geweke_z_score(trace),
        lag1_autocorrelation=autocorrelation(trace, 1),
        chain_length=chain.chain_length(),
        evaluations=chain.evaluations,
        tv_distance_to_stationary=tv,
    )
