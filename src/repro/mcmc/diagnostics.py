"""Convergence diagnostics for the Metropolis-Hastings chains.

The paper's guarantees (Theorems 1 and 4) are non-asymptotic and hold
without burn-in, but practitioners still want to *see* that a chain is
healthy.  This module provides the standard MCMC diagnostics used by
benchmark E7 and by the examples:

* acceptance rate (already on the chain results; re-exported here for
  completeness of the diagnostics report);
* autocorrelation and effective sample size of the dependency trace;
* the Geweke z-score comparing the first and last portions of the trace;
* total-variation distance between the empirical visit distribution and the
  exact stationary distribution of Equation 5 (small graphs only, since the
  exact distribution needs a full Brandes sweep).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.graphs.core import Graph, Vertex
from repro.mcmc.single import ChainResult
from repro.shortest_paths.dependencies import all_dependencies_on_target

__all__ = [
    "autocorrelation",
    "effective_sample_size",
    "geweke_z_score",
    "total_variation_distance",
    "stationary_distribution",
    "empirical_vs_stationary",
    "ChainDiagnostics",
    "diagnose_chain",
]


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _variance(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return sum((v - mean) ** 2 for v in values) / (len(values) - 1)


def autocorrelation(trace: Sequence[float], lag: int) -> float:
    """Return the lag-*lag* autocorrelation of *trace* (0 when undefined)."""
    if lag < 0:
        raise ConfigurationError("lag must be non-negative")
    n = len(trace)
    if lag >= n or n < 2:
        return 0.0
    mean = _mean(trace)
    denominator = sum((v - mean) ** 2 for v in trace)
    if denominator == 0.0:
        return 0.0
    numerator = sum((trace[i] - mean) * (trace[i + lag] - mean) for i in range(n - lag))
    return numerator / denominator


def effective_sample_size(trace: Sequence[float], max_lag: Optional[int] = None) -> float:
    """Return the effective sample size of *trace*.

    Uses the initial-positive-sequence truncation: autocorrelations are
    summed until the first non-positive value.  A constant trace is reported
    as having an effective size equal to its length (there is nothing left to
    mix).
    """
    n = len(trace)
    if n == 0:
        return 0.0
    if _variance(trace) == 0.0:
        return float(n)
    if max_lag is None:
        max_lag = min(n - 1, 1000)
    rho_sum = 0.0
    for lag in range(1, max_lag + 1):
        rho = autocorrelation(trace, lag)
        if rho <= 0.0:
            break
        rho_sum += rho
    return n / (1.0 + 2.0 * rho_sum)


def geweke_z_score(
    trace: Sequence[float], first_fraction: float = 0.1, last_fraction: float = 0.5
) -> float:
    """Return the Geweke convergence z-score of *trace*.

    Compares the mean of the first ``first_fraction`` of the trace against
    the mean of the last ``last_fraction``; values within ±2 indicate the two
    segments are statistically compatible.
    """
    if not 0.0 < first_fraction < 1.0 or not 0.0 < last_fraction < 1.0:
        raise ConfigurationError("fractions must lie strictly between 0 and 1")
    if first_fraction + last_fraction > 1.0:
        raise ConfigurationError("the two fractions must not overlap")
    n = len(trace)
    if n < 4:
        return 0.0
    first = trace[: max(int(n * first_fraction), 1)]
    last = trace[-max(int(n * last_fraction), 1) :]
    var_first = _variance(first) / len(first)
    var_last = _variance(last) / len(last)
    spread = math.sqrt(var_first + var_last)
    if spread == 0.0:
        return 0.0
    return (_mean(first) - _mean(last)) / spread


def total_variation_distance(p: Dict[Vertex, float], q: Dict[Vertex, float]) -> float:
    """Return the total-variation distance between two distributions over vertices."""
    support = set(p) | set(q)
    return 0.5 * sum(abs(p.get(v, 0.0) - q.get(v, 0.0)) for v in support)


def stationary_distribution(graph: Graph, r: Vertex) -> Dict[Vertex, float]:
    """Return the exact stationary distribution of the single-space chain (Equation 5)."""
    deltas = all_dependencies_on_target(graph, r)
    total = sum(deltas.values())
    if total <= 0.0:
        raise ConfigurationError(
            f"vertex {r!r} has betweenness 0; the stationary distribution is undefined"
        )
    return {v: d / total for v, d in deltas.items() if d > 0.0}


def empirical_vs_stationary(graph: Graph, chain: ChainResult) -> float:
    """Return the TV distance between the chain's visit frequencies and Equation 5."""
    return total_variation_distance(
        chain.empirical_distribution(), stationary_distribution(graph, chain.target)
    )


@dataclass
class ChainDiagnostics:
    """Bundle of diagnostics for one chain run (produced by :func:`diagnose_chain`)."""

    acceptance_rate: float
    effective_sample_size: float
    geweke_z: float
    lag1_autocorrelation: float
    chain_length: int
    evaluations: int
    tv_distance_to_stationary: Optional[float] = None

    def healthy(self) -> bool:
        """Return ``True`` when the standard rules of thumb are satisfied.

        Acceptance rate not degenerate (between 5% and 99.9%), Geweke within
        ±2, and an effective sample size of at least 10.
        """
        return (
            0.05 <= self.acceptance_rate <= 0.999
            and abs(self.geweke_z) <= 2.0
            and self.effective_sample_size >= 10.0
        )


def diagnose_chain(
    chain: ChainResult, *, graph: Optional[Graph] = None
) -> ChainDiagnostics:
    """Return :class:`ChainDiagnostics` for a single-space chain run.

    Passing *graph* additionally computes the exact total-variation distance
    to the stationary distribution, which requires a full Brandes sweep —
    only do this on small graphs.
    """
    trace = chain.dependency_trace()
    tv: Optional[float] = None
    if graph is not None:
        tv = empirical_vs_stationary(graph, chain)
    return ChainDiagnostics(
        acceptance_rate=chain.acceptance_rate(),
        effective_sample_size=effective_sample_size(trace),
        geweke_z=geweke_z_score(trace),
        lag1_autocorrelation=autocorrelation(trace, 1),
        chain_length=chain.chain_length(),
        evaluations=chain.evaluations,
        tv_distance_to_stationary=tv,
    )
