"""Dependency-score evaluation with caching for the Metropolis-Hastings samplers.

Every Metropolis-Hastings acceptance test (Equations 6 and 17 of the paper)
needs dependency scores :math:`\\delta_{v\\bullet}(r)`.  One evaluation costs a
full Brandes pass from *v* — ``O(|E|)`` for unweighted graphs — but that pass
produces the dependency of *v* on **every** vertex at once.  The cache in
this module therefore stores whole dependency vectors keyed by the source
vertex, which makes

* revisits of a chain state free (the chain stays put on rejection), and
* the joint-space sampler able to evaluate :math:`\\delta_{v\\bullet}(r_i)`
  for every ``r_i ∈ R`` from a single pass.

Caching is an implementation choice, not part of the algorithm; benchmark E8
ablates it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.graphs.core import Graph, Vertex
from repro.shortest_paths.dependencies import accumulate_dependencies, spd_builder

__all__ = ["DependencyOracle"]


class DependencyOracle:
    """Evaluate (and optionally cache) dependency vectors of source vertices.

    Parameters
    ----------
    graph:
        The graph all evaluations refer to.  The oracle assumes the graph is
        not mutated while the oracle is alive.
    cache_size:
        Maximum number of source vertices whose dependency vectors are kept
        (LRU eviction).  ``0`` disables caching entirely; ``None`` means
        unbounded.
    """

    def __init__(self, graph: Graph, *, cache_size: Optional[int] = None) -> None:
        self._graph = graph
        self._build = spd_builder(graph)
        self._cache: "OrderedDict[Vertex, Dict[Vertex, float]]" = OrderedDict()
        self._cache_size = cache_size
        self.evaluations = 0  #: number of Brandes passes actually performed
        self.lookups = 0  #: number of dependency queries answered

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The graph the oracle evaluates on."""
        return self._graph

    @property
    def cache_enabled(self) -> bool:
        """Whether dependency vectors are being cached."""
        return self._cache_size is None or self._cache_size > 0

    def hit_rate(self) -> float:
        """Return the fraction of queries answered without a Brandes pass."""
        if self.lookups == 0:
            return 0.0
        return 1.0 - self.evaluations / self.lookups

    # ------------------------------------------------------------------
    def dependency_vector(self, source: Vertex) -> Dict[Vertex, float]:
        """Return ``{target: delta_{source.}(target)}`` for every target."""
        self.lookups += 1
        if self.cache_enabled and source in self._cache:
            self._cache.move_to_end(source)
            return self._cache[source]
        self.evaluations += 1
        spd = self._build(self._graph, source)
        deltas = accumulate_dependencies(spd)
        if self.cache_enabled:
            self._cache[source] = deltas
            if self._cache_size is not None and len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return deltas

    def dependency(self, source: Vertex, target: Vertex) -> float:
        """Return :math:`\\delta_{source\\bullet}(target)` (0 when source == target)."""
        if source == target:
            return 0.0
        return self.dependency_vector(source).get(target, 0.0)

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every cached dependency vector and reset the counters."""
        self._cache.clear()
        self.evaluations = 0
        self.lookups = 0
