"""Dependency-score evaluation with caching for the Metropolis-Hastings samplers.

Every Metropolis-Hastings acceptance test (Equations 6 and 17 of the paper)
needs dependency scores :math:`\\delta_{v\\bullet}(r)`.  One evaluation costs a
full Brandes pass from *v* — ``O(|E|)`` for unweighted graphs — but that pass
produces the dependency of *v* on **every** vertex at once.  The cache in
this module therefore stores whole dependency vectors keyed by the source
vertex, which makes

* revisits of a chain state free (the chain stays put on rejection), and
* the joint-space sampler able to evaluate :math:`\\delta_{v\\bullet}(r_i)`
  for every ``r_i ∈ R`` from a single pass.

With the CSR backend (the default whenever numpy is available) the Brandes
pass runs on the vectorised kernels of :mod:`repro.shortest_paths` and the
cached vector is a dense ``float64`` array indexed by CSR vertex index;
point queries read one array element and the dict view is materialised only
when a caller explicitly asks for a vertex-keyed vector.

Caching is an implementation choice, not part of the algorithm; benchmark E8
ablates it.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import ConfigurationError
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import resolve_backend
from repro.shortest_paths.dependencies import (
    accumulate_dependencies,
    csr_source_dependencies,
    spd_builder,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.execution.shared_cache import SharedDependencyStore

__all__ = ["DependencyOracle"]


class DependencyOracle:
    """Evaluate (and optionally cache) dependency vectors of source vertices.

    Parameters
    ----------
    graph:
        The graph all evaluations refer to.  The oracle snapshots the graph
        through :meth:`Graph.csr` when the CSR backend is active and assumes
        the graph is not mutated while the oracle is alive.
    cache_size:
        Maximum number of source vertices whose dependency vectors are kept
        (LRU eviction).  ``0`` disables caching entirely; ``None`` means
        unbounded.
    backend:
        ``"auto"`` (default), ``"dict"`` or ``"csr"``; see
        :func:`repro.graphs.csr.resolve_backend`.
    batch_size:
        ``None`` (default) keeps the original per-source evaluation path
        everywhere.  An ``int >= 1`` switches the oracle to the batched
        kernels of :mod:`repro.shortest_paths.batch` for **both**
        :meth:`prefetch` blocks (that many sources per traversal) and
        point-query misses (a K=1 batch) — the batch paths compute every
        column independently, so a vector is bit-identical whether it was
        prefetched or recomputed after eviction, which is what keeps a
        chain's estimate independent of the batch size.  (The batch paths
        may differ from the ``None`` path in the last ulp when scipy's
        sparse-matmul sweep is active, which is why ``None`` remains the
        default: legacy callers keep their exact pre-engine values.)
    shared_store:
        Optional cross-process
        :class:`~repro.execution.shared_cache.SharedDependencyStore`.  When
        attached, the oracle consults it between the private cache and the
        kernels — a vector another worker already published is copied out
        instead of recomputed — and publishes every vector it computes
        itself, so one Brandes pass serves every chain of a multi-chain run
        whatever process it lives in.  CSR-only: the arena's rows are dense
        ``float64`` vectors; attaching a store to a dict-backed oracle
        warns and falls back to the private cache alone.  Sharing is
        result-neutral by construction — a published row is bit-identical
        to what the reader would have computed — so only the pass counters
        (never a chain) depend on it.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        cache_size: Optional[int] = None,
        backend: str = "auto",
        batch_size: Optional[int] = None,
        shared_store: Optional["SharedDependencyStore"] = None,
    ) -> None:
        self._graph = graph
        self._backend = resolve_backend(backend)
        if self._backend == "csr":
            self._csr = graph.csr()
            self._build = None
        else:
            self._csr = None
            self._build = spd_builder(graph)
        if shared_store is not None:
            if self._backend != "csr":
                warnings.warn(
                    "the shared dependency store requires the CSR backend; "
                    "falling back to the private cache",
                    RuntimeWarning,
                    stacklevel=2,
                )
                shared_store = None
            elif shared_store.num_vertices != self._csr.number_of_vertices():
                raise ConfigurationError(
                    f"shared store is sized for {shared_store.num_vertices} "
                    f"vertices but the graph has {self._csr.number_of_vertices()}"
                )
        self._shared = shared_store
        self._cache: "OrderedDict[Vertex, object]" = OrderedDict()
        self._cache_size = cache_size
        self._batch_size = None if batch_size is None else max(int(batch_size), 1)
        self.evaluations = 0  #: number of Brandes passes actually performed
        self.lookups = 0  #: number of dependency queries answered
        #: Brandes passes performed by :meth:`prefetch` (a subset of
        #: :attr:`evaluations`) — prefetched passes answer no lookup at the
        #: time they run, so :meth:`hit_rate` must not bill them as misses.
        self.prefetch_evaluations = 0
        #: Vectors served from the cross-process shared store (0 without one).
        self.shared_hits = 0

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The graph the oracle evaluates on."""
        return self._graph

    @property
    def backend(self) -> str:
        """The resolved backend the oracle evaluates with (``"dict"`` or ``"csr"``)."""
        return self._backend

    @property
    def cache_enabled(self) -> bool:
        """Whether dependency vectors are being cached."""
        return self._cache_size is None or self._cache_size > 0

    @property
    def shared_store(self) -> Optional["SharedDependencyStore"]:
        """The attached cross-process store, or ``None``."""
        return self._shared

    def hit_rate(self) -> float:
        """Return the fraction of lookups answered without a Brandes pass.

        Only *lookup-serving* passes count as misses:
        :attr:`prefetch_evaluations` are passes run speculatively before any
        query existed, so subtracting them keeps the rate honest (an earlier
        revision divided the raw :attr:`evaluations` — which include
        prefetched passes — by :attr:`lookups` and returned negative rates
        after a prefetch-then-hit sequence).  Clamped to ``[0, 1]`` so no
        counter interleaving can push it outside the unit interval.
        """
        if self.lookups == 0:
            return 0.0
        misses = self.evaluations - self.prefetch_evaluations
        return min(max(1.0 - misses / self.lookups, 0.0), 1.0)

    # ------------------------------------------------------------------
    def prefetch(self, sources) -> int:
        """Batch-compute and cache the dependency vectors of *sources*.

        The entry point of the Metropolis-Hastings batch-prefetch path:
        samplers with an independence proposal know their upcoming proposal
        sources ahead of time and hand them over in blocks, so the Brandes
        passes run ``batch_size`` sources per batched traversal instead of
        one pass per acceptance test.  Already-cached (and duplicate)
        sources are skipped; a disabled cache makes this a no-op because
        there is nowhere to keep the vectors.  A bounded cache fills its
        **free slots** first and beyond them claims at most **half the
        capacity**, so a prefetch evicts nothing but the LRU half: the MRU
        entry provably survives every block (``max(free, C // 2) <= C - 1``
        whenever anything is cached), and with it the recently-touched
        vectors — in particular the one of the state the chain currently
        sits on, which an earlier revision flushed by capping at raw
        capacity, re-paying a Brandes pass on every later revisit.  The
        half-capacity floor is what keeps the *batched* kernels running on a
        full cache (a free-slots-only cap would degenerate to solitary
        point-query passes for the rest of the chain).  With a shared store
        attached, sources already published by another worker are copied in
        instead of computed, and every freshly computed vector is
        published.  Returns the number of passes performed (each counted in
        both :attr:`evaluations` and :attr:`prefetch_evaluations`).
        """
        if not self.cache_enabled:
            return 0
        missing = [s for s in dict.fromkeys(sources) if s not in self._cache]
        if self._cache_size is not None:
            free = self._cache_size - len(self._cache)
            allowance = max(free, 0 if not self._cache else self._cache_size // 2)
            missing = missing[:allowance]
        if not missing:
            return 0
        if self._shared is not None:
            pending = []
            for s in missing:
                row = self._shared.get(self._csr.index_of(s))
                if row is not None:
                    self.shared_hits += 1
                    self._store(s, row)
                else:
                    pending.append(s)
            missing = pending
            if not missing:
                return 0
        if self._backend == "csr" and self._batch_size is not None:
            from repro.shortest_paths.batch import batch_source_dependencies
            from repro.shortest_paths.dependencies import iter_batches

            index_of = self._csr.index_of
            for chunk in iter_batches(missing, self._batch_size):
                deltas = batch_source_dependencies(
                    self._csr, [index_of(s) for s in chunk]
                )
                for row, s in enumerate(chunk):
                    # Copy the row so the (K, n) batch matrix can be freed.
                    self._publish_and_store(s, deltas[row].copy())
        elif self._backend == "csr":
            # Not batch-configured: warm the cache with the same point
            # kernel `_raw_vector` uses, so a vector never depends on
            # whether it was prefetched or recomputed after eviction.
            for s in missing:
                self._publish_and_store(
                    s, csr_source_dependencies(self._csr, self._csr.index_of(s))
                )
        else:
            for s in missing:
                self._store(s, accumulate_dependencies(self._build(self._graph, s)))
        self.evaluations += len(missing)
        self.prefetch_evaluations += len(missing)
        return len(missing)

    def _publish_and_store(self, source: Vertex, vector: object) -> None:
        """Publish a freshly computed CSR vector to the shared store, then cache it."""
        if self._shared is not None:
            self._shared.put(self._csr.index_of(source), vector)
        self._store(source, vector)

    def _store(self, source: Vertex, vector: object) -> None:
        self._cache[source] = vector
        if self._cache_size is not None and len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def _raw_vector(self, source: Vertex):
        """Return the cached per-source vector (array or dict, backend-shaped).

        Lookup order: private cache (lock-free), then the cross-process
        shared store (a locked row copy, counted in :attr:`shared_hits` and
        re-cached privately so revisits stay lock-free), then the kernels —
        and a vector the kernels produce is published to the shared store so
        no other worker pays the same pass again.
        """
        self.lookups += 1
        if self.cache_enabled and source in self._cache:
            self._cache.move_to_end(source)
            return self._cache[source]
        if self._shared is not None:
            row = self._shared.get(self._csr.index_of(source))
            if row is not None:
                self.shared_hits += 1
                if self.cache_enabled:
                    self._store(source, row)
                return row
        self.evaluations += 1
        if self._backend == "csr":
            if self._batch_size is not None:
                # Batch-configured oracle: a K=1 batch, so a recomputed
                # vector is bit-identical to its prefetched twin (batch
                # columns are composition-independent).
                from repro.shortest_paths.batch import batch_source_dependencies

                vector: object = batch_source_dependencies(
                    self._csr, [self._csr.index_of(source)]
                )[0].copy()
            else:
                vector = csr_source_dependencies(
                    self._csr, self._csr.index_of(source)
                )
        else:
            spd = self._build(self._graph, source)
            vector = accumulate_dependencies(spd)
        if self._shared is not None:
            self._shared.put(self._csr.index_of(source), vector)
        if self.cache_enabled:
            self._store(source, vector)
        return vector

    def dependency_vector(self, source: Vertex) -> Dict[Vertex, float]:
        """Return ``{target: delta_{source.}(target)}`` for every target.

        On the CSR backend this materialises a vertex-keyed dict from the
        cached array (boundary conversion); point queries should prefer
        :meth:`dependency`, which reads a single array element.
        """
        vector = self._raw_vector(source)
        if self._backend == "csr":
            return self._csr.array_to_vertex_map(vector)
        return vector

    def dependency(self, source: Vertex, target: Vertex) -> float:
        """Return :math:`\\delta_{source\\bullet}(target)`.

        0 when ``source == target`` and — matching the dict backend's
        ``.get(target, 0.0)`` contract — when *target* is not a vertex of
        the graph at all.
        """
        if source == target:
            return 0.0
        vector = self._raw_vector(source)
        if self._backend == "csr":
            index = self._csr.find_index(target)
            return 0.0 if index is None else float(vector[index])
        return vector.get(target, 0.0)

    def dependencies_for(self, source: Vertex, targets) -> Dict[Vertex, float]:
        """Return ``{t: delta_{source.}(t)}`` for the given *targets* only.

        One Brandes pass (or cache hit) serves every target — the joint-space
        chain reads its whole reference set this way without materialising a
        full vertex-keyed vector.  Unknown targets read as 0.0 on both
        backends.
        """
        vector = self._raw_vector(source)
        if self._backend == "csr":
            find_index = self._csr.find_index
            result: Dict[Vertex, float] = {}
            for t in targets:
                index = find_index(t)
                result[t] = (
                    0.0 if t == source or index is None else float(vector[index])
                )
            return result
        return {t: (0.0 if t == source else vector.get(t, 0.0)) for t in targets}

    # ------------------------------------------------------------------
    def apply_delta(self, affected_mask) -> tuple:
        """Re-bind to the mutated graph, evicting only affected cached vectors.

        The delta-scoped alternative to discarding the oracle on mutation:
        *affected_mask* is the boolean per-CSR-index mask (over the
        post-mutation snapshot) that
        :meth:`repro.execution.runtime.ExecutionContext.refresh` computed
        for the same journal window.  Cached vectors of unaffected sources
        are bit-identical on the mutated graph — the over-approximation
        contract of :mod:`repro.incremental` — so retaining them can never
        change a result; affected ones are dropped and re-snapshotting the
        CSR view re-binds future evaluations to the new structure.  The
        caller guarantees the vertex set is unchanged (vertex ops force the
        full path upstream).  Returns ``(evicted, retained)`` counts.
        Counters survive: they are lifetime work accounting, not graph
        state.
        """
        if self._backend == "csr":
            new_csr = self._graph.csr()
            if (
                self._shared is not None
                and self._shared.num_vertices != new_csr.number_of_vertices()
            ):
                raise ConfigurationError(
                    "apply_delta across a vertex-count change; the caller must "
                    "rebuild the oracle instead"
                )
            self._csr = new_csr
            index_of = new_csr.find_index
        else:
            self._build = spd_builder(self._graph)
            order = {v: i for i, v in enumerate(self._graph.vertices())}
            index_of = order.get
        evicted = 0
        for source in list(self._cache):
            index = index_of(source)
            if index is None or bool(affected_mask[index]):
                del self._cache[source]
                evicted += 1
        return evicted, len(self._cache)

    def clear(self) -> None:
        """Drop every *private* cached vector and reset the counters.

        The cross-process shared store is deliberately left untouched: its
        rows belong to the whole run (other workers may be reading them),
        and its lifecycle is owned by the driver that created it.
        """
        self._cache.clear()
        self.evaluations = 0
        self.lookups = 0
        self.prefetch_evaluations = 0
        self.shared_hits = 0
