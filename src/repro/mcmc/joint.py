"""The joint-space Metropolis-Hastings sampler (Section 4.3 of the paper).

Given a graph *G* and a set ``R ⊂ V(G)``, the sampler runs a Markov chain on
the joint space ``R × V(G)``.  Each state is a pair ``⟨r, v⟩``; at every
iteration a candidate pair is drawn uniformly (``r'`` from R, ``v'`` from
V(G)) and accepted with probability
``min{1, delta_{v'.}(r') / delta_{v.}(r)}`` (Equation 17).  The unique
stationary distribution is Equation 18, and restricting the chain to the
samples whose first component equals a fixed ``r_j`` yields an Independence
Metropolis-Hastings chain with the Equation 5 stationary distribution for
``r_j`` — the observation behind Theorem 4.

From the collected samples the class estimates

* the **relative betweenness score** ``BC_{r_j}(r_i)`` of Equation 23, as the
  sample average of ``min{1, delta_{v.}(r_i) / delta_{v.}(r_j)}`` over the
  multiset ``M(j)`` (Equation 22's numerator), and
* the **betweenness ratio** ``BC(r_i)/BC(r_j)`` as the ratio of the two
  relative scores (Equation 22, justified by Theorem 3).

The same technique is used in statistical physics to estimate free-energy
differences (Bennett 1976), which the paper cites as its inspiration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro._rng import RandomState, ensure_rng, spawn_rng
from repro.errors import ConfigurationError, SamplingError
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import resolve_backend
from repro.mcmc.estimates import DependencyOracle
from repro.samplers.base import ExecutionPlanMixin, timed

__all__ = [
    "JointChainState",
    "JointChainResult",
    "RelativeBetweennessEstimate",
    "JointSpaceMHSampler",
]


@dataclass
class JointChainState:
    """One state ⟨r, v⟩ of the joint chain.

    ``dependencies`` holds the dependency score of the source *v* on every
    vertex of the reference set R (one Brandes pass yields them all), so the
    relative-betweenness estimators never need to re-evaluate anything.
    """

    iteration: int
    r: Vertex
    v: Vertex
    dependencies: Dict[Vertex, float]
    accepted: bool

    @property
    def dependency(self) -> float:
        """Return δ_{v·}(r) for this state's own reference vertex."""
        return self.dependencies.get(self.r, 0.0)


@dataclass
class JointChainResult:
    """Full record of one joint-space chain run."""

    reference_set: List[Vertex]
    states: List[JointChainState]
    num_vertices: int
    burn_in: int = 0
    evaluations: int = 0

    # ------------------------------------------------------------------
    def chain_length(self) -> int:
        """Return the number of iterations ``T`` (excluding the initial state)."""
        return max(len(self.states) - 1, 0)

    def kept_states(self) -> List[JointChainState]:
        """Return the states used for estimation (after burn-in)."""
        return self.states[self.burn_in :]

    def acceptance_rate(self) -> float:
        """Return the fraction of accepted proposals."""
        proposals = self.states[1:]
        if not proposals:
            return 0.0
        return sum(1 for s in proposals if s.accepted) / len(proposals)

    def samples_for(self, r: Vertex) -> List[JointChainState]:
        """Return the multiset ``M(i)`` of kept states whose r-component equals *r*."""
        return [s for s in self.kept_states() if s.r == r]

    def sample_counts(self) -> Dict[Vertex, int]:
        """Return ``{r: |M(r)|}`` for every reference vertex."""
        counts = {r: 0 for r in self.reference_set}
        for state in self.kept_states():
            counts[state.r] += 1
        return counts

    # ------------------------------------------------------------------
    def relative_betweenness(self, ri: Vertex, rj: Vertex) -> float:
        """Return the estimate of ``BC_{rj}(ri)`` (Equation 23) from the multiset ``M(j)``.

        Raises
        ------
        SamplingError
            If the chain never visited a state with r-component ``rj``.
        """
        self._validate_pair(ri, rj)
        samples = self.samples_for(rj)
        if not samples:
            raise SamplingError(
                f"the chain produced no samples with reference vertex {rj!r}; "
                "run a longer chain"
            )
        total = 0.0
        for state in samples:
            di = state.dependencies.get(ri, 0.0)
            dj = state.dependencies.get(rj, 0.0)
            if dj > 0.0:
                total += min(1.0, di / dj)
            elif di > 0.0:
                total += 1.0
        return total / len(samples)

    def ratio_estimate(self, ri: Vertex, rj: Vertex) -> float:
        """Return the Equation 22 estimate of ``BC(ri) / BC(rj)``."""
        numerator = self.relative_betweenness(ri, rj)
        denominator = self.relative_betweenness(rj, ri)
        if denominator <= 0.0:
            raise SamplingError(
                f"the estimated relative betweenness of {rj!r} w.r.t. {ri!r} is zero; "
                "the ratio estimate of Equation 22 is undefined"
            )
        return numerator / denominator

    def relative_matrix(self) -> Dict[Vertex, Dict[Vertex, float]]:
        """Return ``{ri: {rj: BC_rj(ri)}}`` for every ordered pair of reference vertices."""
        matrix: Dict[Vertex, Dict[Vertex, float]] = {}
        for ri in self.reference_set:
            matrix[ri] = {}
            for rj in self.reference_set:
                if ri == rj:
                    matrix[ri][rj] = 1.0
                    continue
                try:
                    matrix[ri][rj] = self.relative_betweenness(ri, rj)
                except SamplingError:
                    matrix[ri][rj] = float("nan")
        return matrix

    def ranking(self) -> List[Vertex]:
        """Return the reference vertices ranked by estimated betweenness (descending).

        The score used for ranking is the average relative betweenness of
        each vertex against every other reference vertex, which Theorem 3
        makes consistent with ranking by true betweenness as the chain grows.
        """
        matrix = self.relative_matrix()
        scores: Dict[Vertex, float] = {}
        for ri in self.reference_set:
            values = [
                matrix[ri][rj]
                for rj in self.reference_set
                if rj != ri and matrix[ri][rj] == matrix[ri][rj]  # filter NaN
            ]
            scores[ri] = sum(values) / len(values) if values else 0.0
        return sorted(self.reference_set, key=lambda r: scores[r], reverse=True)

    # ------------------------------------------------------------------
    def _validate_pair(self, ri: Vertex, rj: Vertex) -> None:
        if ri not in self.reference_set or rj not in self.reference_set:
            raise ConfigurationError(
                f"both vertices must belong to the reference set; got {ri!r}, {rj!r}"
            )


@dataclass
class RelativeBetweennessEstimate:
    """High-level result bundle returned by :meth:`JointSpaceMHSampler.estimate_relative`."""

    reference_set: List[Vertex]
    relative: Dict[Vertex, Dict[Vertex, float]]
    ratios: Dict[Tuple[Vertex, Vertex], float]
    sample_counts: Dict[Vertex, int]
    acceptance_rate: float
    samples: int
    elapsed_seconds: float
    chain: JointChainResult
    #: Execution stamp mirroring ``SingleEstimate.diagnostics``: the
    #: resolved backend, plus ``n_jobs`` / ``batch_size`` only when the
    #: execution engine was engaged.
    diagnostics: Dict[str, object] = field(default_factory=dict)

    def ranking(self) -> List[Vertex]:
        """Return the reference vertices ranked by estimated betweenness (descending)."""
        return self.chain.ranking()


class JointSpaceMHSampler(ExecutionPlanMixin):
    """Metropolis-Hastings estimator of relative betweenness scores over a set R."""

    name = "mh-joint"

    def __init__(
        self,
        *,
        burn_in: int = 0,
        cache_size: Optional[int] = None,
        backend: str = "auto",
        batch_size: Optional[int] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        if burn_in < 0:
            raise ConfigurationError("burn_in must be non-negative")
        self.burn_in = int(burn_in)
        self.cache_size = cache_size
        #: Traversal backend handed to the :class:`DependencyOracle`; the
        #: pair draws are positional (``members[i]`` / ``vertices[i]``), so
        #: the rng stream is identical on both backends.
        self.backend = backend
        #: Execution-engine knobs, with the same semantics as
        #: :class:`~repro.mcmc.single.SingleSpaceMHSampler`: the joint
        #: proposal ``⟨r', v'⟩`` is an independence proposal, so with
        #: ``batch_size`` set the whole candidate sequence is drawn upfront
        #: from a child rng stream and the oracle batch-prefetches the
        #: upcoming ``v'`` dependency vectors; ``n_jobs`` is accepted and
        #: unused (the chain is sequential).
        self.batch_size = batch_size
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------
    def build_oracle(self, graph: Graph, *, shared_store=None) -> DependencyOracle:
        """Return a :class:`DependencyOracle` configured like this sampler's private one.

        Shared by :meth:`run_chain` and the multi-chain worker payload (see
        :meth:`repro.mcmc.single.SingleSpaceMHSampler.build_oracle`, which
        also documents the *shared_store* hook).
        """
        plan = self._plan()
        return DependencyOracle(
            graph,
            cache_size=self.cache_size,
            backend=self.backend,
            batch_size=plan.batch_size if plan is not None else None,
            shared_store=shared_store,
        )

    def run_chain(
        self,
        graph: Graph,
        reference_set: Iterable[Vertex],
        num_iterations: int,
        *,
        seed: RandomState = None,
        oracle: Optional[DependencyOracle] = None,
        initial_state: Optional[Tuple[Vertex, Vertex]] = None,
    ) -> JointChainResult:
        """Run the joint chain for ``T = num_iterations`` iterations.

        Parameters
        ----------
        reference_set:
            The set R of vertices whose relative scores are wanted; at least
            two distinct vertices.
        initial_state:
            Optional fixed initial pair ``(r0, v0)``; by default both
            components are drawn uniformly at random, as in the paper.
        """
        members = list(dict.fromkeys(reference_set))
        if len(members) < 2:
            raise ConfigurationError("the reference set must contain at least two vertices")
        for r in members:
            graph.validate_vertex(r)
        if num_iterations < 1:
            raise ConfigurationError("num_iterations must be at least 1")
        if self.burn_in >= num_iterations + 1:
            raise ConfigurationError("burn_in must be smaller than the chain length")
        rng = ensure_rng(seed)
        plan = self._plan()
        if oracle is None:
            oracle = self.build_oracle(graph)
        vertices = graph.vertices()
        if len(vertices) < 2:
            raise SamplingError("the graph must contain at least two vertices")

        pair_proposals: Optional[List[Tuple[Vertex, Vertex]]] = None
        if plan is not None:
            # The joint proposal is an independence proposal: pre-draw the
            # ⟨r', v'⟩ sequence from a child stream so the oracle can
            # batch-prefetch the upcoming v' dependency vectors.
            proposal_rng = spawn_rng(rng, 0)
            pair_proposals = [
                (
                    members[proposal_rng.randrange(len(members))],
                    vertices[proposal_rng.randrange(len(vertices))],
                )
                for _ in range(num_iterations)
            ]

        if initial_state is None:
            current_r = members[rng.randrange(len(members))]
            current_v = vertices[rng.randrange(len(vertices))]
        else:
            current_r, current_v = initial_state
            if current_r not in members:
                raise ConfigurationError("the initial r-component must belong to the reference set")
            graph.validate_vertex(current_v)

        evaluations_before = oracle.evaluations
        current_deps = self._restricted_dependencies(oracle, current_v, members)
        states: List[JointChainState] = [
            JointChainState(
                iteration=0,
                r=current_r,
                v=current_v,
                dependencies=current_deps,
                accepted=True,
            )
        ]
        prefetch_block = plan.batch_size if plan is not None else 1
        for t in range(1, num_iterations + 1):
            if pair_proposals is not None:
                candidate_r, candidate_v = pair_proposals[t - 1]
                if (t - 1) % prefetch_block == 0:
                    oracle.prefetch(
                        [v for _, v in pair_proposals[t - 1 : t - 1 + prefetch_block]]
                    )
            else:
                candidate_r = members[rng.randrange(len(members))]
                candidate_v = vertices[rng.randrange(len(vertices))]
            candidate_deps = self._restricted_dependencies(oracle, candidate_v, members)
            accepted = self._accept(
                states[-1].dependency, candidate_deps.get(candidate_r, 0.0), rng
            )
            if accepted:
                current_r, current_v, current_deps = candidate_r, candidate_v, candidate_deps
            states.append(
                JointChainState(
                    iteration=t,
                    r=current_r,
                    v=current_v,
                    dependencies=current_deps,
                    accepted=accepted,
                )
            )
        # This run's own pass delta (not the oracle's lifetime total), so a
        # warm session oracle never inflates a fresh chain's bill; equal to
        # the total for a fresh oracle.
        return JointChainResult(
            reference_set=members,
            states=states,
            num_vertices=graph.number_of_vertices(),
            burn_in=self.burn_in,
            evaluations=oracle.evaluations - evaluations_before,
        )

    @staticmethod
    def _restricted_dependencies(
        oracle: DependencyOracle, source: Vertex, members: Sequence[Vertex]
    ) -> Dict[Vertex, float]:
        """Return δ_{source·}(r) for every r in the reference set (one Brandes pass).

        :meth:`DependencyOracle.dependencies_for` serves the whole reference
        set from one pass (or cache hit); on the CSR backend each member is a
        single array read and no full vertex-keyed dict is materialised.
        """
        return oracle.dependencies_for(source, members)

    @staticmethod
    def _accept(current_delta: float, candidate_delta: float, rng) -> bool:
        """Equation 17 acceptance; zero-probability current states always move.

        One uniform draw per proposal, unconditionally — see
        :meth:`repro.mcmc.single.SingleSpaceMHSampler._accept` for why a
        conditional draw breaks cross-backend rng-stream identity.
        """
        u = rng.random()
        if current_delta <= 0.0:
            return True
        ratio = candidate_delta / current_delta
        return ratio >= 1.0 or u < ratio

    # ------------------------------------------------------------------
    def estimate_relative(
        self,
        graph: Graph,
        reference_set: Iterable[Vertex],
        num_samples: int,
        *,
        seed: RandomState = None,
        oracle: Optional[DependencyOracle] = None,
    ) -> RelativeBetweennessEstimate:
        """Run the chain and return all pairwise relative scores and ratio estimates."""
        with timed() as clock:
            chain = self.run_chain(
                graph, reference_set, num_samples, seed=seed, oracle=oracle
            )
            relative = chain.relative_matrix()
            ratios: Dict[Tuple[Vertex, Vertex], float] = {}
            for ri in chain.reference_set:
                for rj in chain.reference_set:
                    if ri == rj:
                        continue
                    try:
                        ratios[(ri, rj)] = chain.ratio_estimate(ri, rj)
                    except SamplingError:
                        ratios[(ri, rj)] = float("nan")
        diagnostics: Dict[str, object] = {"backend": resolve_backend(self.backend)}
        plan = self._plan()
        if plan is not None:
            diagnostics.update(n_jobs=plan.n_jobs, batch_size=plan.batch_size)
        return RelativeBetweennessEstimate(
            reference_set=chain.reference_set,
            relative=relative,
            ratios=ratios,
            sample_counts=chain.sample_counts(),
            acceptance_rate=chain.acceptance_rate(),
            samples=num_samples,
            elapsed_seconds=clock.elapsed,
            chain=chain,
            diagnostics=diagnostics,
        )
