"""The paper's contribution: Metropolis-Hastings samplers for betweenness estimation."""

from repro.mcmc.bounds import (
    MuStatistics,
    epsilon_for_samples,
    mcmc_error_probability,
    mu_of_vertex,
    mu_statistics,
    required_samples,
)
from repro.mcmc.diagnostics import (
    ChainDiagnostics,
    autocorrelation,
    diagnose_chain,
    effective_sample_size,
    empirical_vs_stationary,
    geweke_z_score,
    stationary_distribution,
    total_variation_distance,
)
from repro.mcmc.edge import EdgeDependencyOracle, EdgeMHSampler, exact_edge_dependency_vector
from repro.mcmc.estimates import DependencyOracle
from repro.mcmc.joint import (
    JointChainResult,
    JointChainState,
    JointSpaceMHSampler,
    RelativeBetweennessEstimate,
)
from repro.mcmc.single import (
    ESTIMATORS,
    PROPOSALS,
    ChainResult,
    ChainState,
    SingleSpaceMHSampler,
)

__all__ = [
    "SingleSpaceMHSampler",
    "ChainResult",
    "ChainState",
    "PROPOSALS",
    "ESTIMATORS",
    "JointSpaceMHSampler",
    "JointChainResult",
    "JointChainState",
    "RelativeBetweennessEstimate",
    "DependencyOracle",
    "EdgeMHSampler",
    "EdgeDependencyOracle",
    "exact_edge_dependency_vector",
    "MuStatistics",
    "mu_statistics",
    "mu_of_vertex",
    "mcmc_error_probability",
    "required_samples",
    "epsilon_for_samples",
    "ChainDiagnostics",
    "diagnose_chain",
    "autocorrelation",
    "effective_sample_size",
    "geweke_z_score",
    "total_variation_distance",
    "stationary_distribution",
    "empirical_vs_stationary",
]
