"""The single-space Metropolis-Hastings sampler (Section 4.2 of the paper).

Given a graph *G* and a target vertex *r*, the sampler runs a Markov chain on
the state space ``V(G)``:

1. the initial state ``v_0`` is chosen uniformly at random;
2. at each iteration a candidate ``v'`` is proposed (uniformly at random in
   the paper's formulation — an *Independence* Metropolis-Hastings chain);
3. the move is accepted with probability
   ``min{1, delta_{v'.}(r) / delta_{v.}(r)}`` (Equation 6).

The stationary distribution is the optimal source distribution of
Equation 5, and the betweenness estimate (Equation 7) is the chain average of
``f(v) = delta_{v.}(r) / (|V| - 1)`` over the ``T + 1`` chain states
(a rejected proposal repeats the current state, as in any Metropolis-Hastings
average).  Theorem 1 gives the (ε, δ) guarantee; the corresponding
quantities live in :mod:`repro.mcmc.bounds`.

A note on the estimator (reproduction finding)
----------------------------------------------
Equation 7 averages ``f`` over the Markov-chain states, whose stationary
distribution is the dependency-proportional distribution of Equation 5 — so
the chain average converges to the *π-weighted* mean of the dependency
scores, not to their uniform mean ``BC(r)``.  The two coincide exactly when
the dependency scores are flat across sources (µ(r) = 1, e.g. perfectly
balanced separators) and the gap grows with their variance.  The
reproduction therefore exposes three estimator read-outs:

* ``"chain"`` (default) — the paper's Equation 7, faithful to the published
  algorithm;
* ``"proposal"`` — a corrected, unbiased variant that averages the
  dependency scores of the *proposed* candidates (which are i.i.d. uniform
  in the Independence chain and are evaluated anyway for the acceptance
  test), so it costs nothing extra;
* ``"accepted"`` — the alternative literal reading of "samples accepted by
  our sampler" (accepted proposals only, still divided by T + 1), included
  so benchmark E8 can show it is not consistent either.

EXPERIMENTS.md quantifies the bias of the ``"chain"`` read-out across the
benchmark datasets.

Beyond the paper's algorithm, the class exposes further ablation knobs used
by benchmark E8 and discussed as natural variations:

* ``proposal`` — ``"uniform"`` (the paper), ``"degree"`` (independence
  proposal proportional to vertex degree) or ``"random-walk"`` (propose a
  uniform neighbour of the current state).  Non-uniform proposals use the
  general Metropolis-Hastings acceptance ratio so the stationary distribution
  is unchanged.
* ``burn_in`` — number of initial states discarded.  Theorem 1 holds without
  burn-in (the paper stresses this); the option exists to verify empirically
  that burn-in is indeed unnecessary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro._rng import RandomState, ensure_rng, spawn_rng
from repro.errors import ConfigurationError, SamplingError
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import resolve_backend
from repro.mcmc.estimates import DependencyOracle
from repro.samplers.base import ExecutionPlanMixin, SingleEstimate, SingleVertexEstimator, timed

__all__ = [
    "ChainState",
    "ChainResult",
    "SingleSpaceMHSampler",
    "PROPOSALS",
    "ESTIMATORS",
    "state_contribution",
]

#: Supported proposal mechanisms.
PROPOSALS = ("uniform", "degree", "random-walk")

#: Supported estimator read-outs (see the module docstring).
ESTIMATORS = ("chain", "proposal", "accepted")


def state_contribution(state, estimator: str) -> float:
    """Return one chain state's contribution to the given estimator read-out.

    The single definition of the three read-outs (``"chain"`` /
    ``"proposal"`` / ``"accepted"``, see the module docstring), shared by
    :meth:`ChainResult.estimate`, the multi-chain pooled reduce and the edge
    samplers (whose states duck-type the same fields) so the read-outs can
    never drift apart.  Rejected proposals contribute exactly ``0.0`` to the
    ``"accepted"`` read-out, which leaves float totals bit-identical to a
    filtered sum.
    """
    if estimator == "chain":
        return state.dependency
    if estimator == "proposal":
        return state.proposal_dependency
    return state.proposal_dependency if state.accepted else 0.0


@dataclass
class ChainState:
    """One state of the Markov chain, with the bookkeeping the analysis layer needs.

    ``proposal_dependency`` records the dependency score of the candidate
    proposed at this iteration (equal to ``dependency`` for the initial
    state); the ``"proposal"`` estimator read-out averages these values.
    """

    iteration: int
    vertex: Vertex
    dependency: float
    accepted: bool
    proposal_dependency: float = 0.0


@dataclass
class ChainResult:
    """Full record of one chain run.

    Attributes
    ----------
    target:
        The vertex *r* whose betweenness is being estimated.
    states:
        The ``T + 1`` chain states (initial state first).  A rejected
        proposal produces a state equal to its predecessor with
        ``accepted=False``.
    num_vertices:
        ``|V(G)|`` at run time, needed to scale Equation 7.
    burn_in:
        Number of leading states excluded from the estimate.
    evaluations:
        Number of Brandes passes actually performed (cache misses).
    """

    target: Vertex
    states: List[ChainState]
    num_vertices: int
    burn_in: int = 0
    evaluations: int = 0

    # ------------------------------------------------------------------
    def chain_length(self) -> int:
        """Return ``T`` (the number of iterations, excluding the initial state)."""
        return max(len(self.states) - 1, 0)

    def kept_states(self) -> List[ChainState]:
        """Return the states that participate in the estimate (after burn-in)."""
        return self.states[self.burn_in :]

    def acceptance_rate(self) -> float:
        """Return the fraction of proposals that were accepted."""
        proposals = self.states[1:]
        if not proposals:
            return 0.0
        return sum(1 for s in proposals if s.accepted) / len(proposals)

    def visited_vertices(self) -> List[Vertex]:
        """Return the sequence of vertices visited (after burn-in)."""
        return [s.vertex for s in self.kept_states()]

    def dependency_trace(self) -> List[float]:
        """Return the sequence of dependency scores (after burn-in)."""
        return [s.dependency for s in self.kept_states()]

    # ------------------------------------------------------------------
    def estimate(self, estimator: str = "chain") -> float:
        """Return the betweenness estimate over the kept states.

        ``estimator`` selects the read-out described in the module
        docstring: ``"chain"`` is Equation 7 of the paper, ``"proposal"``
        the corrected unbiased variant, ``"accepted"`` the accepted-only
        alternative reading.
        """
        if estimator not in ESTIMATORS:
            raise ValueError(f"unknown estimator {estimator!r}; expected one of {ESTIMATORS}")
        kept = self.kept_states()
        if not kept:
            return 0.0
        scale = max(self.num_vertices - 1, 1)
        return sum(state_contribution(s, estimator) for s in kept) / (len(kept) * scale)

    def running_estimates(self, estimator: str = "chain") -> List[float]:
        """Return the estimate after each kept state (used by the convergence benchmark E7)."""
        if estimator not in ESTIMATORS:
            raise ValueError(f"unknown estimator {estimator!r}; expected one of {ESTIMATORS}")
        kept = self.kept_states()
        scale = max(self.num_vertices - 1, 1)
        estimates: List[float] = []
        total = 0.0
        for i, state in enumerate(kept, start=1):
            total += state_contribution(state, estimator)
            estimates.append(total / (i * scale))
        return estimates

    def empirical_distribution(self) -> Dict[Vertex, float]:
        """Return the empirical visit frequencies of the kept states.

        In the long run these approach the stationary distribution of
        Equation 5; the diagnostics module compares the two.
        """
        kept = self.kept_states()
        counts: Dict[Vertex, float] = {}
        for state in kept:
            counts[state.vertex] = counts.get(state.vertex, 0.0) + 1.0
        total = float(len(kept))
        return {v: c / total for v, c in counts.items()}


class SingleSpaceMHSampler(ExecutionPlanMixin, SingleVertexEstimator):
    """Metropolis-Hastings estimator of the betweenness of a single vertex."""

    name = "mh-single"

    def __init__(
        self,
        *,
        proposal: str = "uniform",
        estimator: str = "chain",
        burn_in: int = 0,
        cache_size: Optional[int] = None,
        record_states: bool = True,
        backend: str = "auto",
        batch_size: Optional[int] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        if proposal not in PROPOSALS:
            raise ConfigurationError(
                f"unknown proposal {proposal!r}; expected one of {PROPOSALS}"
            )
        if estimator not in ESTIMATORS:
            raise ConfigurationError(
                f"unknown estimator {estimator!r}; expected one of {ESTIMATORS}"
            )
        if burn_in < 0:
            raise ConfigurationError("burn_in must be non-negative")
        self.proposal = proposal
        self.estimator = estimator
        self.burn_in = int(burn_in)
        self.cache_size = cache_size
        self.record_states = bool(record_states)
        #: Traversal backend handed to the :class:`DependencyOracle`
        #: (``"auto"`` / ``"dict"`` / ``"csr"``).  Candidate vertices are
        #: drawn by position in ``graph.vertices()`` — the same dense index
        #: order the CSR snapshot uses — so both backends consume an
        #: identical rng stream and walk the same chain for a fixed seed.
        self.backend = backend
        #: Execution-engine knobs (:mod:`repro.execution`).  A Markov chain
        #: is inherently sequential, so ``n_jobs`` is accepted for interface
        #: uniformity and unused.  ``batch_size`` engages the
        #: **batch-prefetch** discipline for the independence proposals
        #: (``"uniform"`` / ``"degree"``), whose candidate sequence does not
        #: depend on the chain state: the whole sequence is drawn upfront
        #: from a child rng stream and the oracle batch-computes upcoming
        #: dependency vectors ``batch_size`` sources per traversal.  The
        #: per-vector values are bit-identical however they are batched, so
        #: for a fixed seed the chain (and estimate) is the same for any
        #: ``batch_size`` and ``n_jobs`` — though not the same chain the
        #: sequential discipline walks, which is why the legacy behaviour is
        #: kept when no knob is set.  The state-dependent ``"random-walk"``
        #: proposal cannot know its candidates ahead of time and ignores the
        #: engine.
        self.batch_size = batch_size
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------
    # Proposal machinery
    # ------------------------------------------------------------------
    def _propose(self, graph: Graph, current: Vertex, vertices: Sequence[Vertex], rng):
        """Return ``(candidate, log-proposal-ratio correction factor)``.

        For independence proposals the Metropolis-Hastings ratio needs the
        factor ``g(current) / g(candidate)``; for the symmetric-by-
        construction uniform proposal that factor is 1.  For the random-walk
        proposal the factor is ``deg(current) / deg(candidate)``.
        """
        if self.proposal == "uniform":
            candidate = vertices[rng.randrange(len(vertices))]
            return candidate, 1.0
        if self.proposal == "degree":
            # Degree-proportional independence proposal.
            candidate = self._degree_weighted_choice(graph, vertices, rng)
            g_current = max(graph.degree(current), 1)
            g_candidate = max(graph.degree(candidate), 1)
            return candidate, g_current / g_candidate
        # random-walk: propose a uniform neighbour of the current state.
        neighbors = list(graph.neighbors(current))
        if not neighbors:
            return current, 1.0
        candidate = neighbors[rng.randrange(len(neighbors))]
        correction = graph.degree(current) / max(graph.degree(candidate), 1)
        return candidate, correction

    @staticmethod
    def _degree_weighted_choice(graph: Graph, vertices: Sequence[Vertex], rng):
        degrees = [max(graph.degree(v), 1) for v in vertices]
        total = sum(degrees)
        pick = rng.random() * total
        cumulative = 0.0
        for vertex, degree in zip(vertices, degrees):
            cumulative += degree
            if pick <= cumulative:
                return vertex
        return vertices[-1]

    def _draw_proposals(
        self, graph: Graph, vertices: Sequence[Vertex], rng, count: int
    ) -> List[Vertex]:
        """Pre-draw *count* independence-proposal candidates from a child stream.

        Spawning the child advances *rng* by exactly one spawn regardless of
        *count*, so the main stream (initial draw, acceptance draws) is
        unaffected by how many proposals are drawn upfront.
        """
        proposal_rng = spawn_rng(rng, 0)
        if self.proposal == "uniform":
            return [
                vertices[proposal_rng.randrange(len(vertices))] for _ in range(count)
            ]
        return [
            self._degree_weighted_choice(graph, vertices, proposal_rng)
            for _ in range(count)
        ]

    # ------------------------------------------------------------------
    # Chain
    # ------------------------------------------------------------------
    def build_oracle(self, graph: Graph, *, shared_store=None) -> DependencyOracle:
        """Return a :class:`DependencyOracle` configured like this sampler's private one.

        The single place the sampler's oracle knobs (``cache_size``,
        ``backend``, the plan's ``batch_size``) turn into an oracle —
        :meth:`run_chain`, :meth:`extend_chain` and the multi-chain worker
        payload all construct through here, so a new oracle parameter can
        never silently diverge between the inline and pooled paths.
        *shared_store* attaches the multi-chain driver's cross-process
        dependency arena (:mod:`repro.execution.shared_cache`); ``None`` —
        the default for every direct use of this sampler — keeps the oracle
        fully private.
        """
        plan = self._plan()
        return DependencyOracle(
            graph,
            cache_size=self.cache_size,
            backend=self.backend,
            batch_size=plan.batch_size if plan is not None else None,
            shared_store=shared_store,
        )

    def run_chain(
        self,
        graph: Graph,
        r: Vertex,
        num_iterations: int,
        *,
        seed: RandomState = None,
        oracle: Optional[DependencyOracle] = None,
        initial_state: Optional[Vertex] = None,
    ) -> ChainResult:
        """Run the Markov chain for ``T = num_iterations`` iterations and return its record.

        Parameters
        ----------
        graph, r:
            The graph and the target vertex.
        num_iterations:
            The chain length ``T``; the result holds ``T + 1`` states.
        seed:
            Randomness specification (``None``, an int, or a
            :class:`random.Random`).
        oracle:
            Optional shared :class:`DependencyOracle`; by default a private
            one is created honouring ``cache_size``.
        initial_state:
            Fix the initial state instead of drawing it uniformly — the
            theorems hold for any initial state, and the E3 benchmark uses a
            deliberately bad one to verify that.
        """
        graph.validate_vertex(r)
        if num_iterations < 1:
            raise ConfigurationError("num_iterations must be at least 1")
        if self.burn_in >= num_iterations + 1:
            raise ConfigurationError("burn_in must be smaller than the chain length")
        rng = ensure_rng(seed)
        plan = self._plan()
        prefetching = plan is not None and self.proposal in ("uniform", "degree")
        if oracle is None:
            oracle = self.build_oracle(graph)
        vertices = graph.vertices()
        if len(vertices) < 2:
            raise SamplingError("the graph must contain at least two vertices")

        proposals: Optional[List[Vertex]] = None
        if prefetching:
            # Independence proposals don't depend on the chain state, so the
            # whole candidate sequence can be drawn upfront from a child
            # stream (the main stream keeps the initial draw and the
            # acceptance draws) and handed to the oracle in blocks.
            proposals = self._draw_proposals(graph, vertices, rng, num_iterations)

        evaluations_before = oracle.evaluations
        if initial_state is None:
            current = vertices[rng.randrange(len(vertices))]
        else:
            graph.validate_vertex(initial_state)
            current = initial_state
        current_delta = oracle.dependency(current, r)

        states: List[ChainState] = [
            ChainState(
                iteration=0,
                vertex=current,
                dependency=current_delta,
                accepted=True,
                proposal_dependency=current_delta,
            )
        ]
        prefetch_block = plan.batch_size if plan is not None else 1
        self._iterate(
            graph, r, oracle, rng, vertices, states, num_iterations, proposals, prefetch_block
        )
        if not self.record_states:
            # Memory-lean mode: keep only the fields the estimate needs by
            # dropping vertex identities (they are replaced by the target).
            states = [
                ChainState(s.iteration, r, s.dependency, s.accepted, s.proposal_dependency)
                for s in states
            ]
        # Bill this run's own Brandes passes, not the oracle's lifetime
        # total: a warm oracle reused across requests (the session API, the
        # E8 ablation) would otherwise charge every past request's work to
        # the newest chain.  For a fresh oracle the delta equals the total.
        return ChainResult(
            target=r,
            states=states,
            num_vertices=graph.number_of_vertices(),
            burn_in=self.burn_in,
            evaluations=oracle.evaluations - evaluations_before,
        )

    def _iterate(
        self,
        graph: Graph,
        r: Vertex,
        oracle: DependencyOracle,
        rng,
        vertices: Sequence[Vertex],
        states: List[ChainState],
        num_iterations: int,
        proposals: Optional[List[Vertex]],
        prefetch_block: int,
    ) -> None:
        """Advance the chain *num_iterations* steps, appending to *states* in place.

        The shared engine of :meth:`run_chain` and :meth:`extend_chain`:
        continuation starts from ``states[-1]`` and the rng draws per step are
        exactly those of a fresh run (one acceptance draw per proposal), so a
        chain's trajectory is a pure function of its rng stream and its last
        state — never of which process or segment schedule produced it.
        """
        current = states[-1].vertex
        current_delta = states[-1].dependency
        base_iteration = states[-1].iteration
        for step in range(1, num_iterations + 1):
            if proposals is not None:
                candidate = proposals[step - 1]
                if (step - 1) % prefetch_block == 0:
                    oracle.prefetch(proposals[step - 1 : step - 1 + prefetch_block])
                if self.proposal == "uniform":
                    proposal_correction = 1.0
                else:
                    proposal_correction = max(graph.degree(current), 1) / max(
                        graph.degree(candidate), 1
                    )
            else:
                candidate, proposal_correction = self._propose(graph, current, vertices, rng)
            candidate_delta = oracle.dependency(candidate, r)
            accepted = self._accept(current_delta, candidate_delta, proposal_correction, rng)
            if accepted:
                current = candidate
                current_delta = candidate_delta
            states.append(
                ChainState(
                    iteration=base_iteration + step,
                    vertex=current,
                    dependency=current_delta,
                    accepted=accepted,
                    proposal_dependency=candidate_delta,
                )
            )

    def extend_chain(
        self,
        graph: Graph,
        r: Vertex,
        chain: ChainResult,
        num_iterations: int,
        *,
        rng: RandomState = None,
        oracle: Optional[DependencyOracle] = None,
    ) -> ChainResult:
        """Continue *chain* for *num_iterations* more iterations and return the longer record.

        The segment entry point of the multi-chain driver's adaptive mode
        (:mod:`repro.mcmc.multichain`): a chain is run in checkpointed
        segments, and between segments only ``(rng, last state)`` matter —
        the dependency scores the oracle returns are deterministic, so the
        continuation is bit-identical whether the oracle is the original
        instance, a rebuilt one in another process, or freshly empty.  When
        the engine is engaged the continuation spawns a new proposal child
        stream from *rng* per segment (mirroring :meth:`run_chain`), so a
        segmented chain is a valid Metropolis-Hastings chain but *not* the
        same trajectory a single unsegmented run walks.

        Requires ``record_states=True`` (the memory-lean mode discards the
        vertex identities the continuation needs).  The input *chain* is not
        mutated.
        """
        graph.validate_vertex(r)
        if num_iterations < 1:
            raise ConfigurationError("num_iterations must be at least 1")
        if not chain.states:
            raise ConfigurationError("cannot extend an empty chain")
        if not self.record_states:
            raise ConfigurationError(
                "extend_chain requires record_states=True; the lean mode drops "
                "the vertex identities that seed the continuation"
            )
        rng = ensure_rng(rng)
        plan = self._plan()
        prefetching = plan is not None and self.proposal in ("uniform", "degree")
        if oracle is None:
            oracle = self.build_oracle(graph)
        vertices = graph.vertices()
        proposals = (
            self._draw_proposals(graph, vertices, rng, num_iterations)
            if prefetching
            else None
        )
        states = list(chain.states)
        prefetch_block = plan.batch_size if plan is not None else 1
        evaluations_before = oracle.evaluations
        self._iterate(
            graph, r, oracle, rng, vertices, states, num_iterations, proposals, prefetch_block
        )
        # The chain's running total plus this segment's passes only — a
        # shared oracle's counter includes other chains' work, which must
        # not be billed to this record.
        return ChainResult(
            target=chain.target,
            states=states,
            num_vertices=chain.num_vertices,
            burn_in=chain.burn_in,
            evaluations=chain.evaluations + (oracle.evaluations - evaluations_before),
        )

    @staticmethod
    def _accept(
        current_delta: float, candidate_delta: float, proposal_correction: float, rng
    ) -> bool:
        """Apply the Metropolis-Hastings acceptance rule of Equation 6.

        A current state with zero dependency has zero stationary probability;
        any candidate with positive dependency is then accepted outright
        (the ratio is +inf), and a zero-dependency candidate is accepted too
        so the chain keeps moving until it reaches the support.

        Exactly one uniform draw is consumed per proposal, *unconditionally*
        (drawing and ignoring when the ratio exceeds 1 is statistically
        identical to not drawing).  An earlier revision drew only when
        ``ratio < 1``, which broke the backends' identical-rng-stream
        promise: symmetric dependency scores put the true ratio at exactly
        1, the backends' last-ulp accumulation drift landed one side at
        ``1 + ε`` and the other at ``1 - ε``, only one of them consumed a
        draw, and the chains diverged structurally from there.
        """
        u = rng.random()
        if current_delta <= 0.0:
            return True
        ratio = (candidate_delta / current_delta) * proposal_correction
        return ratio >= 1.0 or u < ratio

    # ------------------------------------------------------------------
    # Estimator interface
    # ------------------------------------------------------------------
    def estimate(
        self,
        graph: Graph,
        r: Vertex,
        num_samples: int,
        *,
        seed: RandomState = None,
        oracle: Optional[DependencyOracle] = None,
        initial_state: Optional[Vertex] = None,
    ) -> SingleEstimate:
        """Return the Equation 7 estimate of ``BC(r)`` from a chain of length *num_samples*."""
        with timed() as clock:
            chain = self.run_chain(
                graph,
                r,
                num_samples,
                seed=seed,
                oracle=oracle,
                initial_state=initial_state,
            )
            value = chain.estimate(self.estimator)
        diagnostics = {
            "acceptance_rate": chain.acceptance_rate(),
            "evaluations": chain.evaluations,
            "proposal": self.proposal,
            "estimator": self.estimator,
            "burn_in": self.burn_in,
            "backend": resolve_backend(self.backend),
            "chain": chain,
        }
        plan = self._plan()
        if plan is not None:
            diagnostics.update(n_jobs=plan.n_jobs, batch_size=plan.batch_size)
        return SingleEstimate(
            vertex=r,
            estimate=value,
            samples=num_samples,
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics=diagnostics,
        )
