"""Theoretical quantities of Theorems 1, 2 and 4: µ(r), error bounds and sample sizes.

The accuracy of the paper's Metropolis-Hastings samplers is governed by a
single graph-dependent constant :math:`\\mu(r)`:

.. math::

   \\delta_{v\\bullet}(r) \\le \\mu(r) \\cdot \\bar\\delta(r)
   \\quad\\text{for every } v \\in V(G),

where :math:`\\bar\\delta(r)` is the average dependency score on *r*.  The
smallest valid value is simply ``max_v delta / mean_v delta``, which this
module computes exactly (one Brandes pass per vertex).  From µ(r) follow

* the non-asymptotic error bound of Equation 12 (single-space sampler) and
  Equation 25 (joint-space sampler, with µ(r_j)), and
* the sufficient chain lengths of Equations 14 and 27.

Benchmark E4 sweeps these quantities across topologies to reproduce the
paper's "µ(r) is a constant for balanced separator vertices" claim
(Theorem 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError, SamplingError
from repro.graphs.core import Graph, Vertex
from repro.shortest_paths.dependencies import all_dependencies_on_target

__all__ = [
    "MuStatistics",
    "mu_statistics",
    "mu_of_vertex",
    "mcmc_error_probability",
    "required_samples",
    "epsilon_for_samples",
]


@dataclass
class MuStatistics:
    """Exact dependency-score statistics of a target vertex *r*.

    Attributes
    ----------
    vertex:
        The target vertex.
    mu:
        The tightest constant satisfying Inequality 11:
        ``max_v delta_v(r) / mean_v delta_v(r)``.
    max_dependency:
        ``max_v delta_{v.}(r)``.
    mean_dependency:
        ``mean_v delta_{v.}(r)`` over all ``|V|`` vertices (the paper's
        :math:`\\bar\\delta(r)`).
    total_dependency:
        ``sum_v delta_{v.}(r)`` — the unnormalised betweenness of *r*.
    support_size:
        Number of vertices with a strictly positive dependency on *r*.
    """

    vertex: Vertex
    mu: float
    max_dependency: float
    mean_dependency: float
    total_dependency: float
    support_size: int


def mu_statistics(graph: Graph, r: Vertex) -> MuStatistics:
    """Return the exact :class:`MuStatistics` of vertex *r*.

    Raises
    ------
    SamplingError
        If every dependency score on *r* is zero (``BC(r) = 0``); µ(r) is
        undefined in that case and the MCMC target distribution degenerate.
    """
    graph.validate_vertex(r)
    deltas = all_dependencies_on_target(graph, r)
    n = graph.number_of_vertices()
    total = sum(deltas.values())
    if total <= 0.0:
        raise SamplingError(
            f"vertex {r!r} has betweenness 0, so mu(r) (Inequality 11) is undefined"
        )
    maximum = max(deltas.values())
    mean = total / n
    return MuStatistics(
        vertex=r,
        mu=maximum / mean,
        max_dependency=maximum,
        mean_dependency=mean,
        total_dependency=total,
        support_size=sum(1 for d in deltas.values() if d > 0.0),
    )


def mu_of_vertex(graph: Graph, r: Vertex) -> float:
    """Return the tightest µ(r) (see :func:`mu_statistics`)."""
    return mu_statistics(graph, r).mu


def mcmc_error_probability(num_samples: int, epsilon: float, mu: float) -> float:
    """Return the right-hand side of Equation 12 (equivalently Equation 25).

    .. math::

       2 \\exp\\Bigl\\{-\\frac{T}{2}\\Bigl(\\frac{2\\epsilon}{\\mu} -
            \\frac{3}{T}\\Bigr)^2\\Bigr\\}

    with ``T = num_samples`` (the paper's chain length; the chain holds
    ``T + 1`` states).  When the bracket is negative the bound is vacuous and
    1.0 is returned.
    """
    if num_samples < 1:
        raise ConfigurationError("num_samples must be at least 1")
    if epsilon <= 0.0:
        raise ConfigurationError("epsilon must be positive")
    if mu <= 0.0:
        raise ConfigurationError("mu must be positive")
    bracket = 2.0 * epsilon / mu - 3.0 / num_samples
    if bracket <= 0.0:
        return 1.0
    bound = 2.0 * math.exp(-0.5 * num_samples * bracket * bracket)
    return min(1.0, bound)


def required_samples(epsilon: float, delta: float, mu: float) -> int:
    """Return the sufficient chain length of Equation 14 / Equation 27.

    .. math::

       T \\ge \\frac{\\mu(r)^2}{2\\epsilon^2} \\ln\\frac{2}{\\delta}

    The returned value is the smallest integer satisfying the inequality.
    """
    if epsilon <= 0.0:
        raise ConfigurationError("epsilon must be positive")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError("delta must be in (0, 1)")
    if mu <= 0.0:
        raise ConfigurationError("mu must be positive")
    return int(math.ceil(mu * mu / (2.0 * epsilon * epsilon) * math.log(2.0 / delta)))


def epsilon_for_samples(num_samples: int, delta: float, mu: float) -> float:
    """Return the additive error ε guaranteed (with prob. 1 - δ) by a chain of length *num_samples*.

    Inverse of :func:`required_samples` with the same approximation
    (neglecting the 3/T term, as the paper does when deriving Equation 14).
    """
    if num_samples < 1:
        raise ConfigurationError("num_samples must be at least 1")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError("delta must be in (0, 1)")
    if mu <= 0.0:
        raise ConfigurationError("mu must be positive")
    return mu * math.sqrt(math.log(2.0 / delta) / (2.0 * num_samples))
