"""Extension: Metropolis-Hastings estimation of the betweenness of a single edge.

The paper's conclusion suggests extending the technique to other indices.
Edge betweenness is the closest relative: the Girvan–Newman loop from the
paper's introduction needs the most-between *edge*, and the machinery
carries over verbatim — the dependency score of a source vertex *v* on an
edge *e* plays the role δ_v•(r) played for a vertex:

.. math::

   \\delta_{v\\bullet}(e) = \\sum_{t} \\frac{\\sigma_{vt}(e)}{\\sigma_{vt}},
   \\qquad
   BC(e) = \\frac{1}{|V|(|V|-1)} \\sum_{v} \\delta_{v\\bullet}(e).

The sampler below runs the same Independence Metropolis-Hastings chain over
source vertices with acceptance ratio δ_v'•(e)/δ_v•(e) and exposes the same
two read-outs as the vertex sampler (the faithful chain average and the
corrected proposal average).  It is *not* part of the published algorithm —
it demonstrates that the framework generalises, as the conclusion
anticipates — and is exercised by its own tests and the example in
``examples/community_detection.py``'s approximate variant.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro._rng import RandomState, ensure_rng
from repro.errors import ConfigurationError, EdgeNotFoundError, SamplingError
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import resolve_backend
from repro.mcmc.single import state_contribution
from repro.samplers.base import SingleEstimate, timed
from repro.shortest_paths.dependencies import (
    accumulate_edge_dependencies,
    csr_edge_dependency,
    csr_spd_builder,
    spd_builder,
)

__all__ = ["EdgeDependencyOracle", "EdgeMHSampler", "exact_edge_dependency_vector"]

EdgeKey = Tuple[Vertex, Vertex]


def _edge_dependency_from_map(edge_deltas: Dict[EdgeKey, float], edge: EdgeKey) -> float:
    """Sum the two possible DAG orientations of an undirected edge."""
    a, b = edge
    return edge_deltas.get((a, b), 0.0) + edge_deltas.get((b, a), 0.0)


class EdgeDependencyOracle:
    """Evaluate (and cache) per-source dependency scores on a fixed edge.

    On the CSR backend each evaluation builds an array-backed SPD and reads
    the two possible DAG orientations of the edge straight from the
    predecessor arrays (:func:`csr_edge_dependency`); the dict backend keeps
    the original full edge-dependency map accumulation.
    """

    def __init__(
        self,
        graph: Graph,
        edge: EdgeKey,
        *,
        cache_size: Optional[int] = None,
        backend: str = "auto",
    ) -> None:
        a, b = edge
        if not graph.has_edge(a, b):
            raise EdgeNotFoundError(a, b)
        self._graph = graph
        self._edge = (a, b)
        self._backend = resolve_backend(backend)
        if self._backend == "csr":
            self._csr = graph.csr()
            self._csr_build = csr_spd_builder(self._csr)
            self._edge_indices = (self._csr.index_of(a), self._csr.index_of(b))
            self._build = None
        else:
            self._csr = None
            self._build = spd_builder(graph)
        self._cache: "OrderedDict[Vertex, float]" = OrderedDict()
        self._cache_size = cache_size
        self.evaluations = 0
        self.lookups = 0

    @property
    def edge(self) -> EdgeKey:
        """The edge whose dependencies are being evaluated."""
        return self._edge

    @property
    def backend(self) -> str:
        """The resolved traversal backend (``"dict"`` or ``"csr"``)."""
        return self._backend

    def dependency(self, source: Vertex) -> float:
        """Return δ_{source·}(edge)."""
        self.lookups += 1
        cache_enabled = self._cache_size is None or self._cache_size > 0
        if cache_enabled and source in self._cache:
            self._cache.move_to_end(source)
            return self._cache[source]
        self.evaluations += 1
        if self._backend == "csr":
            spd = self._csr_build(self._csr, self._csr.index_of(source))
            value = csr_edge_dependency(spd, *self._edge_indices)
        else:
            spd = self._build(self._graph, source)
            value = _edge_dependency_from_map(
                accumulate_edge_dependencies(spd), self._edge
            )
        if cache_enabled:
            self._cache[source] = value
            if self._cache_size is not None and len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return value


def exact_edge_dependency_vector(graph: Graph, edge: EdgeKey) -> Dict[Vertex, float]:
    """Return ``{v: delta_{v.}(edge)}`` for every source vertex (exact, O(|V||E|))."""
    oracle = EdgeDependencyOracle(graph, edge, cache_size=None)
    return {v: oracle.dependency(v) for v in graph.vertices()}


@dataclass
class EdgeChainState:
    """One state of the edge chain (mirrors :class:`repro.mcmc.single.ChainState`)."""

    iteration: int
    vertex: Vertex
    dependency: float
    accepted: bool
    proposal_dependency: float


class EdgeMHSampler:
    """Independence Metropolis-Hastings estimator of the betweenness of one edge.

    Parameters mirror :class:`repro.mcmc.single.SingleSpaceMHSampler` with the
    uniform proposal only; ``estimator`` selects the read-out (``"chain"`` for
    the Equation 7 analogue, ``"proposal"`` for the corrected variant).
    """

    name = "mh-edge"

    def __init__(
        self,
        *,
        estimator: str = "proposal",
        cache_size: Optional[int] = None,
        backend: str = "auto",
    ) -> None:
        if estimator not in ("chain", "proposal"):
            raise ConfigurationError("estimator must be 'chain' or 'proposal'")
        self.estimator = estimator
        self.cache_size = cache_size
        self.backend = backend

    # ------------------------------------------------------------------
    def build_oracle(self, graph: Graph, edge: EdgeKey) -> EdgeDependencyOracle:
        """Return an :class:`EdgeDependencyOracle` configured like this sampler's private one."""
        return EdgeDependencyOracle(
            graph, edge, cache_size=self.cache_size, backend=self.backend
        )

    def run_chain(
        self,
        graph: Graph,
        edge: EdgeKey,
        num_iterations: int,
        *,
        seed: RandomState = None,
        oracle: Optional[EdgeDependencyOracle] = None,
    ) -> List[EdgeChainState]:
        """Run the chain and return its full state record."""
        if num_iterations < 1:
            raise ConfigurationError("num_iterations must be at least 1")
        rng = ensure_rng(seed)
        oracle = oracle or self.build_oracle(graph, edge)
        vertices = graph.vertices()
        if len(vertices) < 2:
            raise SamplingError("the graph must contain at least two vertices")

        current = vertices[rng.randrange(len(vertices))]
        current_delta = oracle.dependency(current)
        states = [
            EdgeChainState(
                iteration=0,
                vertex=current,
                dependency=current_delta,
                accepted=True,
                proposal_dependency=current_delta,
            )
        ]
        for t in range(1, num_iterations + 1):
            candidate = vertices[rng.randrange(len(vertices))]
            candidate_delta = oracle.dependency(candidate)
            # One uniform draw per proposal, unconditionally — see
            # SingleSpaceMHSampler._accept for why a conditional draw breaks
            # cross-backend rng-stream identity.
            u = rng.random()
            if current_delta <= 0.0:
                accepted = True
            elif candidate_delta >= current_delta:
                accepted = True
            else:
                accepted = u < candidate_delta / current_delta
            if accepted:
                current, current_delta = candidate, candidate_delta
            states.append(
                EdgeChainState(
                    iteration=t,
                    vertex=current,
                    dependency=current_delta,
                    accepted=accepted,
                    proposal_dependency=candidate_delta,
                )
            )
        return states

    # ------------------------------------------------------------------
    def estimate(
        self,
        graph: Graph,
        edge: EdgeKey,
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> SingleEstimate:
        """Return the edge-betweenness estimate for *edge* from a chain of length *num_samples*."""
        a, b = edge
        if not graph.has_edge(a, b):
            raise EdgeNotFoundError(a, b)
        n = graph.number_of_vertices()
        with timed() as clock:
            states = self.run_chain(graph, edge, num_samples, seed=seed)
            total = sum(state_contribution(s, self.estimator) for s in states)
            # The per-source dependency on an edge sums pair fractions over
            # targets, so dividing by n(n-1) * (states) gives the paper-scale
            # edge betweenness; the (n-1) factor is folded into the source
            # average exactly as in Equation 7.
            estimate = total / (len(states) * max(n - 1, 1))
        acceptance = (
            sum(1 for s in states[1:] if s.accepted) / max(len(states) - 1, 1)
        )
        return SingleEstimate(
            vertex=edge,
            estimate=estimate,
            samples=num_samples,
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics={"acceptance_rate": acceptance, "estimator": self.estimator},
        )
