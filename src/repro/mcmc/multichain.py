"""Parallel multi-chain Metropolis-Hastings drivers.

A Markov chain is inherently sequential — the one estimation layer the
source-sharded execution engine of :mod:`repro.execution` could not touch in
its first incarnation.  The way to parallelise the MCMC path is therefore
*many independent chains*: spawn ``K`` chains from per-chain child rng
streams, run them across the shard scheduler (one chain per shard — chains,
not sources, are the unit of work here), and pool the per-chain estimates
with a deterministic ordered reduce.  This module provides that driver for
all three Metropolis-Hastings samplers of the library:

* :class:`MultiChainMHSampler` — the single-space sampler of Section 4.2,
  with cross-chain convergence diagnostics (split-R̂ / pooled effective
  sample size, per-chain acceptance rates) and an optional adaptive mode
  that runs the chains in checkpointed segments, discards the first half of
  each chain as burn-in once the split-R̂ of the remainder drops below a
  target, and stops early;
* :class:`MultiChainJointSampler` — the joint-space sampler of Section 4.3;
  the pooled relative-betweenness scores are the Equation 23 averages over
  the union of the per-chain multisets ``M(j)``;
* :class:`MultiChainEdgeSampler` — the edge-betweenness extension.

Determinism contract
--------------------
Chain *i*'s trajectory is a pure function of the base sampler's
configuration, the graph, the target and its own rng stream
(``spawn_rng(rng, i)``, spawned in chain order before any chain runs).  The
dependency scores a chain consumes are deterministic whatever oracle
instance serves them — prefetched, recomputed after eviction, rebuilt in
another process — so a chain never depends on which worker ran it or on
what shared a cache with it.  Per-chain results are merged strictly in
chain order.  Together this makes every pooled estimate **bit-identical for
any** ``n_jobs`` at a fixed seed, and a ``K = 1`` driver runs the parent
stream itself (no spawn), reproducing the legacy sequential sampler's
estimate bit for bit.

``n_jobs`` belongs to the *driver* (how many worker processes the chains
are spread over); the base sampler's own ``n_jobs`` stays unset so a
chain's trajectory cannot vary with the degree of parallelism.  The base
sampler's ``batch_size`` is honoured — each chain batch-prefetches its own
independence proposals — and is typically the dominant speedup on few-core
machines.

The remaining duplication on few-core machines is the *private* per-worker
oracle caches: chains propose sources from the same distribution, so with
``n_jobs > 1`` each worker re-runs Brandes passes another worker already
paid for.  ``shared_cache=True`` removes it by publishing every computed
dependency vector into one cross-process shared-memory arena
(:mod:`repro.execution.shared_cache`), attached to each worker's oracle
through the pool-initializer payload.  Because the dependency kernels are
bit-identical per source, *which* process computed a vector — and therefore
any cache timing at all — can never change a chain; the total
``evaluations`` across workers drops toward the run's unique-source count
while the pooled estimate stays bit-identical to the private-cache path.
"""

from __future__ import annotations

import copy
import multiprocessing
import warnings
from dataclasses import dataclass
from random import Random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro._rng import RandomState, ensure_rng, spawn_rng
from repro.errors import ConfigurationError, EdgeNotFoundError, SamplingError
from repro.execution import (
    create_shared_store,
    graph_snapshot,
    resolve_mp_context,
    resolve_plan,
    resolve_shared_cache,
    resolve_shared_graph,
    run_sharded,
)
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import resolve_backend
from repro.mcmc.diagnostics import (
    MultiChainDiagnostics,
    diagnose_chains,
    multichain_ess,
    split_rhat,
)
from repro.mcmc.edge import EdgeChainState, EdgeMHSampler
from repro.mcmc.joint import (
    JointChainResult,
    JointSpaceMHSampler,
    RelativeBetweennessEstimate,
)
from repro.mcmc.single import (
    ESTIMATORS,
    ChainResult,
    SingleSpaceMHSampler,
    state_contribution,
)
from repro.samplers.base import SingleEstimate, SingleVertexEstimator, timed

__all__ = [
    "split_budget",
    "MultiChainResult",
    "MultiChainMHSampler",
    "MultiChainJointSampler",
    "MultiChainEdgeSampler",
    "merge_joint_chains",
    "DEFAULT_CHECK_INTERVAL",
]

#: Iterations each chain advances between R̂ checkpoints in the adaptive mode.
DEFAULT_CHECK_INTERVAL = 64


def split_budget(num_samples: int, n_chains: int) -> List[int]:
    """Split a total iteration budget into per-chain lengths, longest first.

    ``num_samples`` is the *total* budget — what the caller pays in Brandes
    passes — so ``K`` chains receive ``num_samples // K`` iterations each and
    the remainder goes to the leading chains.  The split is a pure function
    of ``(num_samples, n_chains)``, part of the determinism contract.
    """
    if n_chains < 1:
        raise ConfigurationError("n_chains must be a positive integer")
    if num_samples < n_chains:
        raise ConfigurationError(
            f"num_samples ({num_samples}) must be at least n_chains ({n_chains}); "
            "every chain needs one iteration"
        )
    base, extra = divmod(num_samples, n_chains)
    return [base + (1 if i < extra else 0) for i in range(n_chains)]


class _ChainPayload:
    """Read-only payload shipped once per worker process.

    Bundles the graph and the configured base sampler, and lazily builds the
    dependency oracle every chain assigned to that process shares.  The
    oracle is dropped from the pickled state — each worker rebuilds it on
    first use (cheap next to the chains' Brandes passes) and the rebuild
    cannot change any chain: dependency vectors are deterministic regardless
    of the oracle instance or its cache history.

    The chain *target* travels with the tasks, not the payload, for the
    single and joint kinds: the payload is then a pure function of
    ``(sampler, graph, store)`` and one installed payload serves every
    request of a session whatever vertex it asks about — which is what lets
    the persistent pool ship the graph snapshot once and keep each worker's
    oracle cache warm across requests.  The edge kind keeps its target here
    because its oracle is built *per edge*.

    *shared_store* optionally carries the run's cross-process
    :class:`~repro.execution.shared_cache.SharedDependencyStore`.  On the
    per-call pool the payload travels through
    :func:`repro.execution.run_sharded`'s **initializer** — the only channel
    a process-shared lock may cross; on a persistent pool the install
    broadcast substitutes the context's lock by persistent id (see
    :mod:`repro.execution.runtime`).

    *snapshot* optionally carries the graph's CSR snapshot explicitly —
    either the plain cached arrays or a
    :class:`~repro.graphs.shared.SharedCSRGraph` handle that re-attaches
    zero-copy in the worker.  :class:`~repro.graphs.core.Graph` itself
    pickles *without* its cached snapshot, so :meth:`oracle` primes the
    worker-side graph via :meth:`~repro.graphs.core.Graph.adopt_csr` before
    building the oracle; inline (same process) the adoption is a no-op.
    """

    def __init__(
        self,
        kind: str,
        graph: Graph,
        sampler,
        target=None,
        shared_store=None,
        snapshot=None,
    ) -> None:
        self.kind = kind
        self.graph = graph
        self.sampler = sampler
        self.target = target
        self.shared_store = shared_store
        self.snapshot = snapshot
        self._oracle = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_oracle"] = None
        return state

    def oracle(self):
        if self._oracle is None:
            if self.snapshot is not None:
                self.graph.adopt_csr(self.snapshot)
            if self.kind == "edge":
                self._oracle = self.sampler.build_oracle(self.graph, self.target)
            else:
                self._oracle = self.sampler.build_oracle(
                    self.graph, shared_store=self.shared_store
                )
        return self._oracle


def _run_single_shard(payload: _ChainPayload, shard):
    """Worker: run/extend the single-space chains of one shard in order.

    Each chain record is billed with *its own* Brandes-pass delta (the
    sampler already bills deltas against whatever oracle it is handed, and
    :meth:`extend_chain` accumulates them), so a shared — possibly warm —
    per-process oracle never charges one chain for another's work.
    """
    oracle = payload.oracle()
    before = oracle.evaluations
    out = []
    for index, rng, chain, count, target in shard:
        if chain is None:
            chain = payload.sampler.run_chain(
                payload.graph, target, count, seed=rng, oracle=oracle
            )
        else:
            chain = payload.sampler.extend_chain(
                payload.graph, target, chain, count, rng=rng, oracle=oracle
            )
        out.append((index, rng, chain))
    return out, oracle.evaluations - before


def _run_fixed_shard(payload: _ChainPayload, shard):
    """Worker: run the fixed-length chains of one shard in order.

    Serves both the joint and the edge drivers — their samplers share the
    ``run_chain(graph, target, count, seed=..., oracle=...)`` shape and the
    payload's ``kind`` already dispatched the oracle type.
    """
    oracle = payload.oracle()
    before = oracle.evaluations
    out = []
    for index, rng, count, target in shard:
        chain = payload.sampler.run_chain(
            payload.graph, target, count, seed=rng, oracle=oracle
        )
        out.append((index, rng, chain))
    return out, oracle.evaluations - before


class _MultiChainBase:
    """Shared knob validation and scheduling for the three drivers."""

    def __init__(
        self,
        *,
        n_chains: int,
        n_jobs: Optional[int],
        shared_cache: Optional[bool] = None,
        shared_cache_capacity: Optional[int] = None,
        mp_context: Optional[str] = None,
        runtime: Optional[object] = None,
        shared_graph: Optional[bool] = None,
    ) -> None:
        if not isinstance(n_chains, int) or isinstance(n_chains, bool) or n_chains < 1:
            raise ConfigurationError(
                f"n_chains must be a positive integer, got {n_chains!r}"
            )
        if shared_cache is not None and not isinstance(shared_cache, bool):
            raise ConfigurationError(
                f"shared_cache must be a boolean or None, got {shared_cache!r}"
            )
        if shared_graph is not None and not isinstance(shared_graph, bool):
            raise ConfigurationError(
                f"shared_graph must be a boolean or None, got {shared_graph!r}"
            )
        if shared_cache_capacity is not None and (
            not isinstance(shared_cache_capacity, int)
            or isinstance(shared_cache_capacity, bool)
            or shared_cache_capacity < 1
        ):
            raise ConfigurationError(
                "shared_cache_capacity must be a positive integer or None, "
                f"got {shared_cache_capacity!r}"
            )
        if mp_context is not None:
            resolve_mp_context(mp_context)  # validate eagerly
        self.n_chains = n_chains
        self.n_jobs = n_jobs
        self.shared_cache = shared_cache
        self.shared_cache_capacity = shared_cache_capacity
        #: Multiprocessing start method of the chain scheduler's pools and of
        #: the shared arena's lock (``None`` consults ``REPRO_MP_CONTEXT``,
        #: then the interpreter default) — the two must agree, which is why
        #: one knob configures both.
        self.mp_context = mp_context
        #: Optional persistent :class:`~repro.execution.runtime.ExecutionContext`.
        #: With a runtime attached the driver runs its chains on the
        #: context's long-lived pool and reads/publishes dependency vectors
        #: through the context's *persistent* arena (unless ``shared_cache``
        #: is explicitly ``False``), so Brandes passes paid by earlier
        #: requests are cache hits here.  Results are bit-identical either
        #: way — the runtime only moves where work is paid.
        self.runtime = runtime
        #: Whether the graph's CSR snapshot ships to workers as a
        #: shared-memory handle (:mod:`repro.graphs.shared`) instead of
        #: pickled arrays (``None`` consults ``REPRO_SHARED_GRAPH``).
        #: Never changes an estimate — only how the snapshot travels.
        self.shared_graph = shared_graph
        #: ``SharedDependencyStore.stats()`` of the last run (``None`` when
        #: the run used private caches) — the drivers' estimate methods stamp
        #: it into their diagnostics.
        self._shared_cache_stats: Optional[Dict[str, object]] = None

    @staticmethod
    def _resolve_base(base, expected_cls, base_kwargs):
        """Build or validate the base sampler shared by every chain."""
        if base is None:
            return expected_cls(**base_kwargs)
        if base_kwargs:
            raise ConfigurationError(
                "pass either a base sampler or its keyword arguments, not both"
            )
        if not isinstance(base, expected_cls):
            raise ConfigurationError(
                f"base must be a {expected_cls.__name__}, got {type(base).__name__}"
            )
        return base

    def _resolved_jobs(self) -> int:
        """Worker processes for the chain scheduler (``REPRO_JOBS`` honoured)."""
        plan = resolve_plan(None, n_jobs=self.n_jobs)
        return plan.n_jobs if plan is not None else 1

    def _resolved_mp_context(self) -> Optional[str]:
        """Pool start method (explicit knob, else ``REPRO_MP_CONTEXT``)."""
        return resolve_mp_context(self.mp_context)

    def _resolved_shared_cache(self) -> bool:
        """Whether this run shares one dependency arena across its workers.

        The explicit ``shared_cache`` argument wins; ``None`` consults the
        ``REPRO_SHARED_CACHE`` environment override.  Resolved standalone
        (:func:`repro.execution.resolve_shared_cache`) rather than through
        plan engagement: the cache knob must never switch anything onto an
        engine code path by itself.
        """
        return resolve_shared_cache(self.shared_cache)

    def _resolved_shared_graph(self) -> bool:
        """Whether snapshots ship as shared-memory handles (env override honoured)."""
        return resolve_shared_graph(self.shared_graph)

    def _graph_snapshot(self, graph: Graph):
        """The CSR snapshot shipped explicitly in the worker payload, if any.

        ``None`` on the dict backend (there is nothing to snapshot); the
        plain cached arrays otherwise — :class:`~repro.graphs.core.Graph`
        pickles without its snapshot, so the payload carries it — and a
        zero-copy :class:`~repro.graphs.shared.SharedCSRGraph` handle when
        the ``shared_graph`` knob is on (warn-and-fallback to the plain
        arrays where shared memory is unsupported).
        """
        if resolve_backend(self.base.backend) != "csr":
            return None
        return graph_snapshot(
            graph,
            shared_graph=self._resolved_shared_graph(),
            runtime=self.runtime,
        )

    def _build_shared_store(self, graph: Graph, num_samples: int):
        """Create the run's cross-process arena, or ``None`` when not applicable.

        Falls back (with a warning) rather than failing: on the dict backend
        there is no fixed-width vector row to share, and sandboxed platforms
        may refuse shared-memory segments — in both cases the run proceeds
        on private per-worker caches, merely slower.  The arena is sized at
        ``min(|V|, total budget + K)``: a chain consumes at most one new
        source per iteration plus its initial state, so that capacity can
        never overflow (a caller-provided ``shared_cache_capacity`` may be
        smaller; overflow is then handled by the store refusing new rows).
        """
        if not self._resolved_shared_cache():
            return None
        if resolve_backend(self.base.backend) != "csr":
            warnings.warn(
                "shared_cache requires the CSR backend; falling back to "
                "private per-worker caches",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        n = graph.number_of_vertices()
        capacity = self.shared_cache_capacity
        if capacity is None:
            capacity = max(min(n, num_samples + self.n_chains), 1)
        mp_context = self._resolved_mp_context()
        if mp_context is None:
            return create_shared_store(n, capacity)
        # A configured start method must govern the arena's lock too: a
        # fork-context lock cannot enter a spawn-context worker.
        return create_shared_store(
            n, capacity, context=multiprocessing.get_context(mp_context)
        )

    def _acquire_store(self, graph: Graph, num_samples: int):
        """Return ``(store, owned)`` — the run's dependency arena, if any.

        With a runtime attached the store is the context's *persistent*
        arena (created on first use, surviving this run, invalidated by
        graph mutation) and the driver must not destroy it; ``shared_cache``
        defaults to *on* there — the warm arena is the point of a runtime —
        with explicit ``False`` opting out.  Without a runtime the legacy
        per-run lifecycle applies: the knob (or ``REPRO_SHARED_CACHE``)
        must ask for the store, and the driver owns and destroys it.
        """
        if self.runtime is not None:
            if self.shared_cache is False:
                return None, False
            if resolve_backend(self.base.backend) != "csr":
                return None, False
            return (
                self.runtime.dependency_arena(
                    graph, capacity=self.shared_cache_capacity
                ),
                False,
            )
        return self._build_shared_store(graph, num_samples), True

    def _chain_payload(self, kind: str, graph: Graph, sampler, store, snapshot):
        """Build (or recall from the runtime memo) the shared worker payload.

        One payload per ``(kind, sampler, graph version, arena, snapshot)``
        — the memo hands back the same object across requests, so a
        persistent pool installs it (and ships the graph snapshot) once and
        its workers keep their rebuilt oracles warm between requests.
        """
        if self.runtime is None:
            return _ChainPayload(
                kind, graph, sampler, shared_store=store, snapshot=snapshot
            )
        key = (
            "multichain",
            kind,
            id(sampler),
            id(graph),
            graph.version,
            store.name if store is not None else None,
            id(snapshot) if snapshot is not None else None,
        )
        return self.runtime.cached_payload(
            key,
            lambda: _ChainPayload(
                kind, graph, sampler, shared_store=store, snapshot=snapshot
            ),
        )

    def _chain_rngs(self, rng: Random) -> List[Random]:
        """One stream per chain; ``K = 1`` keeps the parent stream itself.

        Keeping the parent for a single chain is what makes the degenerate
        driver bit-identical to the legacy sequential sampler — it consumes
        the caller's stream exactly as a direct ``run_chain`` call would.
        """
        if self.n_chains == 1:
            return [rng]
        return [spawn_rng(rng, i) for i in range(self.n_chains)]

    def _run_round(self, payload, tasks, worker, jobs, chains, rngs):
        """Run one scheduler round; merge results back strictly by chain index."""
        shards = [[task] for task in tasks]
        results = run_sharded(
            worker,
            shards,
            n_jobs=jobs,
            shared=payload,
            mp_context=self._resolved_mp_context(),
            runtime=self.runtime,
        )
        chains = list(chains)
        rngs = list(rngs)
        evaluations = 0
        for shard_out, shard_evaluations in results:
            evaluations += shard_evaluations
            for index, chain_rng, chain in shard_out:
                chains[index] = chain
                rngs[index] = chain_rng
        return chains, rngs, evaluations


@dataclass
class MultiChainResult:
    """A family of single-space chains plus their cross-chain diagnostics."""

    target: Vertex
    chains: List[ChainResult]
    num_vertices: int
    diagnostics: MultiChainDiagnostics

    def pooled_estimate(self, estimator: str = "chain") -> float:
        """Return the pooled betweenness estimate over every chain's kept states.

        A sample-weighted mean: per-chain totals accumulate strictly in
        chain order (the deterministic reduce) and one division by the
        pooled count happens at the end, so a single chain reproduces
        ``ChainResult.estimate`` bit for bit.
        """
        if estimator not in ESTIMATORS:
            raise ValueError(
                f"unknown estimator {estimator!r}; expected one of {ESTIMATORS}"
            )
        scale = max(self.num_vertices - 1, 1)
        total = 0.0
        count = 0
        for chain in self.chains:
            kept = chain.kept_states()
            total += sum(state_contribution(s, estimator) for s in kept)
            count += len(kept)
        if count == 0:
            return 0.0
        return total / (count * scale)

    def per_chain_estimates(self, estimator: str = "chain") -> List[float]:
        """Return each chain's own estimate, in chain order."""
        return [chain.estimate(estimator) for chain in self.chains]

    def traces(self) -> List[List[float]]:
        """Return the post-burn-in dependency traces, in chain order."""
        return [chain.dependency_trace() for chain in self.chains]


class MultiChainMHSampler(_MultiChainBase, SingleVertexEstimator):
    """K independent single-space MH chains, pooled (see the module docstring).

    Parameters
    ----------
    base:
        The configured :class:`~repro.mcmc.single.SingleSpaceMHSampler` every
        chain runs; alternatively pass its keyword arguments directly
        (``proposal=...``, ``backend=...``, ``batch_size=...``, ...).  Must
        keep ``record_states=True`` — the traces feed the diagnostics and the
        adaptive continuation.
    n_chains:
        Number of chains ``K``.  The total sample budget of each
        :meth:`estimate` call is split across them (:func:`split_budget`).
    rhat_target:
        ``None`` (default) runs every chain to its full budget.  A float
        ``> 1`` engages the adaptive mode: chains advance in
        ``check_interval`` segments; at each checkpoint the driver proposes
        discarding the first half of every chain and measures the split-R̂ of
        the remainder — at or below the target it adopts that burn-in and
        stops early, otherwise it continues until the budget is exhausted
        (falling back to the base sampler's ``burn_in``).  With
        ``n_jobs > 1`` each round ships the accumulated chain state through
        a fresh pool and workers rebuild their oracle caches, so prefer a
        ``check_interval`` large enough that a segment's Brandes passes
        dominate that fixed cost (the inline path keeps its oracle across
        rounds and pays none of it).
    check_interval:
        Segment length of the adaptive mode.
    n_jobs:
        Worker processes for the chain scheduler (``None`` consults
        ``REPRO_JOBS``; 1 runs inline).  Never changes the pooled estimate.
    shared_cache:
        ``None`` (default) consults the ``REPRO_SHARED_CACHE`` environment
        override; ``True`` publishes every dependency vector the run
        computes into one cross-process shared-memory arena
        (:mod:`repro.execution.shared_cache`) so a Brandes pass paid by any
        worker is a cache hit for every chain — the pooled estimate is
        bit-identical either way (vectors are deterministic per source;
        only the pass counters move).  CSR-only; falls back to private
        caches with a warning where unsupported.
    shared_cache_capacity:
        Arena rows of the shared store (``None`` sizes it so overflow is
        impossible for the run's budget).  A smaller arena stays correct
        and simply stops absorbing vectors once full.
    shared_graph:
        ``None`` (default) consults the ``REPRO_SHARED_GRAPH`` environment
        override; ``True`` ships the graph's CSR snapshot to workers as one
        shared-memory segment (:mod:`repro.graphs.shared`) that every
        worker attaches zero-copy, instead of each unpickling its own copy
        of the arrays.  CSR-only; never changes the pooled estimate.
    """

    name = "mh-multichain"

    def __init__(
        self,
        base: Optional[SingleSpaceMHSampler] = None,
        *,
        n_chains: int = 4,
        rhat_target: Optional[float] = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        n_jobs: Optional[int] = None,
        shared_cache: Optional[bool] = None,
        shared_cache_capacity: Optional[int] = None,
        mp_context: Optional[str] = None,
        runtime: Optional[object] = None,
        shared_graph: Optional[bool] = None,
        **base_kwargs,
    ) -> None:
        super().__init__(
            n_chains=n_chains,
            n_jobs=n_jobs,
            shared_cache=shared_cache,
            shared_cache_capacity=shared_cache_capacity,
            mp_context=mp_context,
            runtime=runtime,
            shared_graph=shared_graph,
        )
        base = self._resolve_base(base, SingleSpaceMHSampler, base_kwargs)
        if not base.record_states:
            raise ConfigurationError(
                "multi-chain pooling needs record_states=True on the base sampler"
            )
        if rhat_target is not None and not rhat_target > 1.0:
            raise ConfigurationError(
                "rhat_target must exceed 1.0 (split-R-hat approaches 1 from above)"
            )
        if not isinstance(check_interval, int) or check_interval < 1:
            raise ConfigurationError("check_interval must be a positive integer")
        self.base = base
        self.rhat_target = rhat_target
        self.check_interval = check_interval
        self._segment_cache = None

    def _segment_sampler(self) -> SingleSpaceMHSampler:
        """Return the burn-in-stripped copy of the base the adaptive segments run.

        Segments run with ``burn_in=0``: the driver owns warm-up in adaptive
        mode (a configured burn_in would otherwise be validated against each
        short segment rather than the eventual chain) and applies the base's
        setting only as the not-converged fallback.  Memoized against the
        base's identity and burn-in so warm sessions hand the payload memo
        one stable sampler object across requests.
        """
        cached = self._segment_cache
        if (
            cached is not None
            and cached[0] is self.base
            and cached[1] == self.base.burn_in
        ):
            return cached[2]
        sampler = copy.copy(self.base)
        sampler.burn_in = 0
        self._segment_cache = (self.base, self.base.burn_in, sampler)
        return sampler

    # ------------------------------------------------------------------
    def run_chains(
        self, graph: Graph, r: Vertex, num_samples: int, *, seed: RandomState = None
    ) -> MultiChainResult:
        """Run the K chains (budget *num_samples* in total) and return the family."""
        graph.validate_vertex(r)
        rng = ensure_rng(seed)
        rngs = self._chain_rngs(rng)
        budgets = split_budget(num_samples, self.n_chains)
        store, owned = self._acquire_store(graph, num_samples)
        self._shared_cache_stats = None
        try:
            return self._run_chain_rounds(graph, r, rngs, budgets, store)
        finally:
            if owned and store is not None:
                store.destroy()

    def _run_chain_rounds(
        self, graph: Graph, r: Vertex, rngs, budgets, store
    ) -> MultiChainResult:
        """The scheduling body of :meth:`run_chains` (store lifecycle handled there)."""
        snapshot = self._graph_snapshot(graph)
        payload = self._chain_payload("single", graph, self.base, store, snapshot)
        jobs = self._resolved_jobs()
        chains: List[Optional[ChainResult]] = [None] * self.n_chains
        evaluations = 0
        if self.rhat_target is None:
            tasks = [
                (i, rngs[i], None, budgets[i], r) for i in range(self.n_chains)
            ]
            chains, rngs, evaluations = self._run_round(
                payload, tasks, _run_single_shard, jobs, chains, rngs
            )
            rounds = 1
            converged: Optional[bool] = None
        else:
            if self.base.burn_in >= min(budgets) + 1:
                raise ConfigurationError(
                    "the base sampler's burn_in must be smaller than the "
                    "per-chain budget (it is the fallback when the R-hat "
                    "target is never reached)"
                )
            payload = self._chain_payload(
                "single", graph, self._segment_sampler(), store, snapshot
            )
            converged = False
            rounds = 0
            remaining = list(budgets)
            while True:
                tasks = [
                    (i, rngs[i], chains[i], min(self.check_interval, remaining[i]), r)
                    for i in range(self.n_chains)
                    if remaining[i] > 0
                ]
                chains, rngs, used = self._run_round(
                    payload, tasks, _run_single_shard, jobs, chains, rngs
                )
                evaluations += used
                rounds += 1
                for task in tasks:
                    remaining[task[0]] -= task[3]
                # Candidate warm-up: drop the first half of every chain and
                # measure the split-R-hat of what would remain.
                burn = min(len(chain.states) for chain in chains) // 2
                traces = [
                    [s.dependency for s in chain.states[burn:]] for chain in chains
                ]
                if split_rhat(traces) <= self.rhat_target:
                    converged = True
                    for chain in chains:
                        chain.burn_in = burn
                    break
                if all(left == 0 for left in remaining):
                    for chain in chains:
                        chain.burn_in = self.base.burn_in
                    break
        if store is not None:
            self._shared_cache_stats = store.stats()
        diagnostics = diagnose_chains(
            chains, evaluations=evaluations, converged=converged, rounds=rounds
        )
        return MultiChainResult(
            target=r,
            chains=list(chains),
            num_vertices=graph.number_of_vertices(),
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    def estimate(
        self, graph: Graph, r: Vertex, num_samples: int, *, seed: RandomState = None
    ) -> SingleEstimate:
        """Return the pooled estimate of ``BC(r)`` from a total budget of *num_samples*."""
        with timed() as clock:
            result = self.run_chains(graph, r, num_samples, seed=seed)
            value = result.pooled_estimate(self.base.estimator)
        diag = result.diagnostics
        diagnostics: Dict[str, object] = {
            "acceptance_rate": diag.mean_acceptance_rate(),
            "acceptance_rates": list(diag.acceptance_rates),
            "rhat": diag.rhat,
            "ess": diag.ess,
            "evaluations": diag.evaluations,
            "proposal": self.base.proposal,
            "estimator": self.base.estimator,
            "burn_in": diag.burn_in,
            "backend": resolve_backend(self.base.backend),
            "n_chains": self.n_chains,
            "n_jobs": self._resolved_jobs(),
            "rhat_target": self.rhat_target,
            "converged": diag.converged,
            "rounds": diag.rounds,
            "shared_cache": self._shared_cache_stats is not None,
            "shared_cache_stats": self._shared_cache_stats,
            "multichain": result,
        }
        if self.n_chains == 1:
            diagnostics["chain"] = result.chains[0]
        plan = self.base._plan()
        if plan is not None:
            diagnostics["batch_size"] = plan.batch_size
        return SingleEstimate(
            vertex=r,
            estimate=value,
            samples=sum(diag.chain_lengths),
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics=diagnostics,
        )


# ----------------------------------------------------------------------
# Joint space
# ----------------------------------------------------------------------


def merge_joint_chains(chains: Sequence[JointChainResult]) -> JointChainResult:
    """Concatenate the kept states of several joint chains, strictly in chain order.

    The merged record is what the pooled Equation 22/23 estimates read: its
    multiset ``M(j)`` is the union of the per-chain multisets, so
    ``relative_matrix`` / ``ratio_estimate`` on the merged chain *are* the
    pooled estimators.  Burn-in is 0 (each chain's own burn-in was applied
    during concatenation) and ``evaluations`` sums the per-chain counters —
    the driver's workers bill each chain its own Brandes-pass delta, so the
    sum is the true total; like any work counter it reflects cache sharing
    and may legitimately differ across ``n_jobs`` (the estimates never do).
    Do not read ``acceptance_rate()`` off the merged record — the per-chain
    initial states count as accepted pseudo-proposals there; the driver
    reports the mean of the per-chain rates instead.
    """
    if not chains:
        raise ConfigurationError("merge_joint_chains needs at least one chain")
    members = chains[0].reference_set
    for chain in chains[1:]:
        if chain.reference_set != members:
            raise ConfigurationError("chains disagree on the reference set")
    states = []
    evaluations = 0
    for chain in chains:
        states.extend(chain.kept_states())
        evaluations += chain.evaluations
    return JointChainResult(
        reference_set=list(members),
        states=states,
        num_vertices=chains[0].num_vertices,
        burn_in=0,
        evaluations=evaluations,
    )


class MultiChainJointSampler(_MultiChainBase):
    """K independent joint-space MH chains with pooled relative scores.

    Same spawning, scheduling and determinism contract as
    :class:`MultiChainMHSampler` — including the ``shared_cache`` /
    ``shared_cache_capacity`` knobs, which pay off doubly here because the
    joint chain's reference-set reads revisit the same sources across every
    chain; the chains run to their fixed budgets (no adaptive mode — the
    joint chain's read-outs are per-reference-vertex multisets, not a single
    trace) and cross-chain R̂ / ESS over the dependency traces are reported
    in the estimate diagnostics.
    """

    name = "mh-joint-multichain"

    def __init__(
        self,
        base: Optional[JointSpaceMHSampler] = None,
        *,
        n_chains: int = 4,
        n_jobs: Optional[int] = None,
        shared_cache: Optional[bool] = None,
        shared_cache_capacity: Optional[int] = None,
        mp_context: Optional[str] = None,
        runtime: Optional[object] = None,
        shared_graph: Optional[bool] = None,
        **base_kwargs,
    ) -> None:
        super().__init__(
            n_chains=n_chains,
            n_jobs=n_jobs,
            shared_cache=shared_cache,
            shared_cache_capacity=shared_cache_capacity,
            mp_context=mp_context,
            runtime=runtime,
            shared_graph=shared_graph,
        )
        self.base = self._resolve_base(base, JointSpaceMHSampler, base_kwargs)

    def run_chains(
        self,
        graph: Graph,
        reference_set: Iterable[Vertex],
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> Tuple[List[JointChainResult], int]:
        """Run the K joint chains; return them (chain order) plus total evaluations."""
        members = list(dict.fromkeys(reference_set))
        rng = ensure_rng(seed)
        rngs = self._chain_rngs(rng)
        budgets = split_budget(num_samples, self.n_chains)
        store, owned = self._acquire_store(graph, num_samples)
        self._shared_cache_stats = None
        try:
            payload = self._chain_payload(
                "joint", graph, self.base, store, self._graph_snapshot(graph)
            )
            tasks = [(i, rngs[i], budgets[i], members) for i in range(self.n_chains)]
            chains, _, evaluations = self._run_round(
                payload, tasks, _run_fixed_shard, self._resolved_jobs(),
                [None] * self.n_chains, rngs,
            )
            if store is not None:
                self._shared_cache_stats = store.stats()
            return list(chains), evaluations
        finally:
            if owned and store is not None:
                store.destroy()

    def estimate_relative(
        self,
        graph: Graph,
        reference_set: Iterable[Vertex],
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> RelativeBetweennessEstimate:
        """Return the pooled Equation 22/23 estimates from K chains (budget split)."""
        with timed() as clock:
            chains, evaluations = self.run_chains(
                graph, reference_set, num_samples, seed=seed
            )
            merged = merge_joint_chains(chains)
            relative = merged.relative_matrix()
            ratios: Dict[Tuple[Vertex, Vertex], float] = {}
            for ri in merged.reference_set:
                for rj in merged.reference_set:
                    if ri == rj:
                        continue
                    try:
                        ratios[(ri, rj)] = merged.ratio_estimate(ri, rj)
                    except SamplingError:
                        ratios[(ri, rj)] = float("nan")
        traces = [[s.dependency for s in chain.kept_states()] for chain in chains]
        acceptance_rates = [chain.acceptance_rate() for chain in chains]
        diagnostics: Dict[str, object] = {
            "backend": resolve_backend(self.base.backend),
            "n_chains": self.n_chains,
            "n_jobs": self._resolved_jobs(),
            "rhat": split_rhat(traces),
            "ess": multichain_ess(traces),
            "acceptance_rates": acceptance_rates,
            "evaluations": evaluations,
            "shared_cache": self._shared_cache_stats is not None,
            "shared_cache_stats": self._shared_cache_stats,
        }
        plan = self.base._plan()
        if plan is not None:
            diagnostics["batch_size"] = plan.batch_size
        return RelativeBetweennessEstimate(
            reference_set=merged.reference_set,
            relative=relative,
            ratios=ratios,
            sample_counts=merged.sample_counts(),
            acceptance_rate=sum(acceptance_rates) / len(acceptance_rates),
            samples=sum(chain.chain_length() for chain in chains),
            elapsed_seconds=clock.elapsed,
            chain=merged,
            diagnostics=diagnostics,
        )


# ----------------------------------------------------------------------
# Edge space
# ----------------------------------------------------------------------


class MultiChainEdgeSampler(_MultiChainBase):
    """K independent edge-betweenness MH chains, pooled.

    Mirrors :class:`MultiChainMHSampler` for the edge extension: fixed
    per-chain budgets, one shared :class:`EdgeDependencyOracle` per worker
    process, sample-weighted pooled estimate, split-R̂ / pooled ESS
    diagnostics.  The cross-process ``shared_cache`` is deliberately not
    offered here: the edge oracle caches one *scalar* per source (the
    dependency on a fixed edge), so there is no expensive vector worth a
    shared-memory arena — recomputing a scalar's pass is the whole cost
    either way.
    """

    name = "mh-edge-multichain"

    def __init__(
        self,
        base: Optional[EdgeMHSampler] = None,
        *,
        n_chains: int = 4,
        n_jobs: Optional[int] = None,
        mp_context: Optional[str] = None,
        runtime: Optional[object] = None,
        shared_graph: Optional[bool] = None,
        **base_kwargs,
    ) -> None:
        super().__init__(
            n_chains=n_chains,
            n_jobs=n_jobs,
            mp_context=mp_context,
            runtime=runtime,
            shared_graph=shared_graph,
        )
        self.base = self._resolve_base(base, EdgeMHSampler, base_kwargs)

    def run_chains(
        self,
        graph: Graph,
        edge: Tuple[Vertex, Vertex],
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> Tuple[List[List[EdgeChainState]], int]:
        """Run the K edge chains; return their state lists (chain order) plus evaluations."""
        a, b = edge
        if not graph.has_edge(a, b):
            raise EdgeNotFoundError(a, b)
        rng = ensure_rng(seed)
        rngs = self._chain_rngs(rng)
        budgets = split_budget(num_samples, self.n_chains)
        # The edge oracle is built per edge, so the target stays in the
        # payload here (one payload per edge; still memoized under a
        # runtime so repeated queries about one edge reuse it).
        snapshot = self._graph_snapshot(graph)
        if self.runtime is None:
            payload = _ChainPayload("edge", graph, self.base, (a, b), snapshot=snapshot)
        else:
            payload = self.runtime.cached_payload(
                (
                    "multichain",
                    "edge",
                    id(self.base),
                    id(graph),
                    graph.version,
                    (a, b),
                    id(snapshot) if snapshot is not None else None,
                ),
                lambda: _ChainPayload(
                    "edge", graph, self.base, (a, b), snapshot=snapshot
                ),
            )
        tasks = [(i, rngs[i], budgets[i], (a, b)) for i in range(self.n_chains)]
        chains, _, evaluations = self._run_round(
            payload, tasks, _run_fixed_shard, self._resolved_jobs(),
            [None] * self.n_chains, rngs,
        )
        return list(chains), evaluations

    def estimate(
        self,
        graph: Graph,
        edge: Tuple[Vertex, Vertex],
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> SingleEstimate:
        """Return the pooled edge-betweenness estimate from a total budget of *num_samples*."""
        n = graph.number_of_vertices()
        with timed() as clock:
            chains, evaluations = self.run_chains(graph, edge, num_samples, seed=seed)
            total = 0.0
            count = 0
            for states in chains:
                total += sum(state_contribution(s, self.base.estimator) for s in states)
                count += len(states)
            value = total / (count * max(n - 1, 1))
        traces = [[s.dependency for s in states] for states in chains]
        acceptance_rates = [
            sum(1 for s in states[1:] if s.accepted) / max(len(states) - 1, 1)
            for states in chains
        ]
        return SingleEstimate(
            vertex=edge,
            estimate=value,
            samples=sum(len(states) - 1 for states in chains),
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics={
                "acceptance_rate": sum(acceptance_rates) / len(acceptance_rates),
                "acceptance_rates": acceptance_rates,
                "rhat": split_rhat(traces),
                "ess": multichain_ess(traces),
                "estimator": self.base.estimator,
                "backend": resolve_backend(self.base.backend),
                "n_chains": self.n_chains,
                "n_jobs": self._resolved_jobs(),
                "evaluations": evaluations,
            },
        )
