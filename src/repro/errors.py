"""Exception hierarchy for the :mod:`repro` library.

All errors raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class while still
being able to distinguish between graph-construction problems, algorithmic
preconditions and configuration mistakes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "GraphStructureError",
    "NotConnectedError",
    "NegativeWeightError",
    "AlgorithmError",
    "SamplingError",
    "ConfigurationError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for every error raised by the library."""


class GraphError(ReproError):
    """Base class for errors related to graph construction or mutation."""


class VertexNotFoundError(GraphError, KeyError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class GraphStructureError(GraphError):
    """Raised when a graph violates a structural precondition.

    Examples: a self-loop where loop-free graphs are required, or a directed
    graph passed to an algorithm that only supports undirected graphs.
    """


class NotConnectedError(GraphStructureError):
    """Raised when an algorithm requires a connected graph but the input is not."""


class NegativeWeightError(GraphError, ValueError):
    """Raised when an edge weight is zero or negative where positive weights are required."""

    def __init__(self, u: object, v: object, weight: float) -> None:
        super().__init__(
            f"edge ({u!r}, {v!r}) has non-positive weight {weight!r}; "
            "shortest-path algorithms require strictly positive weights"
        )
        self.u = u
        self.v = v
        self.weight = weight


class AlgorithmError(ReproError):
    """Base class for errors raised while running an algorithm."""


class SamplingError(AlgorithmError):
    """Raised when a sampler cannot make progress.

    A typical cause is a target vertex whose betweenness score is exactly
    zero: no source vertex has a positive dependency score on it, so the
    Metropolis-Hastings target distribution is degenerate.
    """


class ConfigurationError(ReproError, ValueError):
    """Raised when a caller supplies an invalid parameter value."""


class DatasetError(ReproError):
    """Raised when a named dataset cannot be built or is unknown."""
