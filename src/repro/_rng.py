"""Random-number-generator plumbing shared by every stochastic component.

Every sampler, generator and benchmark in the library accepts either a seed,
an existing :class:`random.Random` instance, or ``None``.  Funnelling the
conversion through :func:`ensure_rng` keeps runs reproducible and avoids the
global :mod:`random` state entirely.
"""

from __future__ import annotations

import random
from typing import Optional, Union

__all__ = ["RandomState", "ensure_rng", "spawn_rng"]

#: Accepted ways to specify randomness across the public API.
RandomState = Union[None, int, random.Random]


def ensure_rng(seed: RandomState = None) -> random.Random:
    """Return a :class:`random.Random` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` creates a fresh, OS-seeded generator; an ``int`` creates a
        deterministically seeded generator; an existing
        :class:`random.Random` is returned unchanged (so callers can share a
        single stream across several components).
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(
            f"seed must be None, an int, or a random.Random instance, got {type(seed).__name__}"
        )
    return random.Random(seed)


def spawn_rng(rng: random.Random, stream: int) -> random.Random:
    """Derive an independent child generator from *rng*.

    Used when a driver needs several statistically independent streams (for
    example one per repetition of an experiment) while remaining reproducible
    from a single seed.
    """
    if not isinstance(rng, random.Random):
        raise TypeError("rng must be a random.Random instance")
    if not isinstance(stream, int) or isinstance(stream, bool) or stream < 0:
        raise ValueError("stream must be a non-negative integer")
    # ``getrandbits`` advances the parent stream deterministically, so the
    # same (seed, stream) pair always yields the same child generator.
    child_seed = rng.getrandbits(64) ^ (0x9E3779B97F4A7C15 * (stream + 1) & 0xFFFFFFFFFFFFFFFF)
    return random.Random(child_seed)
