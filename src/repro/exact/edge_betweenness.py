"""Exact edge betweenness centrality.

The introduction of the paper motivates betweenness with the Girvan–Newman
community-detection loop, which repeatedly removes the edge with the highest
betweenness.  The example ``examples/community_detection.py`` uses this
module, so the reproduction ships the edge variant as well.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.graphs.core import Graph, Vertex
from repro.shortest_paths.dependencies import accumulate_edge_dependencies, spd_builder

__all__ = ["edge_betweenness_centrality", "top_edge"]


def _canonical(u: Vertex, v: Vertex, directed: bool) -> Tuple[Vertex, Vertex]:
    """Return a canonical key for an edge (sorted endpoints when undirected)."""
    if directed:
        return (u, v)
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        # Vertices that are not mutually orderable: fall back to repr order.
        return (u, v) if repr(u) <= repr(v) else (v, u)


def edge_betweenness_centrality(
    graph: Graph, *, normalized: bool = True
) -> Dict[Tuple[Vertex, Vertex], float]:
    """Return the exact betweenness centrality of every edge.

    With ``normalized=True`` scores are divided by ``|V| (|V| - 1)`` (ordered
    source/target pairs), matching the vertex-level "paper" convention.
    """
    scores: Dict[Tuple[Vertex, Vertex], float] = {
        _canonical(u, v, graph.directed): 0.0 for u, v in graph.edges()
    }
    build = spd_builder(graph)
    for s in graph.vertices():
        spd = build(graph, s)
        for (u, v), delta in accumulate_edge_dependencies(spd).items():
            scores[_canonical(u, v, graph.directed)] += delta
    n = graph.number_of_vertices()
    if normalized and n > 1:
        factor = 1.0 / (n * (n - 1))
        scores = {edge: score * factor for edge, score in scores.items()}
    return scores


def top_edge(graph: Graph) -> Tuple[Vertex, Vertex]:
    """Return the edge with the highest betweenness (ties broken arbitrarily).

    Raises
    ------
    ConfigurationError
        If the graph has no edges.
    """
    if graph.number_of_edges() == 0:
        raise ConfigurationError("the graph has no edges")
    scores = edge_betweenness_centrality(graph, normalized=False)
    return max(scores, key=scores.get)
