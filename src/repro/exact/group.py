"""Group betweenness and co-betweenness of vertex sets.

Section 3.1 of the paper surveys two natural set extensions of betweenness:

* **Group betweenness** (Everett & Borgatti 1999): fraction of shortest
  paths passing through *at least one* vertex of the set.
* **Co-betweenness** (Kolaczyk et al. 2009; Chehreghani 2014): fraction of
  shortest paths passing through *every* vertex of the set.

These are not the paper's contribution, but the examples use them (core
vertices of communities, most-prominent-group heuristics) and they share the
SPD substrate, so the reproduction includes straightforward exact
implementations suitable for small-to-mid graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import ConfigurationError
from repro.execution import (
    ExecutionPlan,
    merge_ordered,
    plan_snapshot,
    resolve_plan,
    run_sharded,
    split_shards,
)
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import np, resolve_backend
from repro.shortest_paths.batch import BatchedSPD, bfs_spd_batch_csr
from repro.shortest_paths.bfs import bfs_spd
from repro.shortest_paths.dependencies import csr_spd_builder, iter_batches, spd_builder
from repro.shortest_paths.spd import CSRShortestPathDAG, ShortestPathDAG

__all__ = [
    "group_betweenness_centrality",
    "co_betweenness_centrality",
    "greedy_prominent_group",
]


def _validate_group(graph: Graph, group: Iterable[Vertex]) -> List[Vertex]:
    members = list(dict.fromkeys(group))
    if not members:
        raise ConfigurationError("the group must contain at least one vertex")
    for v in members:
        graph.validate_vertex(v)
    return members


def _paths_through_counts(
    spd: ShortestPathDAG, group: Set[Vertex]
) -> Dict[Vertex, float]:
    """Return, per target *t*, the number of shortest source→t paths avoiding *group*.

    Counting paths that avoid every group member and subtracting from the
    total is the standard inclusion trick for group betweenness: paths
    through *at least one* member = all paths − paths through none.
    """
    avoid: Dict[Vertex, float] = {}
    source = spd.source
    avoid[source] = 0.0 if source in group else 1.0
    for t in spd.order:
        if t == source:
            continue
        if t in group:
            avoid[t] = 0.0
            continue
        avoid[t] = sum(avoid.get(p, 0.0) for p in spd.predecessors.get(t, []))
    return avoid


def _csr_avoid_counts(spd: CSRShortestPathDAG, member_mask) -> "np.ndarray":
    """Array twin of :func:`_paths_through_counts` over a CSR-built SPD.

    Runs one vectorised pass per BFS level (or an ordered per-vertex sweep
    for Dijkstra-built DAGs): a vertex's avoid-count is the sum of its DAG
    parents' counts, zeroed on group members so no path through a member is
    ever credited downstream.
    """
    n = spd.csr.number_of_vertices()
    avoid = np.zeros(n)
    s = spd.source_index
    avoid[s] = 0.0 if member_mask[s] else 1.0
    if spd.level_edges is not None:
        for parents, children in spd.level_edges:
            level_members = np.unique(children[member_mask[children]])
            counts = np.bincount(children, weights=avoid[parents], minlength=n)
            avoid += counts
            avoid[level_members] = 0.0
    else:
        pred_indptr = spd.pred_indptr
        pred_indices = spd.pred_indices
        for t in spd.order_indices.tolist():
            if t == s:
                continue
            if member_mask[t]:
                avoid[t] = 0.0
                continue
            parents = pred_indices[pred_indptr[t] : pred_indptr[t + 1]]
            avoid[t] = float(avoid[parents].sum())
    return avoid


def _csr_avoid_counts_batch(batch: BatchedSPD, member_mask):
    """Batched twin of :func:`_csr_avoid_counts` over K SPDs at once.

    One vectorised pass per BFS level over the batch's compact edge records
    (avoid counts live in per-level frontier-indexed arrays, like the sigma
    values they mirror); returns the ``(K, n)`` avoid-count matrix (row *k*
    belongs to ``batch.sources[k]``).
    """
    k, n = batch.sig.shape
    level_avoid = [np.where(member_mask[batch.sources], 0.0, 1.0)]
    for record in batch.levels:
        counts = np.bincount(
            record.child_cid,
            weights=level_avoid[-1][record.parent_cid],
            minlength=record.frontier_keys.shape[0],
        )
        counts[member_mask[record.frontier_keys % n]] = 0.0
        level_avoid.append(counts)
    avoid = np.zeros(k * n)
    avoid[batch.root_keys] = level_avoid[0]
    for record, values in zip(batch.levels, level_avoid[1:]):
        avoid[record.frontier_keys] = values
    return avoid.reshape(k, n)


def _group_shard_csr(shared, shard):
    """Shard worker: summed group-betweenness contributions of the shard's sources.

    ``shared`` is ``(csr, batch_size, member_mask)``; unweighted snapshots
    run ``batch_size`` sources per batched BFS + avoid pass, weighted ones
    fall back to the per-source kernels.  Per-source contributions are
    summed sequentially in shard order.
    """
    csr, batch_size, member_mask = shared
    total = 0.0
    if not csr.weighted:
        for batch in iter_batches(shard, batch_size):
            spds = bfs_spd_batch_csr(csr, batch)
            avoid = _csr_avoid_counts_batch(spds, member_mask)
            for row, s in enumerate(batch):
                reachable = np.flatnonzero(np.isfinite(spds.dist[row]))
                keep = reachable[(reachable != s) & ~member_mask[reachable]]
                sigma = spds.sig[row][keep]
                positive = sigma > 0.0
                through = sigma[positive] - avoid[row][keep][positive]
                ratio = through / sigma[positive]
                total += float(ratio[through > 0.0].sum())
        return total
    build = csr_spd_builder(csr)
    for s in shard:
        spd = build(csr, s)
        avoid = _csr_avoid_counts(spd, member_mask)
        reachable = spd.order_indices
        keep = reachable[(reachable != s) & ~member_mask[reachable]]
        sigma = spd.sig[keep]
        positive = sigma > 0.0
        through = sigma[positive] - avoid[keep][positive]
        ratio = through / sigma[positive]
        total += float(ratio[through > 0.0].sum())
    return total


def _group_shard_dict(shared, shard):
    """Dict-backend twin of :func:`_group_shard_csr` (``shared`` = (graph, members))."""
    graph, members = shared
    build = spd_builder(graph)
    total = 0.0
    for s in shard:
        spd = build(graph, s)
        avoiding = _paths_through_counts(spd, members)
        for t in spd.order:
            if t == s or t in members:
                continue
            sigma = spd.sigma[t]
            if sigma <= 0.0:
                continue
            through = sigma - avoiding.get(t, 0.0)
            if through > 0.0:
                total += through / sigma
    return total


def group_betweenness_centrality(
    graph: Graph,
    group: Iterable[Vertex],
    *,
    normalized: bool = True,
    backend: str = "auto",
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
    plan: Optional[ExecutionPlan] = None,
) -> float:
    """Return the group betweenness centrality of *group*.

    The score sums, over ordered pairs (s, t) with both endpoints outside the
    group, the fraction of shortest s-t paths that touch at least one group
    member.  With ``normalized=True`` it is divided by ``|V| (|V| - 1)``.
    ``batch_size`` / ``n_jobs`` / ``plan`` engage the sharded execution
    engine for the outer source loop (see :mod:`repro.execution`).
    """
    members = set(_validate_group(graph, group))
    n = graph.number_of_vertices()
    resolved_plan = resolve_plan(plan, backend=backend, batch_size=batch_size, n_jobs=n_jobs)
    if resolved_plan is not None:
        total = _group_betweenness_planned(graph, members, resolved_plan)
        if normalized and n > 1:
            total /= n * (n - 1)
        return total
    if resolve_backend(backend) == "csr":
        csr = graph.csr()
        build = csr_spd_builder(csr)
        member_mask = np.zeros(csr.number_of_vertices(), dtype=bool)
        for m in members:
            member_mask[csr.index_of(m)] = True
        total = 0.0
        for s in range(csr.number_of_vertices()):
            if member_mask[s]:
                continue
            spd = build(csr, s)
            avoid = _csr_avoid_counts(spd, member_mask)
            reachable = spd.order_indices
            keep = reachable[(reachable != s) & ~member_mask[reachable]]
            sigma = spd.sig[keep]
            positive = sigma > 0.0
            through = sigma[positive] - avoid[keep][positive]
            ratio = through / sigma[positive]
            total += float(ratio[through > 0.0].sum())
    else:
        build = spd_builder(graph)
        total = 0.0
        for s in graph.vertices():
            if s in members:
                continue
            spd = build(graph, s)
            avoiding = _paths_through_counts(spd, members)
            for t in spd.order:
                if t == s or t in members:
                    continue
                sigma = spd.sigma[t]
                if sigma <= 0.0:
                    continue
                through = sigma - avoiding.get(t, 0.0)
                if through > 0.0:
                    total += through / sigma
    if normalized and n > 1:
        total /= n * (n - 1)
    return total


def _group_betweenness_planned(
    graph: Graph, members: Set[Vertex], plan: ExecutionPlan
) -> float:
    """Sharded/batched raw group-betweenness sum (pre-normalisation)."""
    if resolve_backend(plan.backend) == "csr":
        csr = plan_snapshot(graph, plan)
        member_mask = np.zeros(csr.number_of_vertices(), dtype=bool)
        for m in members:
            member_mask[csr.index_of(m)] = True
        source_indices = [
            s for s in range(csr.number_of_vertices()) if not member_mask[s]
        ]
        if not source_indices:
            return 0.0
        return merge_ordered(
            run_sharded(
                _group_shard_csr,
                split_shards(source_indices),
                n_jobs=plan.n_jobs,
                plan=plan,
                shared=(csr, plan.batch_size, member_mask),
            )
        )
    sources = [s for s in graph.vertices() if s not in members]
    if not sources:
        return 0.0
    return merge_ordered(
        run_sharded(
            _group_shard_dict,
            split_shards(sources),
            n_jobs=plan.n_jobs,
            plan=plan,
            shared=(graph, members),
        )
    )


def co_betweenness_centrality(
    graph: Graph, group: Iterable[Vertex], *, normalized: bool = True
) -> float:
    """Return the co-betweenness centrality of *group*.

    Counts, over ordered pairs (s, t) outside the group, the fraction of
    shortest s-t paths whose interior contains **every** group member.  The
    implementation enumerates interior membership exactly via per-member
    path counts on small groups (|group| <= 2 uses the closed form; larger
    groups fall back to explicit path enumeration, which is exponential and
    intended for the small graphs used in examples and tests).
    """
    members = _validate_group(graph, group)
    member_set = set(members)
    n = graph.number_of_vertices()
    build = spd_builder(graph)
    total = 0.0
    if len(members) == 1:
        # Degenerates to ordinary betweenness of the single member.
        from repro.exact.single_vertex import betweenness_of_vertex

        score = betweenness_of_vertex(graph, members[0], normalization="paper")
        return score if normalized else score * n * (n - 1)

    from repro.shortest_paths.bidirectional import all_shortest_paths

    vertices = [v for v in graph.vertices() if v not in member_set]
    for s in vertices:
        for t in vertices:
            if s == t:
                continue
            paths = all_shortest_paths(graph, s, t)
            if not paths:
                continue
            passing = sum(1 for path in paths if member_set.issubset(path[1:-1]))
            total += passing / len(paths)
    if normalized and n > 1:
        total /= n * (n - 1)
    return total


def greedy_prominent_group(
    graph: Graph,
    size: int,
    *,
    backend: str = "auto",
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
) -> List[Vertex]:
    """Return a vertex set of the given *size* chosen greedily by marginal group betweenness.

    A lightweight stand-in for the "most prominent group" heuristics of Puzis
    et al. (Section 3.1): at each step add the vertex that most increases the
    group betweenness of the running set.
    """
    if size < 1:
        raise ConfigurationError("size must be at least 1")
    if size > graph.number_of_vertices():
        raise ConfigurationError("size cannot exceed the number of vertices")
    chosen: List[Vertex] = []
    for _ in range(size):
        best_vertex = None
        best_score = -1.0
        for candidate in graph.vertices():
            if candidate in chosen:
                continue
            score = group_betweenness_centrality(
                graph,
                chosen + [candidate],
                backend=backend,
                batch_size=batch_size,
                n_jobs=n_jobs,
            )
            if score > best_score:
                best_score = score
                best_vertex = candidate
        assert best_vertex is not None
        chosen.append(best_vertex)
    return chosen
