"""Exact betweenness algorithms: Brandes, single-vertex, edge, group and compression."""

from repro.exact.brandes import (
    NORMALIZATIONS,
    betweenness_centrality,
    normalization_factor,
)
from repro.exact.compression import (
    CompressedGraph,
    betweenness_with_compression,
    compress_degree_one,
)
from repro.exact.edge_betweenness import edge_betweenness_centrality, top_edge
from repro.exact.group import (
    co_betweenness_centrality,
    greedy_prominent_group,
    group_betweenness_centrality,
)
from repro.exact.single_vertex import (
    betweenness_of_vertex,
    betweenness_of_vertices,
    dependency_vector,
    exact_betweenness_ratio,
    exact_relative_betweenness,
    exact_stationary_relative_betweenness,
)

__all__ = [
    "betweenness_centrality",
    "normalization_factor",
    "NORMALIZATIONS",
    "betweenness_of_vertex",
    "betweenness_of_vertices",
    "dependency_vector",
    "exact_betweenness_ratio",
    "exact_relative_betweenness",
    "exact_stationary_relative_betweenness",
    "edge_betweenness_centrality",
    "top_edge",
    "group_betweenness_centrality",
    "co_betweenness_centrality",
    "greedy_prominent_group",
    "CompressedGraph",
    "compress_degree_one",
    "betweenness_with_compression",
]
