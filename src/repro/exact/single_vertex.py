"""Exact betweenness of a single vertex, and exact dependency-score vectors.

The paper's first problem (Section 1) is estimating the betweenness of one
given vertex *r*.  Its exact value is the normalised sum of the dependency
scores of every source on *r* (Equation 3); computing it costs one SPD per
source, i.e. the same ``O(|V||E|)`` as full Brandes.  The exact value is
used as ground truth throughout the test-suite and the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.execution import ExecutionPlan
from repro.graphs.core import Graph, Vertex
from repro.exact.brandes import normalization_factor
from repro.shortest_paths.dependencies import all_dependencies_on_target

__all__ = [
    "betweenness_of_vertex",
    "betweenness_of_vertices",
    "dependency_vector",
    "exact_relative_betweenness",
    "exact_stationary_relative_betweenness",
    "exact_betweenness_ratio",
]


def dependency_vector(
    graph: Graph,
    r: Vertex,
    *,
    backend: str = "auto",
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
    plan: Optional["ExecutionPlan"] = None,
    kernel: str = "auto",
    kernel_threads: Optional[int] = None,
) -> Dict[Vertex, float]:
    """Return ``{v: delta_{v.}(r)}`` — the unnormalised MH target distribution of Eq. 5.

    ``batch_size`` / ``n_jobs`` / ``plan`` engage the sharded execution
    engine for the |V| Brandes passes (see :mod:`repro.execution`);
    ``kernel`` selects the bit-identical CSR kernel rung and
    ``kernel_threads`` its jit-parallel thread count (result-neutral).
    """
    return all_dependencies_on_target(
        graph,
        r,
        backend=backend,
        batch_size=batch_size,
        n_jobs=n_jobs,
        plan=plan,
        kernel=kernel,
        kernel_threads=kernel_threads,
    )


def betweenness_of_vertex(
    graph: Graph,
    r: Vertex,
    *,
    normalization: str = "paper",
    backend: str = "auto",
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
    plan: Optional["ExecutionPlan"] = None,
    kernel: str = "auto",
    kernel_threads: Optional[int] = None,
) -> float:
    """Return the exact betweenness score of vertex *r*.

    Equivalent to ``betweenness_centrality(graph)[r]`` but phrased as the
    sum the sampling algorithms approximate, so the tests can compare both
    routes.  ``batch_size`` / ``n_jobs`` / ``plan`` engage the execution
    engine for the |V| dependency passes.
    """
    deltas = dependency_vector(
        graph,
        r,
        backend=backend,
        batch_size=batch_size,
        n_jobs=n_jobs,
        plan=plan,
        kernel=kernel,
        kernel_threads=kernel_threads,
    )
    raw = sum(deltas.values())
    factor = normalization_factor(
        graph.number_of_vertices(), normalization, directed=graph.directed
    )
    return raw * factor


def betweenness_of_vertices(
    graph: Graph,
    targets: Iterable[Vertex],
    *,
    normalization: str = "paper",
    backend: str = "auto",
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
) -> Dict[Vertex, float]:
    """Return the exact betweenness of each vertex in *targets*."""
    return {
        r: betweenness_of_vertex(
            graph,
            r,
            normalization=normalization,
            backend=backend,
            batch_size=batch_size,
            n_jobs=n_jobs,
        )
        for r in targets
    }


def exact_betweenness_ratio(
    graph: Graph, ri: Vertex, rj: Vertex, *, backend: str = "auto"
) -> float:
    """Return the exact ratio ``BC(ri) / BC(rj)``.

    Raises
    ------
    ZeroDivisionError
        If ``BC(rj)`` is exactly zero; callers in the benchmark harness pick
        reference vertices with positive betweenness.
    """
    bc_i = betweenness_of_vertex(graph, ri, backend=backend)
    bc_j = betweenness_of_vertex(graph, rj, backend=backend)
    return bc_i / bc_j


def exact_relative_betweenness(
    graph: Graph, ri: Vertex, rj: Vertex, *, backend: str = "auto"
) -> float:
    """Return the exact relative betweenness score ``BC_rj(ri)`` of Equation 23.

    .. math::

       BC_{r_j}(r_i) = \\frac{1}{|V(G)|} \\sum_{v \\in V(G)}
           \\min\\left\\{1, \\frac{\\delta_{v\\bullet}(r_i)}{\\delta_{v\\bullet}(r_j)}\\right\\}

    Following the paper's joint-space construction, a source *v* with
    :math:`\\delta_{v\\bullet}(r_j) = 0` cannot appear in the chain restricted
    to :math:`r_j` (its stationary probability is zero), and the min-ratio it
    would contribute is taken as 1 when :math:`\\delta_{v\\bullet}(r_i) > 0`
    and 0 when both dependencies vanish.
    """
    graph.validate_vertex(ri)
    graph.validate_vertex(rj)
    deltas_i = dependency_vector(graph, ri, backend=backend)
    deltas_j = dependency_vector(graph, rj, backend=backend)
    n = graph.number_of_vertices()
    if n == 0:
        return 0.0
    total = 0.0
    for v in graph.vertices():
        di = deltas_i.get(v, 0.0)
        dj = deltas_j.get(v, 0.0)
        if dj > 0.0:
            total += min(1.0, di / dj)
        elif di > 0.0:
            total += 1.0
        # both zero: contributes 0
    return total / n


def exact_stationary_relative_betweenness(
    graph: Graph, ri: Vertex, rj: Vertex, *, backend: str = "auto"
) -> float:
    """Return the expectation the joint-space chain's relative estimator converges to.

    .. math::

       E_{P_{r_j}}\\Bigl[\\min\\Bigl\\{1,
           \\frac{\\delta_{v\\bullet}(r_i)}{\\delta_{v\\bullet}(r_j)}\\Bigr\\}\\Bigr]
       = \\frac{\\sum_v \\min\\{\\delta_{v\\bullet}(r_i), \\delta_{v\\bullet}(r_j)\\}}
              {\\sum_v \\delta_{v\\bullet}(r_j)}

    **Reproduction note.**  Equation 23 of the paper defines the relative
    betweenness score as the *uniform* average over sources, but the samples
    of the joint-space chain restricted to ``r_j`` are distributed according
    to Equation 5 (``P_{r_j}``), so the Equation 22 numerator converges to
    *this* quantity instead.  The two coincide when the dependency scores on
    ``r_j`` are flat (µ(r_j) = 1).  Theorem 3 — the ratio identity — holds
    exactly for the stationary expectations, which is why the ratio estimator
    remains consistent even when the two averages differ.

    Raises
    ------
    ZeroDivisionError
        If ``BC(rj)`` is exactly zero (the chain restricted to r_j is
        degenerate).
    """
    graph.validate_vertex(ri)
    graph.validate_vertex(rj)
    deltas_i = dependency_vector(graph, ri, backend=backend)
    deltas_j = dependency_vector(graph, rj, backend=backend)
    denominator = sum(deltas_j.values())
    numerator = sum(
        min(deltas_i.get(v, 0.0), deltas_j.get(v, 0.0)) for v in graph.vertices()
    )
    return numerator / denominator
