"""Degree-one compression preprocessing (Çatalyürek et al. 2013 style).

Section 3 of the paper cites compression and shattering as the standard
practical accelerators of Brandes's algorithm.  This module implements the
degree-one ("pendant removal") compression step and the exact reconstruction
of betweenness scores from the compressed graph.

The idea: a degree-one vertex hangs off the rest of the graph by a single
edge, so every shortest path touching it is forced through its neighbour.
Removing pendant vertices iteratively peels off a *pendant forest* rooted at
the surviving 2-core vertices.  Exact betweenness then decomposes into

* a multiplicity-weighted Brandes run over the compressed graph (pairs whose
  endpoints fold into two *different* surviving vertices, credited to the
  surviving vertices strictly between them), plus
* closed-form tree corrections for the pendant forest (pairs with an endpoint
  strictly inside a pendant subtree always cross the subtree's unique tree
  path, so every vertex on that path has pair dependency exactly 1).

The test-suite checks the reconstruction against plain Brandes on trees,
lollipops, and random graphs with pendant decorations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graphs.core import Graph, Vertex
from repro.shortest_paths.dependencies import spd_builder

__all__ = ["CompressedGraph", "compress_degree_one", "betweenness_with_compression"]


@dataclass
class CompressedGraph:
    """Result of iterative degree-one compression.

    Attributes
    ----------
    graph:
        The compressed graph; every remaining vertex has degree >= 2 unless
        the whole graph collapsed to a single vertex or edge.
    multiplicity:
        For each surviving vertex *x*, the number of original vertices folded
        into it (itself plus its entire pendant subtree).
    removed:
        Vertices removed, in removal order.
    parent:
        For each removed vertex, the neighbour it was folded into at removal
        time (which may itself have been removed later).
    reach:
        For each removed vertex *u*, the number of original vertices in the
        pendant subtree rooted at *u* (including *u*).
    children:
        For every vertex (removed or surviving), the list of its *removed*
        pendant children in the pendant forest.
    original_size:
        ``|V|`` of the original graph.
    """

    graph: Graph
    multiplicity: Dict[Vertex, float]
    removed: List[Vertex] = field(default_factory=list)
    parent: Dict[Vertex, Vertex] = field(default_factory=dict)
    reach: Dict[Vertex, int] = field(default_factory=dict)
    children: Dict[Vertex, List[Vertex]] = field(default_factory=dict)
    original_size: int = 0

    def compression_ratio(self) -> float:
        """Return ``|V_compressed| / |V_original|`` (1.0 when nothing was removed)."""
        if self.original_size == 0:
            return 1.0
        return self.graph.number_of_vertices() / self.original_size


def compress_degree_one(graph: Graph) -> CompressedGraph:
    """Iteratively remove degree-one vertices, recording the pendant forest."""
    graph.require_undirected()
    work = graph.copy()
    reach: Dict[Vertex, int] = {v: 1 for v in work.vertices()}
    parent: Dict[Vertex, Vertex] = {}
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in work.vertices()}
    removed: List[Vertex] = []

    pendants = [v for v in work.vertices() if work.degree(v) == 1]
    while pendants and work.number_of_vertices() > 2:
        next_round: List[Vertex] = []
        for v in pendants:
            if not work.has_vertex(v) or work.degree(v) != 1:
                continue
            if work.number_of_vertices() <= 2:
                break
            neighbor = next(iter(work.neighbors(v)))
            parent[v] = neighbor
            children[neighbor].append(v)
            reach[neighbor] += reach[v]
            work.remove_vertex(v)
            removed.append(v)
            if work.has_vertex(neighbor) and work.degree(neighbor) == 1:
                next_round.append(neighbor)
        pendants = next_round

    multiplicity = {v: float(reach[v]) for v in work.vertices()}
    return CompressedGraph(
        graph=work,
        multiplicity=multiplicity,
        removed=removed,
        parent=parent,
        reach={v: reach[v] for v in removed},
        children=children,
        original_size=graph.number_of_vertices(),
    )


def _weighted_core_betweenness(compressed: CompressedGraph) -> Dict[Vertex, float]:
    """Return ordered-pair dependency sums for surviving vertices from core pairs.

    Runs Brandes over the compressed graph where a source *s* stands for
    ``multiplicity[s]`` original sources and a target *w* for
    ``multiplicity[w]`` original targets.  Only surviving vertices *strictly
    between* source and target representatives receive credit here; the
    endpoints' own credit comes from the tree corrections.
    """
    core = compressed.graph
    mult = compressed.multiplicity
    build = spd_builder(core)
    raw: Dict[Vertex, float] = {v: 0.0 for v in core.vertices()}
    for s in core.vertices():
        spd = build(core, s)
        delta: Dict[Vertex, float] = {v: 0.0 for v in spd.order}
        for w in reversed(spd.order):
            coefficient = (mult[w] + delta[w]) / spd.sigma[w]
            for v in spd.predecessors.get(w, []):
                delta[v] += spd.sigma[v] * coefficient
        for v in spd.order:
            if v != s:
                raw[v] += mult[s] * delta[v]
        # ``delta[v]`` for v != s now counts, with weight mult[w], the pair
        # dependencies of all targets w != s on v — including w's folded
        # vertices.  Multiplying by mult[s] extends it to all folded sources.
        # The source representative s itself must not be credited here (it is
        # an endpoint for these pairs), hence the ``v != s`` guard.
    return raw


def _pendant_corrections(compressed: CompressedGraph) -> Dict[Vertex, float]:
    """Return ordered-pair dependency sums contributed by the pendant forest."""
    n = compressed.original_size
    corrections: Dict[Vertex, float] = {}

    # Removed vertices: below(u) = reach[u] - 1 vertices hang strictly below.
    for u in compressed.removed:
        below = compressed.reach[u] - 1
        child_sizes = [compressed.reach[c] for c in compressed.children.get(u, [])]
        cross = _cross_pairs(child_sizes)
        outside = n - compressed.reach[u]  # everything not in u's subtree
        corrections[u] = 2.0 * (below * outside + cross)

    # Surviving vertices: below(x) = multiplicity[x] - 1.
    for x in compressed.graph.vertices():
        mult_x = compressed.multiplicity[x]
        below = mult_x - 1.0
        child_sizes = [compressed.reach[c] for c in compressed.children.get(x, [])]
        cross = _cross_pairs(child_sizes)
        outside = n - mult_x  # original vertices folded into other survivors
        corrections[x] = 2.0 * (below * outside + cross)
    return corrections


def _cross_pairs(sizes: List[int]) -> float:
    """Return the number of unordered pairs taken from two *different* groups."""
    total = sum(sizes)
    return (total * total - sum(s * s for s in sizes)) / 2.0


def betweenness_with_compression(
    graph: Graph, *, normalization: str = "paper"
) -> Dict[Vertex, float]:
    """Exact betweenness of every vertex computed through degree-one compression.

    Equivalent to :func:`repro.exact.brandes.betweenness_centrality` but runs
    Brandes only on the 2-core, which is substantially faster on graphs with
    many pendant vertices (trees, lollipops, scale-free graphs with a large
    1-shell).
    """
    from repro.exact.brandes import normalization_factor

    compressed = compress_degree_one(graph)
    raw = _weighted_core_betweenness(compressed)
    corrections = _pendant_corrections(compressed)
    scores: Dict[Vertex, float] = {}
    for v in graph.vertices():
        scores[v] = raw.get(v, 0.0) + corrections.get(v, 0.0)
    factor = normalization_factor(
        compressed.original_size, normalization, directed=graph.directed
    )
    return {v: score * factor for v, score in scores.items()}
