"""Exact betweenness centrality via Brandes's algorithm.

Time complexity: ``O(|V||E|)`` for unweighted graphs and
``O(|V||E| + |V|^2 log |V|)`` for weighted graphs with positive weights —
the most efficient known exact method, and the reference every approximate
estimator in this library is measured against.

Normalisation conventions
-------------------------
Different papers and libraries divide the raw pair-dependency sum by
different constants.  All exact and approximate estimators in this library
accept a ``normalization`` argument with the following values:

``"paper"`` (default)
    Equation 1 of the paper: divide by ``|V| (|V| - 1)``, counting ordered
    source/target pairs.  All theorems in the paper are stated in this
    scale, and every estimator here defaults to it.
``"count"``
    The raw number of (unordered, for undirected graphs) pair dependencies
    — Freeman's original definition.
``"pairs"``
    Divide by ``(|V| - 1)(|V| - 2)`` (the number of ordered pairs excluding
    the vertex itself); this matches ``networkx.betweenness_centrality``
    with ``normalized=True`` on undirected graphs and is provided for
    cross-validation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import ConfigurationError
from repro.execution import (
    ExecutionPlan,
    interned_payload,
    merge_ordered,
    plan_snapshot,
    resolve_plan,
    run_sharded,
    split_shards,
)
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import np, resolve_backend
from repro.shortest_paths.dependencies import (
    accumulate_dependencies,
    csr_source_dependencies,
    dependency_sum_shard_csr,
    dependency_sum_shard_dict,
    spd_builder,
)

__all__ = ["betweenness_centrality", "normalization_factor", "NORMALIZATIONS"]

#: The accepted normalisation names.
NORMALIZATIONS = ("paper", "count", "pairs")


def normalization_factor(n: int, normalization: str, *, directed: bool = False) -> float:
    """Return the multiplicative factor applied to the raw ordered-pair dependency sum.

    The raw quantity produced by summing Brandes dependencies over all source
    vertices counts **ordered** (s, t) pairs.  The factor returned here
    converts that raw sum into the requested convention.
    """
    if normalization not in NORMALIZATIONS:
        raise ConfigurationError(
            f"unknown normalization {normalization!r}; expected one of {NORMALIZATIONS}"
        )
    if normalization == "paper":
        if n < 2:
            return 0.0
        return 1.0 / (n * (n - 1))
    if normalization == "pairs":
        if n < 3:
            return 0.0
        return 1.0 / ((n - 1) * (n - 2))
    # "count": unordered pairs for undirected graphs, ordered for directed.
    return 1.0 if directed else 0.5


def betweenness_centrality(
    graph: Graph,
    *,
    normalization: str = "paper",
    sources: Optional[Iterable[Vertex]] = None,
    backend: str = "auto",
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
    plan: Optional[ExecutionPlan] = None,
    kernel: str = "auto",
    kernel_threads: Optional[int] = None,
) -> Dict[Vertex, float]:
    """Return the exact betweenness centrality of every vertex.

    Parameters
    ----------
    graph:
        Input graph (undirected or directed, unweighted or positively
        weighted).
    normalization:
        One of :data:`NORMALIZATIONS`; see the module docstring.
    sources:
        Optional restriction of the outer loop to a subset of source
        vertices.  With the default (all vertices) the result is exact; with
        a subset it is the building block of the uniform source-sampling
        baseline and of tests that check per-source contributions.
    backend:
        ``"auto"`` (default), ``"dict"`` or ``"csr"``.  ``"auto"`` runs on
        the flat-array CSR kernels whenever numpy is available; the two
        backends agree to floating-point accumulation order.
    batch_size, n_jobs, plan:
        Execution-engine knobs (see :mod:`repro.execution`): when any is
        set (or the ``REPRO_BATCH`` / ``REPRO_JOBS`` env vars are), the
        outer source loop runs sharded — ``batch_size`` sources per batched
        CSR traversal, shards spread over ``n_jobs`` processes, buffers
        merged in deterministic shard order, so the result is bit-identical
        for any ``n_jobs`` / ``batch_size``.
    kernel:
        CSR kernel rung (``"auto"`` / ``"csr"`` / ``"compiled"``, see
        :func:`~repro.graphs.csr.resolve_kernel`).  The compiled rung is
        bit-identical to the numpy rung, so this knob never changes the
        returned scores — only how fast each Brandes pass runs.
    kernel_threads:
        Thread count of the compiled jit-parallel batch kernels (see
        :func:`~repro.execution.resolve_kernel_threads`); rows accumulate
        in source order at any thread count, so this too is result-neutral.

    Returns
    -------
    dict
        ``{vertex: betweenness score}`` for every vertex of the graph (also
        the ones with score 0).
    """
    factor = normalization_factor(
        graph.number_of_vertices(), normalization, directed=graph.directed
    )
    resolved_plan = resolve_plan(
        plan,
        backend=backend,
        batch_size=batch_size,
        n_jobs=n_jobs,
        kernel=kernel,
        kernel_threads=kernel_threads,
    )
    if resolved_plan is not None:
        return _betweenness_centrality_planned(graph, factor, sources, resolved_plan)
    if resolve_backend(backend) == "csr":
        csr = graph.csr()
        totals = np.zeros(csr.number_of_vertices())
        if sources is None:
            source_indices = range(csr.number_of_vertices())
        else:
            source_indices = [csr.index_of(s) for s in sources]
        for i in source_indices:
            # delta[i] == 0 by construction, so plain array addition matches
            # the dict loop's "skip v == s" rule.
            totals += csr_source_dependencies(csr, i, kernel=kernel)
        return csr.array_to_vertex_map(totals * factor)
    build = spd_builder(graph)
    scores: Dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
    source_list = list(sources) if sources is not None else graph.vertices()
    for s in source_list:
        graph.validate_vertex(s)
        spd = build(graph, s)
        deltas = accumulate_dependencies(spd)
        for v, delta in deltas.items():
            if v != s:
                scores[v] += delta
    return {v: score * factor for v, score in scores.items()}


def _betweenness_centrality_planned(
    graph: Graph,
    factor: float,
    sources: Optional[Iterable[Vertex]],
    plan: ExecutionPlan,
) -> Dict[Vertex, float]:
    """Sharded/batched Brandes: the execution-engine twin of the loops above."""
    if resolve_backend(plan.backend) == "csr":
        csr = plan_snapshot(graph, plan)
        if sources is None:
            source_indices = list(range(csr.number_of_vertices()))
        else:
            source_indices = [csr.index_of(s) for s in sources]
        if not source_indices:
            return csr.array_to_vertex_map(np.zeros(csr.number_of_vertices()))
        totals = merge_ordered(
            run_sharded(
                dependency_sum_shard_csr,
                split_shards(source_indices),
                n_jobs=plan.n_jobs,
                plan=plan,
                # Interning keeps one payload object per (snapshot, batch,
                # kernel, threads) across calls, so a persistent pool ships
                # the CSR arrays to its workers once per session, not per
                # request.
                shared=interned_payload(
                    plan,
                    (
                        "dep-sum-csr",
                        id(csr),
                        plan.batch_size,
                        plan.kernel,
                        plan.kernel_threads,
                    ),
                    lambda: (csr, plan.batch_size, plan.kernel, plan.kernel_threads),
                ),
            )
        )
        return csr.array_to_vertex_map(totals * factor)
    source_list = list(sources) if sources is not None else graph.vertices()
    for s in source_list:
        graph.validate_vertex(s)
    if not source_list:
        return {v: 0.0 for v in graph.vertices()}
    scores = merge_ordered(
        run_sharded(
            dependency_sum_shard_dict,
            split_shards(source_list),
            n_jobs=plan.n_jobs,
            plan=plan,
            shared=graph,
        )
    )
    return {v: scores.get(v, 0.0) * factor for v in graph.vertices()}
