"""Error metrics, rank correlation, coverage and convergence analysis."""

from repro.analysis.convergence import ConvergencePoint, bias_curve, convergence_sweep
from repro.analysis.coverage import CoverageResult, coverage_curve, empirical_coverage
from repro.analysis.errors import (
    absolute_error,
    errors_by_vertex,
    max_absolute_error,
    mean_absolute_error,
    mean_squared_error,
    relative_error,
    root_mean_squared_error,
    summarize_runs,
)
from repro.analysis.ranking import (
    kendall_tau,
    rank_vertices,
    ranking_report,
    spearman_correlation,
    top_k_accuracy,
)

__all__ = [
    "absolute_error",
    "relative_error",
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "max_absolute_error",
    "errors_by_vertex",
    "summarize_runs",
    "rank_vertices",
    "spearman_correlation",
    "kendall_tau",
    "top_k_accuracy",
    "ranking_report",
    "CoverageResult",
    "empirical_coverage",
    "coverage_curve",
    "ConvergencePoint",
    "convergence_sweep",
    "bias_curve",
]
