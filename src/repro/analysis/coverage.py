"""Empirical (ε, δ) coverage of the paper's error bounds (experiment E3).

Theorem 1 states ``P[|BC_hat(r) - BC(r)| > ε] <= bound(T, ε, µ(r))``.  The
coverage experiment runs many independent chains, measures how often the
error actually exceeds ε, and checks that this empirical failure rate never
exceeds the theoretical bound.  These helpers are estimator-agnostic: they
take a callable producing one estimate per invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro._rng import RandomState, ensure_rng, spawn_rng
from repro.errors import ConfigurationError

__all__ = ["CoverageResult", "empirical_coverage", "coverage_curve"]


@dataclass
class CoverageResult:
    """Outcome of one coverage experiment for a single ε value."""

    epsilon: float
    runs: int
    failures: int
    empirical_failure_rate: float
    theoretical_bound: Optional[float] = None
    errors: List[float] = None  # type: ignore[assignment]

    def within_bound(self) -> bool:
        """Return ``True`` when the empirical failure rate respects the theoretical bound."""
        if self.theoretical_bound is None:
            return True
        return self.empirical_failure_rate <= self.theoretical_bound + 1e-12


def empirical_coverage(
    estimator: Callable[[RandomState], float],
    exact_value: float,
    epsilon: float,
    runs: int,
    *,
    seed: RandomState = None,
    theoretical_bound: Optional[float] = None,
) -> CoverageResult:
    """Run *estimator* *runs* times and measure how often its error exceeds *epsilon*.

    Parameters
    ----------
    estimator:
        Callable taking a random state and returning one estimate.
    exact_value:
        The ground-truth value the estimates are compared against.
    epsilon:
        The additive error threshold of the (ε, δ) guarantee.
    runs:
        Number of independent repetitions.
    theoretical_bound:
        Optional failure-probability bound (for example from
        :func:`repro.mcmc.bounds.mcmc_error_probability`) recorded alongside
        the empirical rate.
    """
    if runs < 1:
        raise ConfigurationError("runs must be at least 1")
    if epsilon <= 0.0:
        raise ConfigurationError("epsilon must be positive")
    rng = ensure_rng(seed)
    errors: List[float] = []
    failures = 0
    for i in range(runs):
        child = spawn_rng(rng, i)
        estimate = estimator(child)
        error = abs(estimate - exact_value)
        errors.append(error)
        if error > epsilon:
            failures += 1
    return CoverageResult(
        epsilon=epsilon,
        runs=runs,
        failures=failures,
        empirical_failure_rate=failures / runs,
        theoretical_bound=theoretical_bound,
        errors=errors,
    )


def coverage_curve(
    estimator: Callable[[RandomState], float],
    exact_value: float,
    epsilons: Sequence[float],
    runs: int,
    *,
    seed: RandomState = None,
    bound_for_epsilon: Optional[Callable[[float], float]] = None,
) -> List[CoverageResult]:
    """Return one :class:`CoverageResult` per ε, re-using the same set of runs.

    The estimator is invoked ``runs`` times once, then every ε threshold is
    applied to the same error sample — this is what a coverage *figure*
    plots.
    """
    if runs < 1:
        raise ConfigurationError("runs must be at least 1")
    rng = ensure_rng(seed)
    errors: List[float] = []
    for i in range(runs):
        child = spawn_rng(rng, i)
        errors.append(abs(estimator(child) - exact_value))
    results: List[CoverageResult] = []
    for epsilon in epsilons:
        if epsilon <= 0.0:
            raise ConfigurationError("every epsilon must be positive")
        failures = sum(1 for e in errors if e > epsilon)
        bound = bound_for_epsilon(epsilon) if bound_for_epsilon is not None else None
        results.append(
            CoverageResult(
                epsilon=epsilon,
                runs=runs,
                failures=failures,
                empirical_failure_rate=failures / runs,
                theoretical_bound=bound,
                errors=list(errors),
            )
        )
    return results
