"""Error metrics used by the benchmark harness (experiments E1, E3, E5).

All metrics operate on plain floats or on ``{vertex: value}`` mappings so
they can compare any estimator against the exact Brandes values without
caring which estimator produced them.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "absolute_error",
    "relative_error",
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "max_absolute_error",
    "errors_by_vertex",
    "summarize_runs",
]


def absolute_error(estimate: float, exact: float) -> float:
    """Return ``|estimate - exact|``."""
    return abs(estimate - exact)


def relative_error(estimate: float, exact: float) -> float:
    """Return ``|estimate - exact| / |exact|``; infinite when the exact value is 0 and the estimate is not."""
    if exact == 0.0:
        return 0.0 if estimate == 0.0 else float("inf")
    return abs(estimate - exact) / abs(exact)


def _paired(estimates: Sequence[float], exact: Sequence[float]) -> List[Tuple[float, float]]:
    if len(estimates) != len(exact):
        raise ConfigurationError(
            f"length mismatch: {len(estimates)} estimates vs {len(exact)} exact values"
        )
    if not estimates:
        raise ConfigurationError("at least one value is required")
    return list(zip(estimates, exact))


def mean_absolute_error(estimates: Sequence[float], exact: Sequence[float]) -> float:
    """Return the mean of ``|estimate_i - exact_i|``."""
    pairs = _paired(estimates, exact)
    return sum(abs(a - b) for a, b in pairs) / len(pairs)


def mean_squared_error(estimates: Sequence[float], exact: Sequence[float]) -> float:
    """Return the mean of ``(estimate_i - exact_i)^2``."""
    pairs = _paired(estimates, exact)
    return sum((a - b) ** 2 for a, b in pairs) / len(pairs)


def root_mean_squared_error(estimates: Sequence[float], exact: Sequence[float]) -> float:
    """Return the square root of :func:`mean_squared_error`."""
    return math.sqrt(mean_squared_error(estimates, exact))


def max_absolute_error(estimates: Sequence[float], exact: Sequence[float]) -> float:
    """Return ``max_i |estimate_i - exact_i|``."""
    pairs = _paired(estimates, exact)
    return max(abs(a - b) for a, b in pairs)


def errors_by_vertex(
    estimates: Mapping, exact: Mapping
) -> Dict[object, float]:
    """Return ``{vertex: |estimate - exact|}`` over the vertices present in *exact*."""
    return {v: abs(estimates.get(v, 0.0) - exact[v]) for v in exact}


def summarize_runs(errors: Sequence[float]) -> Dict[str, float]:
    """Return mean / max / RMS statistics of a sequence of per-run errors.

    Used by the benchmark harness to aggregate the repetitions of one
    configuration into a single table row.
    """
    if not errors:
        raise ConfigurationError("at least one error value is required")
    n = len(errors)
    mean = sum(errors) / n
    return {
        "runs": float(n),
        "mean": mean,
        "max": max(errors),
        "min": min(errors),
        "rms": math.sqrt(sum(e * e for e in errors) / n),
        "stddev": math.sqrt(sum((e - mean) ** 2 for e in errors) / n) if n > 1 else 0.0,
    }
