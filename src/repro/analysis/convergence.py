"""Convergence curves: estimate quality as a function of chain length (experiments E1, E7)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro._rng import RandomState, ensure_rng, spawn_rng
from repro.analysis.errors import summarize_runs
from repro.errors import ConfigurationError

__all__ = ["ConvergencePoint", "convergence_sweep", "bias_curve"]


@dataclass
class ConvergencePoint:
    """Aggregated error statistics of one (estimator, sample-budget) configuration."""

    samples: int
    mean_error: float
    max_error: float
    rms_error: float
    stddev: float
    runs: int

    def as_row(self) -> Dict[str, float]:
        """Return the point as a flat dictionary (one benchmark-table row)."""
        return {
            "samples": float(self.samples),
            "mean_error": self.mean_error,
            "max_error": self.max_error,
            "rms_error": self.rms_error,
            "stddev": self.stddev,
            "runs": float(self.runs),
        }


def convergence_sweep(
    estimator: Callable[[int, RandomState], float],
    exact_value: float,
    sample_budgets: Sequence[int],
    repetitions: int,
    *,
    seed: RandomState = None,
) -> List[ConvergencePoint]:
    """Evaluate *estimator* at several sample budgets, *repetitions* times each.

    Parameters
    ----------
    estimator:
        Callable ``(num_samples, random_state) -> estimate``.
    exact_value:
        Ground truth the absolute error is measured against.
    sample_budgets:
        The increasing sample counts to evaluate (the x-axis of the paper's
        error-vs-samples exhibits).
    repetitions:
        Independent repetitions per budget (error bars).
    """
    if repetitions < 1:
        raise ConfigurationError("repetitions must be at least 1")
    rng = ensure_rng(seed)
    points: List[ConvergencePoint] = []
    stream = 0
    for budget in sample_budgets:
        if budget < 1:
            raise ConfigurationError("every sample budget must be at least 1")
        errors: List[float] = []
        for _ in range(repetitions):
            child = spawn_rng(rng, stream)
            stream += 1
            estimate = estimator(budget, child)
            errors.append(abs(estimate - exact_value))
        stats = summarize_runs(errors)
        points.append(
            ConvergencePoint(
                samples=budget,
                mean_error=stats["mean"],
                max_error=stats["max"],
                rms_error=stats["rms"],
                stddev=stats["stddev"],
                runs=repetitions,
            )
        )
    return points


def bias_curve(
    running_estimates: Sequence[float], exact_value: float
) -> List[float]:
    """Return ``|estimate_t - exact|`` for each prefix estimate of one chain.

    The Equation 7 estimator is biased for finite T (the paper notes this);
    this helper turns a chain's running estimates into the bias-decay curve
    plotted by benchmark E7.
    """
    return [abs(value - exact_value) for value in running_estimates]
