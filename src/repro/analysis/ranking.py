"""Rank-correlation metrics (experiment E6).

The second motivating observation of the paper is that applications often
need betweenness *ratios* or *rankings* rather than absolute scores.  These
metrics quantify how well an estimator preserves the exact ranking.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "rank_vertices",
    "spearman_correlation",
    "kendall_tau",
    "top_k_accuracy",
    "ranking_report",
]


def rank_vertices(scores: Mapping) -> List:
    """Return the vertices sorted by score, descending (ties broken by repr for determinism)."""
    return sorted(scores, key=lambda v: (-scores[v], repr(v)))


def _ranks(values: Sequence[float]) -> List[float]:
    """Return fractional ranks (average rank for ties), 1-based."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average_rank
        i = j + 1
    return ranks


def spearman_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Return Spearman's rank correlation between two equal-length score sequences."""
    if len(x) != len(y):
        raise ConfigurationError("sequences must have equal length")
    if len(x) < 2:
        raise ConfigurationError("at least two values are required")
    rank_x = _ranks(x)
    rank_y = _ranks(y)
    mean_x = sum(rank_x) / len(rank_x)
    mean_y = sum(rank_y) / len(rank_y)
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rank_x, rank_y))
    var_x = sum((a - mean_x) ** 2 for a in rank_x)
    var_y = sum((b - mean_y) ** 2 for b in rank_y)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


def kendall_tau(x: Sequence[float], y: Sequence[float]) -> float:
    """Return Kendall's tau-b between two equal-length score sequences."""
    if len(x) != len(y):
        raise ConfigurationError("sequences must have equal length")
    n = len(x)
    if n < 2:
        raise ConfigurationError("at least two values are required")
    concordant = discordant = 0
    ties_x = ties_y = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = x[i] - x[j]
            dy = y[i] - y[j]
            if dx == 0.0 and dy == 0.0:
                continue
            if dx == 0.0:
                ties_x += 1
            elif dy == 0.0:
                ties_y += 1
            elif dx * dy > 0.0:
                concordant += 1
            else:
                discordant += 1
    denominator = ((concordant + discordant + ties_x) * (concordant + discordant + ties_y)) ** 0.5
    if denominator == 0.0:
        return 0.0
    return (concordant - discordant) / denominator


def top_k_accuracy(estimated: Mapping, exact: Mapping, k: int) -> float:
    """Return the fraction of the exact top-*k* vertices recovered by the estimate."""
    if k < 1:
        raise ConfigurationError("k must be at least 1")
    exact_top = set(rank_vertices(exact)[:k])
    estimated_top = set(rank_vertices(estimated)[:k])
    return len(exact_top & estimated_top) / k


def ranking_report(estimated: Mapping, exact: Mapping, *, k: int = 5) -> Dict[str, float]:
    """Return Spearman / Kendall / top-k agreement between two score maps over the same vertices."""
    common = [v for v in exact if v in estimated]
    if len(common) < 2:
        raise ConfigurationError("at least two common vertices are required")
    est = [estimated[v] for v in common]
    exa = [exact[v] for v in common]
    return {
        "spearman": spearman_correlation(est, exa),
        "kendall": kendall_tau(est, exa),
        "top_k_accuracy": top_k_accuracy(estimated, exact, min(k, len(common))),
        "vertices": float(len(common)),
    }
