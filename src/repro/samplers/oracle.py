"""Oracle samplers used by the test-suite and for variance studies.

Two "cheating" estimators that are not competitive but make very good
fixtures:

* :class:`ExhaustiveSourceEstimator` enumerates every source vertex exactly
  once, so its output equals the exact betweenness — the natural sanity
  check that the dependency plumbing shared by all samplers is correct.
* :class:`OptimalSourceSampler` draws sources from the optimal distribution
  of Equation 5 (which requires knowing the answer) and therefore has zero
  variance; the paper's MCMC sampler targets exactly this distribution, so
  the tests compare the MH chain's empirical visit frequencies against it.
"""

from __future__ import annotations

from typing import Dict

from repro._rng import RandomState, ensure_rng
from repro.errors import ConfigurationError, SamplingError
from repro.graphs.core import Graph, Vertex
from repro.samplers.base import SingleEstimate, SingleVertexEstimator, timed
from repro.shortest_paths.dependencies import all_dependencies_on_target

__all__ = ["ExhaustiveSourceEstimator", "OptimalSourceSampler"]


class ExhaustiveSourceEstimator(SingleVertexEstimator):
    """Exact single-vertex betweenness phrased as a (deterministic) estimator."""

    name = "exhaustive"

    def estimate(
        self,
        graph: Graph,
        r: Vertex,
        num_samples: int = 0,
        *,
        seed: RandomState = None,
    ) -> SingleEstimate:
        """Return the exact ``BC(r)``; *num_samples* and *seed* are ignored."""
        graph.validate_vertex(r)
        n = graph.number_of_vertices()
        with timed() as clock:
            deltas = all_dependencies_on_target(graph, r)
            raw = sum(deltas.values())
        estimate = raw / (n * (n - 1)) if n > 1 else 0.0
        return SingleEstimate(
            vertex=r,
            estimate=estimate,
            samples=n,
            elapsed_seconds=clock.elapsed,
            method=self.name,
        )


class OptimalSourceSampler(SingleVertexEstimator):
    """Zero-variance sampler drawing sources from the optimal distribution (Eq. 5).

    Requires one exact pass to compute the distribution, so it is only useful
    as a reference point: it shows the best any source-sampling scheme could
    do, and it is the stationary distribution the Metropolis-Hastings chain
    approaches.
    """

    name = "optimal-source"

    def estimate(
        self,
        graph: Graph,
        r: Vertex,
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> SingleEstimate:
        """Return the (exact, zero-variance) importance-sampling estimate of ``BC(r)``."""
        graph.validate_vertex(r)
        if num_samples < 1:
            raise ConfigurationError("num_samples must be at least 1")
        rng = ensure_rng(seed)
        n = graph.number_of_vertices()
        with timed() as clock:
            deltas = all_dependencies_on_target(graph, r)
            total_mass = sum(deltas.values())
            if total_mass <= 0.0:
                raise SamplingError(
                    f"vertex {r!r} has betweenness 0; the optimal source distribution is degenerate"
                )
            vertices = [v for v, d in deltas.items() if d > 0.0]
            weights = [deltas[v] for v in vertices]
            total = 0.0
            for _ in range(num_samples):
                s = rng.choices(vertices, weights=weights, k=1)[0]
                # Importance weight delta / P[s] = total_mass for every draw:
                # this is what makes the estimator zero-variance.
                total += deltas[s] / (deltas[s] / total_mass)
        estimate = total / (num_samples * n * max(n - 1, 1))
        return SingleEstimate(
            vertex=r,
            estimate=estimate,
            samples=num_samples,
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics={"support_size": len(vertices)},
        )

    def distribution(self, graph: Graph, r: Vertex) -> Dict[Vertex, float]:
        """Return the normalised optimal source distribution ``P_r[v]`` of Equation 5."""
        deltas = all_dependencies_on_target(graph, r)
        total = sum(deltas.values())
        if total <= 0.0:
            raise SamplingError(f"vertex {r!r} has betweenness 0; Equation 5 is undefined")
        return {v: d / total for v, d in deltas.items()}
