"""Baseline approximate betweenness estimators the paper compares against."""

from repro.samplers.base import (
    AllVerticesEstimator,
    MapEstimate,
    SingleEstimate,
    SingleVertexEstimator,
    timed,
)
from repro.samplers.distance_based import DistanceBasedSampler, ImportanceSamplingEstimator
from repro.samplers.kadabra import KadabraSampler
from repro.samplers.oracle import ExhaustiveSourceEstimator, OptimalSourceSampler
from repro.samplers.riondato_kornaropoulos import (
    RK_CONSTANT,
    RiondatoKornaropoulosSampler,
    rk_sample_size,
    vertex_diameter_estimate,
)
from repro.samplers.uniform_source import UniformSourceSampler

__all__ = [
    "SingleEstimate",
    "MapEstimate",
    "SingleVertexEstimator",
    "AllVerticesEstimator",
    "timed",
    "UniformSourceSampler",
    "DistanceBasedSampler",
    "ImportanceSamplingEstimator",
    "RiondatoKornaropoulosSampler",
    "rk_sample_size",
    "vertex_diameter_estimate",
    "RK_CONSTANT",
    "KadabraSampler",
    "ExhaustiveSourceEstimator",
    "OptimalSourceSampler",
]
