"""Uniform source-vertex sampling (Bader et al. 2007; Brandes & Pich 2007).

The simplest approximate scheme discussed in Section 3.2 of the paper:
pick source vertices uniformly at random, compute their dependency scores on
every vertex with one Brandes pass each, and scale.  It estimates the
betweenness of *all* vertices simultaneously, and restricting the read-out to
a single vertex gives the baseline the MH sampler is compared against in
benchmark E1.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._rng import RandomState, ensure_rng
from repro.errors import ConfigurationError
from repro.execution import (
    interned_payload,
    merge_ordered,
    plan_snapshot,
    run_sharded,
    split_shards,
)
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import np, resolve_backend
from repro.samplers.base import (
    AllVerticesEstimator,
    ExecutionPlanMixin,
    MapEstimate,
    SingleEstimate,
    SingleVertexEstimator,
    timed,
    vertex_keyed,
)
from repro.shortest_paths.dependencies import (
    accumulate_dependencies,
    csr_source_dependencies,
    dependency_at_target_shard_csr,
    dependency_at_target_shard_dict,
    dependency_sum_shard_csr,
    dependency_sum_shard_dict,
    spd_builder,
)

__all__ = ["UniformSourceSampler"]


class UniformSourceSampler(ExecutionPlanMixin, SingleVertexEstimator, AllVerticesEstimator):
    """Estimate betweenness by averaging dependency scores of random sources.

    For each sampled source *s*, one Brandes pass yields
    :math:`\\delta_{s\\bullet}(v)` for every *v*; the unbiased estimator of
    the paper-normalised betweenness of *v* is the sample mean of
    :math:`\\delta_{s\\bullet}(v) / (|V| - 1)`.

    Parameters
    ----------
    with_replacement:
        When ``True`` (default) sources are drawn i.i.d. uniformly; when
        ``False`` they are drawn without replacement (the Brandes–Pich
        "random k sources" variant), which caps ``num_samples`` at ``|V|``.
    backend:
        ``"auto"`` / ``"dict"`` / ``"csr"``.  On the CSR backend every
        dependency pass is a vectorised kernel accumulated into one numpy
        buffer; sources are drawn through the same rng calls as the dict
        backend (positions in ``graph.vertices()``), so a fixed seed yields
        the same sample set, and results are converted back to vertex-keyed
        dicts only at the estimate boundary.
    batch_size, n_jobs:
        Execution-engine knobs (:mod:`repro.execution`).  Sources are drawn
        upfront from the caller's rng stream (the same draws the sequential
        path makes), so engaging the engine changes neither the sample set
        nor the estimate beyond float re-association — and a fixed seed
        gives bit-identical results for any ``n_jobs`` / ``batch_size``.
    """

    name = "uniform-source"

    def __init__(
        self,
        *,
        with_replacement: bool = True,
        backend: str = "auto",
        batch_size: Optional[int] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        self.with_replacement = bool(with_replacement)
        self.backend = backend
        self.batch_size = batch_size
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------
    def _sample_sources(self, graph: Graph, num_samples: int, rng) -> list:
        vertices = graph.vertices()
        if self.with_replacement:
            return [vertices[rng.randrange(len(vertices))] for _ in range(num_samples)]
        if num_samples > len(vertices):
            raise ConfigurationError(
                f"cannot draw {num_samples} sources without replacement from "
                f"{len(vertices)} vertices"
            )
        return rng.sample(vertices, num_samples)

    # ------------------------------------------------------------------
    def estimate_all(
        self,
        graph: Graph,
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> MapEstimate:
        """Estimate the betweenness of every vertex from *num_samples* random sources."""
        if num_samples < 1:
            raise ConfigurationError("num_samples must be at least 1")
        rng = ensure_rng(seed)
        n = graph.number_of_vertices()
        scale = 1.0 / (num_samples * max(n - 1, 1))
        backend = resolve_backend(self.backend)
        plan = self._plan()
        if plan is not None:
            with timed() as clock:
                sources = self._sample_sources(graph, num_samples, rng)
                if backend == "csr":
                    csr = plan_snapshot(graph, plan)
                    buffer = merge_ordered(
                        run_sharded(
                            dependency_sum_shard_csr,
                            split_shards([csr.index_of(s) for s in sources]),
                            n_jobs=plan.n_jobs,
                            plan=plan,
                            shared=interned_payload(
                                plan,
                                (
                                    "dep-sum-csr",
                                    id(csr),
                                    plan.batch_size,
                                    plan.kernel,
                                    plan.kernel_threads,
                                ),
                                lambda: (
                                    csr,
                                    plan.batch_size,
                                    plan.kernel,
                                    plan.kernel_threads,
                                ),
                            ),
                        )
                    )
                    estimates = vertex_keyed(csr, buffer * scale)
                else:
                    totals = merge_ordered(
                        run_sharded(
                            dependency_sum_shard_dict,
                            split_shards(sources),
                            n_jobs=plan.n_jobs,
                            plan=plan,
                            shared=graph,
                        )
                    )
                    estimates = {v: totals.get(v, 0.0) * scale for v in graph.vertices()}
            return MapEstimate(
                estimates=estimates,
                samples=num_samples,
                elapsed_seconds=clock.elapsed,
                method=self.name,
                diagnostics={
                    "with_replacement": self.with_replacement,
                    "backend": backend,
                    "n_jobs": plan.n_jobs,
                    "batch_size": plan.batch_size,
                },
            )
        if backend == "csr":
            with timed() as clock:
                # Building (or fetching the cached) snapshot is part of the
                # backend's cost, so it is timed like the dict traversals.
                csr = graph.csr()
                buffer = np.zeros(csr.number_of_vertices())
                sources = self._sample_sources(graph, num_samples, rng)
                for s in sources:
                    # delta[s] == 0 by construction: array addition matches
                    # the dict loop's "skip v == s" rule.
                    buffer += csr_source_dependencies(
                        csr, csr.index_of(s), kernel=self.kernel
                    )
            estimates = vertex_keyed(csr, buffer * scale)
        else:
            build = spd_builder(graph)
            totals: Dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
            with timed() as clock:
                sources = self._sample_sources(graph, num_samples, rng)
                for s in sources:
                    spd = build(graph, s)
                    for v, delta in accumulate_dependencies(spd).items():
                        if v != s:
                            totals[v] += delta
            estimates = {v: total * scale for v, total in totals.items()}
        return MapEstimate(
            estimates=estimates,
            samples=num_samples,
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics={"with_replacement": self.with_replacement, "backend": backend},
        )

    # ------------------------------------------------------------------
    def estimate(
        self,
        graph: Graph,
        r: Vertex,
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> SingleEstimate:
        """Estimate ``BC(r)`` by reading a single entry of :meth:`estimate_all`.

        The work per sample is identical (one full Brandes pass); only the
        read-out is restricted, mirroring how this baseline is used when a
        caller cares about one vertex.
        """
        graph.validate_vertex(r)
        if num_samples < 1:
            raise ConfigurationError("num_samples must be at least 1")
        rng = ensure_rng(seed)
        n = graph.number_of_vertices()
        total = 0.0
        backend = resolve_backend(self.backend)
        plan = self._plan()
        if plan is not None:
            with timed() as clock:
                sources = self._sample_sources(graph, num_samples, rng)
                if backend == "csr":
                    csr = plan_snapshot(graph, plan)
                    values = merge_ordered(
                        run_sharded(
                            dependency_at_target_shard_csr,
                            split_shards([csr.index_of(s) for s in sources]),
                            n_jobs=plan.n_jobs,
                            plan=plan,
                            shared=interned_payload(
                                plan,
                                (
                                    "dep-at-target-csr",
                                    id(csr),
                                    plan.batch_size,
                                    csr.index_of(r),
                                    plan.kernel,
                                    plan.kernel_threads,
                                ),
                                lambda: (
                                    csr,
                                    plan.batch_size,
                                    csr.index_of(r),
                                    plan.kernel,
                                    plan.kernel_threads,
                                ),
                            ),
                        )
                    )
                else:
                    values = merge_ordered(
                        run_sharded(
                            dependency_at_target_shard_dict,
                            split_shards(sources),
                            n_jobs=plan.n_jobs,
                            plan=plan,
                            shared=interned_payload(
                                plan,
                                ("dep-at-target-dict", id(graph), graph.version, r),
                                lambda: (graph, r),
                            ),
                        )
                    )
                for value in values:
                    total += value
            return SingleEstimate(
                vertex=r,
                estimate=total / (num_samples * max(n - 1, 1)),
                samples=num_samples,
                elapsed_seconds=clock.elapsed,
                method=self.name,
                diagnostics={
                    "with_replacement": self.with_replacement,
                    "backend": backend,
                    "n_jobs": plan.n_jobs,
                    "batch_size": plan.batch_size,
                },
            )
        if backend == "csr":
            with timed() as clock:
                csr = graph.csr()
                r_index = csr.index_of(r)
                sources = self._sample_sources(graph, num_samples, rng)
                for s in sources:
                    if s == r:
                        continue
                    total += float(
                        csr_source_dependencies(csr, csr.index_of(s), kernel=self.kernel)[
                            r_index
                        ]
                    )
        else:
            build = spd_builder(graph)
            with timed() as clock:
                sources = self._sample_sources(graph, num_samples, rng)
                for s in sources:
                    if s == r:
                        continue
                    spd = build(graph, s)
                    deltas = accumulate_dependencies(spd)
                    total += deltas.get(r, 0.0)
        estimate = total / (num_samples * max(n - 1, 1))
        return SingleEstimate(
            vertex=r,
            estimate=estimate,
            samples=num_samples,
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics={"with_replacement": self.with_replacement, "backend": backend},
        )
