"""Distance-proportional source sampling (Chehreghani 2014).

Section 3.2 / 4.1 of the paper: Chehreghani's randomized framework estimates
the betweenness of a single vertex *r* by sampling source vertices from an
arbitrary probability mass function q and averaging the importance-weighted
dependency scores

.. math::

   \\widehat{BC}(r) = \\frac{1}{T\\,|V|\\,(|V|-1)}
       \\sum_{i=1}^{T} \\frac{\\delta_{s_i\\bullet}(r)}{q(s_i)} .

The *optimal* q (zero variance) is proportional to the dependency score
itself (Equation 5) but cannot be computed without knowing the answer; the
practical proposal of that paper is the distance-based mass function
``q(s) ∝ d(r, s)``.  This module implements the general framework plus the
distance-based and uniform mass functions, so benchmark E1 can compare the
MH sampler against its direct ancestor.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro._rng import RandomState, ensure_rng
from repro.errors import ConfigurationError, SamplingError
from repro.graphs.core import Graph, Vertex
from repro.samplers.base import SingleEstimate, SingleVertexEstimator, timed
from repro.shortest_paths.bfs import bfs_distances
from repro.shortest_paths.dependencies import dependency_on_target
from repro.shortest_paths.dijkstra import dijkstra_distances

__all__ = ["DistanceBasedSampler", "ImportanceSamplingEstimator"]


class ImportanceSamplingEstimator(SingleVertexEstimator):
    """Chehreghani's randomized framework with a pluggable source distribution.

    Parameters
    ----------
    mass_function:
        Callable ``(graph, r) -> {vertex: unnormalised probability mass}``.
        Vertices missing from the returned mapping (or with mass 0) are never
        sampled; the estimator remains unbiased as long as every vertex with
        a positive dependency score on *r* has positive mass.
    name:
        Identifier used in benchmark tables.
    """

    def __init__(
        self,
        mass_function: Callable[[Graph, Vertex], Dict[Vertex, float]],
        name: str = "importance-sampling",
    ) -> None:
        self._mass_function = mass_function
        self.name = name

    # ------------------------------------------------------------------
    def estimate(
        self,
        graph: Graph,
        r: Vertex,
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> SingleEstimate:
        """Return the importance-weighted estimate of ``BC(r)``."""
        graph.validate_vertex(r)
        if num_samples < 1:
            raise ConfigurationError("num_samples must be at least 1")
        rng = ensure_rng(seed)
        n = graph.number_of_vertices()
        with timed() as clock:
            masses = self._mass_function(graph, r)
            masses = {v: m for v, m in masses.items() if m > 0.0 and v != r}
            total_mass = sum(masses.values())
            if total_mass <= 0.0:
                raise SamplingError(
                    f"the source distribution for vertex {r!r} has zero total mass; "
                    "the vertex is isolated or the mass function is degenerate"
                )
            vertices = list(masses)
            weights = [masses[v] for v in vertices]
            probabilities = {v: w / total_mass for v, w in zip(vertices, weights)}
            total = 0.0
            for _ in range(num_samples):
                s = rng.choices(vertices, weights=weights, k=1)[0]
                delta = dependency_on_target(graph, s, r)
                total += delta / probabilities[s]
        estimate = total / (num_samples * n * max(n - 1, 1))
        return SingleEstimate(
            vertex=r,
            estimate=estimate,
            samples=num_samples,
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics={"support_size": len(vertices)},
        )


def _distance_mass(graph: Graph, r: Vertex) -> Dict[Vertex, float]:
    """Return the distance-proportional mass function ``q(s) ∝ d(r, s)``."""
    if graph.weighted:
        distances = dijkstra_distances(graph, r)
    else:
        distances = bfs_distances(graph, r)
    return {v: d for v, d in distances.items() if v != r and d != float("inf")}


def _uniform_mass(graph: Graph, r: Vertex) -> Dict[Vertex, float]:
    """Return the uniform mass function over ``V(G) \\ {r}``."""
    return {v: 1.0 for v in graph.vertices() if v != r}


class DistanceBasedSampler(ImportanceSamplingEstimator):
    """The distance-based source sampler of Chehreghani (2014).

    Source vertices are drawn with probability proportional to their distance
    from the target vertex *r* — an easily computable surrogate for the
    optimal (dependency-proportional) distribution of Equation 5.
    """

    def __init__(self, *, uniform: bool = False) -> None:
        if uniform:
            super().__init__(_uniform_mass, name="uniform-importance")
        else:
            super().__init__(_distance_mass, name="distance-based")
