"""Distance-proportional source sampling (Chehreghani 2014).

Section 3.2 / 4.1 of the paper: Chehreghani's randomized framework estimates
the betweenness of a single vertex *r* by sampling source vertices from an
arbitrary probability mass function q and averaging the importance-weighted
dependency scores

.. math::

   \\widehat{BC}(r) = \\frac{1}{T\\,|V|\\,(|V|-1)}
       \\sum_{i=1}^{T} \\frac{\\delta_{s_i\\bullet}(r)}{q(s_i)} .

The *optimal* q (zero variance) is proportional to the dependency score
itself (Equation 5) but cannot be computed without knowing the answer; the
practical proposal of that paper is the distance-based mass function
``q(s) ∝ d(r, s)``.  This module implements the general framework plus the
distance-based and uniform mass functions, so benchmark E1 can compare the
MH sampler against its direct ancestor.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro._rng import RandomState, ensure_rng
from repro.errors import ConfigurationError, SamplingError
from repro.execution import (
    interned_payload,
    merge_ordered,
    plan_snapshot,
    run_sharded,
    split_shards,
)
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import resolve_backend
from repro.samplers.base import ExecutionPlanMixin, SingleEstimate, SingleVertexEstimator, timed
from repro.shortest_paths.bfs import bfs_distances, bfs_distances_csr
from repro.shortest_paths.dependencies import (
    csr_dependency_on_target,
    dependency_at_target_shard_csr,
    dependency_at_target_shard_dict,
    dependency_on_target,
)
from repro.shortest_paths.dijkstra import dijkstra_distances, dijkstra_distances_csr

__all__ = ["DistanceBasedSampler", "ImportanceSamplingEstimator"]


class ImportanceSamplingEstimator(ExecutionPlanMixin, SingleVertexEstimator):
    """Chehreghani's randomized framework with a pluggable source distribution.

    Parameters
    ----------
    mass_function:
        Callable ``(graph, r) -> {vertex: unnormalised probability mass}``.
        Vertices missing from the returned mapping (or with mass 0) are never
        sampled; the estimator remains unbiased as long as every vertex with
        a positive dependency score on *r* has positive mass.
    name:
        Identifier used in benchmark tables.
    backend:
        ``"auto"`` / ``"dict"`` / ``"csr"``; selects the traversal kernels
        for the per-sample dependency evaluation.  The mass function itself
        decides its own backend (the built-in ones follow the sampler's).
    batch_size, n_jobs:
        Execution-engine knobs (:mod:`repro.execution`).  The source
        sequence is drawn upfront through exactly the rng calls the
        sequential loop makes (the dependency passes consume no randomness),
        then the passes run sharded and batched; for a fixed seed the
        estimate is bit-identical for any ``n_jobs`` / ``batch_size``.
    """

    def __init__(
        self,
        mass_function: Callable[[Graph, Vertex], Dict[Vertex, float]],
        name: str = "importance-sampling",
        *,
        backend: str = "auto",
        batch_size: Optional[int] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        self._mass_function = mass_function
        self.name = name
        self.backend = backend
        self.batch_size = batch_size
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------
    def estimate(
        self,
        graph: Graph,
        r: Vertex,
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> SingleEstimate:
        """Return the importance-weighted estimate of ``BC(r)``."""
        graph.validate_vertex(r)
        if num_samples < 1:
            raise ConfigurationError("num_samples must be at least 1")
        rng = ensure_rng(seed)
        n = graph.number_of_vertices()
        backend = resolve_backend(self.backend)
        plan = self._plan()
        with timed() as clock:
            # plan_snapshot returns the plain cached snapshot when no plan
            # is engaged, so the sequential path is untouched; with the
            # shared_graph knob on, the payload below ships as a handle.
            csr = plan_snapshot(graph, plan) if backend == "csr" else None
            masses = self._mass_function(graph, r)
            masses = {v: m for v, m in masses.items() if m > 0.0 and v != r}
            total_mass = sum(masses.values())
            if total_mass <= 0.0:
                raise SamplingError(
                    f"the source distribution for vertex {r!r} has zero total mass; "
                    "the vertex is isolated or the mass function is degenerate"
                )
            vertices = list(masses)
            weights = [masses[v] for v in vertices]
            probabilities = {v: w / total_mass for v, w in zip(vertices, weights)}
            r_index = csr.index_of(r) if csr is not None else None
            total = 0.0
            if plan is not None:
                # Draw the whole source sequence upfront — the exact rng
                # calls the sequential loop makes — then run the passes
                # sharded; per-sample weighting happens at the fold below.
                sources = [
                    rng.choices(vertices, weights=weights, k=1)[0]
                    for _ in range(num_samples)
                ]
                if csr is not None:
                    values = merge_ordered(
                        run_sharded(
                            dependency_at_target_shard_csr,
                            split_shards([csr.index_of(s) for s in sources]),
                            n_jobs=plan.n_jobs,
                            plan=plan,
                            shared=interned_payload(
                                plan,
                                (
                                    "dep-at-target-csr",
                                    id(csr),
                                    plan.batch_size,
                                    r_index,
                                    plan.kernel,
                                    plan.kernel_threads,
                                ),
                                lambda: (
                                    csr,
                                    plan.batch_size,
                                    r_index,
                                    plan.kernel,
                                    plan.kernel_threads,
                                ),
                            ),
                        )
                    )
                else:
                    values = merge_ordered(
                        run_sharded(
                            dependency_at_target_shard_dict,
                            split_shards(sources),
                            n_jobs=plan.n_jobs,
                            plan=plan,
                            shared=interned_payload(
                                plan,
                                ("dep-at-target-dict", id(graph), graph.version, r),
                                lambda: (graph, r),
                            ),
                        )
                    )
                for s, delta in zip(sources, values):
                    total += delta / probabilities[s]
            else:
                for _ in range(num_samples):
                    s = rng.choices(vertices, weights=weights, k=1)[0]
                    if csr is not None:
                        delta = csr_dependency_on_target(csr, csr.index_of(s), r_index)
                    else:
                        delta = dependency_on_target(graph, s, r)
                    total += delta / probabilities[s]
        estimate = total / (num_samples * n * max(n - 1, 1))
        diagnostics: Dict[str, object] = {"support_size": len(vertices), "backend": backend}
        if plan is not None:
            diagnostics.update(n_jobs=plan.n_jobs, batch_size=plan.batch_size)
        return SingleEstimate(
            vertex=r,
            estimate=estimate,
            samples=num_samples,
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics=diagnostics,
        )


def _distance_mass(graph: Graph, r: Vertex, *, backend: str = "auto") -> Dict[Vertex, float]:
    """Return the distance-proportional mass function ``q(s) ∝ d(r, s)``.

    Both backends yield the dict in traversal discovery order — BFS level
    order when unweighted, Dijkstra settle order when weighted (the dict
    route's distance map is filled as vertices settle, and the CSR route
    rebuilds from the settle-order array) — so ``rng.choices`` consumes
    the same candidate ordering either way, keeping fixed-seed estimates
    identical across backends.
    """
    if graph.weighted:
        if resolve_backend(backend) == "csr":
            csr = graph.csr()
            r_index = csr.index_of(r)
            dist, order = dijkstra_distances_csr(csr, r_index)
            vertex_at = csr.vertex_at
            return {
                vertex_at(i): float(dist[i]) for i in order.tolist() if i != r_index
            }
        distances = dijkstra_distances(graph, r)
        return {v: d for v, d in distances.items() if v != r and d != float("inf")}
    if resolve_backend(backend) == "csr":
        csr = graph.csr()
        r_index = csr.index_of(r)
        dist, order = bfs_distances_csr(csr, r_index)
        vertex_at = csr.vertex_at
        return {
            vertex_at(i): float(dist[i]) for i in order.tolist() if i != r_index
        }
    distances = bfs_distances(graph, r)
    return {v: d for v, d in distances.items() if v != r and d != float("inf")}


def _uniform_mass(graph: Graph, r: Vertex) -> Dict[Vertex, float]:
    """Return the uniform mass function over ``V(G) \\ {r}``."""
    return {v: 1.0 for v in graph.vertices() if v != r}


class DistanceBasedSampler(ImportanceSamplingEstimator):
    """The distance-based source sampler of Chehreghani (2014).

    Source vertices are drawn with probability proportional to their distance
    from the target vertex *r* — an easily computable surrogate for the
    optimal (dependency-proportional) distribution of Equation 5.
    """

    def __init__(
        self,
        *,
        uniform: bool = False,
        backend: str = "auto",
        batch_size: Optional[int] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        if uniform:
            super().__init__(
                _uniform_mass,
                name="uniform-importance",
                backend=backend,
                batch_size=batch_size,
                n_jobs=n_jobs,
            )
        else:
            super().__init__(
                lambda graph, r: _distance_mass(graph, r, backend=self.backend),
                name="distance-based",
                backend=backend,
                batch_size=batch_size,
                n_jobs=n_jobs,
            )
