"""Shortest-path sampling of Riondato & Kornaropoulos (2016).

The strongest sampling baseline surveyed in Section 3.2 of the paper: draw a
pair of distinct vertices uniformly at random, sample one of the shortest
paths between them uniformly, and credit every *internal* vertex of the
sampled path.  The expectation of the per-vertex indicator is exactly the
paper-normalised betweenness, and the number of samples needed for a uniform
(ε, δ)-guarantee over all vertices follows from the VC-dimension bound

.. math::

   T \\ge \\frac{c}{\\epsilon^2}\\Bigl(\\lfloor \\log_2 (VD(G) - 2) \\rfloor
            + 1 + \\ln\\frac{1}{\\delta}\\Bigr),

where ``VD(G)`` is the vertex diameter (number of vertices on the longest
shortest path) and ``c ≈ 0.5`` is the universal constant.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro._rng import RandomState, ensure_rng
from repro.errors import ConfigurationError
from repro.execution import (
    interned_payload,
    merge_ordered,
    plan_snapshot,
    run_sharded,
    sample_shards,
)
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import np, resolve_backend
from repro.samplers.base import (
    AllVerticesEstimator,
    ExecutionPlanMixin,
    MapEstimate,
    SingleEstimate,
    SingleVertexEstimator,
    timed,
    vertex_keyed,
)
from repro.shortest_paths.bfs import bfs_distances, bfs_spd
from repro.shortest_paths.bidirectional import sample_path_interior_csr
from repro.shortest_paths.dependencies import csr_spd_builder
from repro.shortest_paths.dijkstra import dijkstra_spd

__all__ = ["RiondatoKornaropoulosSampler", "vertex_diameter_estimate", "rk_sample_size"]

#: Universal constant of the VC sample-size bound (Riondato & Kornaropoulos
#: use c = 0.5 following Löffler & Phillips).
RK_CONSTANT = 0.5


def vertex_diameter_estimate(graph: Graph, seed: RandomState = None) -> int:
    """Return an upper estimate of the vertex diameter ``VD(G)``.

    For unweighted graphs the classic 2-approximation is used: run a BFS from
    an arbitrary vertex and return ``2 * ecc + 1`` vertices in the worst
    case.  This over-estimates (never under-estimates) the diameter, which
    keeps the (ε, δ) guarantee valid at the price of a few extra samples.
    """
    if graph.number_of_vertices() < 2:
        return max(graph.number_of_vertices(), 1)
    rng = ensure_rng(seed)
    vertices = graph.vertices()
    start = vertices[rng.randrange(len(vertices))]
    distances = bfs_distances(graph, start)
    eccentricity = max(distances.values())
    return int(2 * eccentricity + 1)


def rk_sample_size(
    vertex_diameter: int, epsilon: float, delta: float, constant: float = RK_CONSTANT
) -> int:
    """Return the VC-dimension sample size for the requested accuracy.

    Parameters mirror the formula in the module docstring; ``vertex_diameter``
    below 3 degenerates to the additive Hoeffding term only.
    """
    if epsilon <= 0.0:
        raise ConfigurationError("epsilon must be positive")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError("delta must be in (0, 1)")
    vc_term = math.floor(math.log2(vertex_diameter - 2)) + 1 if vertex_diameter > 3 else 1
    return int(math.ceil(constant / (epsilon * epsilon) * (vc_term + math.log(1.0 / delta))))


class RiondatoKornaropoulosSampler(ExecutionPlanMixin, SingleVertexEstimator, AllVerticesEstimator):
    """Uniform shortest-path sampling estimator for all vertices (or one).

    With ``backend="csr"`` (the ``"auto"`` default when numpy is available)
    pairs are drawn by dense index, the SPD is built by the vectorised CSR
    kernels and hits are accumulated into a numpy buffer; the rng stream is
    identical to the dict backend, so a fixed seed samples the same paths.
    """

    name = "riondato-kornaropoulos"

    def __init__(
        self,
        *,
        backend: str = "auto",
        batch_size: Optional[int] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        self.backend = backend
        #: Execution-engine knobs.  ``n_jobs`` spreads the sample loop over
        #: worker processes: samples are cut into fixed shards, each shard
        #: drawing from its own child rng stream
        #: (:func:`repro.execution.shard_rngs`), so the estimate is
        #: identical for any ``n_jobs`` — but, unlike the dependency-pass
        #: samplers, engaging the engine changes which paths a given seed
        #: samples (the sequential path consumes one global stream).
        #: ``batch_size`` is accepted for interface uniformity and has no
        #: effect: path sampling interleaves rng draws with each traversal,
        #: so batching SPD builds would change the sample stream.
        self.batch_size = batch_size
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------
    def _sample_internal_vertices(self, graph: Graph, rng) -> list:
        """Sample one shortest path between a uniform pair and return its interior."""
        vertices = graph.vertices()
        n = len(vertices)
        s = vertices[rng.randrange(n)]
        t = vertices[rng.randrange(n)]
        while t == s:
            t = vertices[rng.randrange(n)]
        spd = dijkstra_spd(graph, s) if graph.weighted else bfs_spd(graph, s)
        if not spd.is_reachable(t):
            return []
        # Backtrack from t choosing predecessors proportionally to sigma,
        # which makes every shortest s-t path equally likely.
        interior = []
        current = t
        while True:
            parents = spd.parents(current)
            if not parents:
                break
            weights = [spd.sigma[p] for p in parents]
            total = sum(weights)
            pick = rng.random() * total
            cumulative = 0.0
            chosen = parents[-1]
            for parent, weight in zip(parents, weights):
                cumulative += weight
                if pick <= cumulative:
                    chosen = parent
                    break
            if chosen == s:
                break
            interior.append(chosen)
            current = chosen
        return interior

    @staticmethod
    def _sample_internal_indices(csr, rng) -> list:
        """Index-space twin of :meth:`_sample_internal_vertices`."""
        n = csr.number_of_vertices()
        s = rng.randrange(n)
        t = rng.randrange(n)
        while t == s:
            t = rng.randrange(n)
        spd = csr_spd_builder(csr)(csr, s)
        if not np.isfinite(spd.dist[t]):
            return []
        return sample_path_interior_csr(spd, s, t, rng)

    # ------------------------------------------------------------------
    def estimate_all(
        self,
        graph: Graph,
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> MapEstimate:
        """Estimate the betweenness of every vertex from *num_samples* sampled paths."""
        if num_samples < 1:
            raise ConfigurationError("num_samples must be at least 1")
        if graph.number_of_vertices() < 2:
            raise ConfigurationError("the graph must have at least two vertices")
        rng = ensure_rng(seed)
        backend = resolve_backend(self.backend)
        plan = self._plan()
        diagnostics: Dict[str, object] = {"backend": backend}
        if plan is not None:
            with timed() as clock:
                shards = sample_shards(num_samples, rng)
                if backend == "csr":
                    csr = plan_snapshot(graph, plan)
                    buffer = merge_ordered(
                        run_sharded(
                            _rk_all_shard_csr, shards, n_jobs=plan.n_jobs, plan=plan, shared=csr
                        )
                    )
                    estimates = vertex_keyed(csr, buffer / num_samples)
                else:
                    counts = merge_ordered(
                        run_sharded(
                            _rk_all_shard_dict,
                            shards,
                            n_jobs=plan.n_jobs,
                            plan=plan,
                            shared=interned_payload(
                                plan,
                                ("rk-all-dict", id(self), id(graph), graph.version),
                                lambda: (self, graph),
                            ),
                        )
                    )
                    estimates = {v: counts.get(v, 0.0) / num_samples for v in graph.vertices()}
            diagnostics.update(n_jobs=plan.n_jobs, batch_size=plan.batch_size)
        elif backend == "csr":
            with timed() as clock:
                csr = graph.csr()
                buffer = np.zeros(csr.number_of_vertices())
                for _ in range(num_samples):
                    for i in self._sample_internal_indices(csr, rng):
                        buffer[i] += 1.0
            estimates = vertex_keyed(csr, buffer / num_samples)
        else:
            counts: Dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
            with timed() as clock:
                for _ in range(num_samples):
                    for v in self._sample_internal_vertices(graph, rng):
                        counts[v] += 1.0
            estimates = {v: c / num_samples for v, c in counts.items()}
        return MapEstimate(
            estimates=estimates,
            samples=num_samples,
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    def estimate(
        self,
        graph: Graph,
        r: Vertex,
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> SingleEstimate:
        """Estimate ``BC(r)``: same sampling, read-out restricted to *r*."""
        graph.validate_vertex(r)
        if num_samples < 1:
            raise ConfigurationError("num_samples must be at least 1")
        rng = ensure_rng(seed)
        hits = 0.0
        backend = resolve_backend(self.backend)
        plan = self._plan()
        diagnostics: Dict[str, object] = {"backend": backend}
        if plan is not None:
            with timed() as clock:
                shards = sample_shards(num_samples, rng)
                if backend == "csr":
                    csr = plan_snapshot(graph, plan)
                    hits = merge_ordered(
                        run_sharded(
                            _rk_hits_shard_csr,
                            shards,
                            n_jobs=plan.n_jobs,
                            plan=plan,
                            shared=interned_payload(
                                plan,
                                ("rk-hits-csr", id(csr), csr.index_of(r)),
                                lambda: (csr, csr.index_of(r)),
                            ),
                        )
                    )
                else:
                    hits = merge_ordered(
                        run_sharded(
                            _rk_hits_shard_dict,
                            shards,
                            n_jobs=plan.n_jobs,
                            plan=plan,
                            shared=interned_payload(
                                plan,
                                ("rk-hits-dict", id(self), id(graph), graph.version, r),
                                lambda: (self, graph, r),
                            ),
                        )
                    )
            diagnostics.update(n_jobs=plan.n_jobs, batch_size=plan.batch_size)
        elif backend == "csr":
            with timed() as clock:
                csr = graph.csr()
                r_index = csr.index_of(r)
                for _ in range(num_samples):
                    if r_index in self._sample_internal_indices(csr, rng):
                        hits += 1.0
        else:
            with timed() as clock:
                for _ in range(num_samples):
                    if r in self._sample_internal_vertices(graph, rng):
                        hits += 1.0
        diagnostics["hits"] = hits
        return SingleEstimate(
            vertex=r,
            estimate=hits / num_samples,
            samples=num_samples,
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    def samples_for_accuracy(
        self, graph: Graph, epsilon: float, delta: float, *, seed: RandomState = None
    ) -> int:
        """Return the VC-bound sample size for an (ε, δ)-guarantee on *graph*."""
        return rk_sample_size(vertex_diameter_estimate(graph, seed), epsilon, delta)


# ----------------------------------------------------------------------
# Shard workers (module-level so the multiprocessing pool can pickle them).
# Each shard is a ``(sample_count, shard_rng)`` pair from
# ``repro.execution.sample_shards``.
# ----------------------------------------------------------------------
def _rk_all_shard_csr(shared, shard):
    csr = shared
    count, rng = shard
    buffer = np.zeros(csr.number_of_vertices())
    for _ in range(count):
        for i in RiondatoKornaropoulosSampler._sample_internal_indices(csr, rng):
            buffer[i] += 1.0
    return buffer


def _rk_all_shard_dict(shared, shard):
    sampler, graph = shared
    count, rng = shard
    counts: Dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
    for _ in range(count):
        for v in sampler._sample_internal_vertices(graph, rng):
            counts[v] += 1.0
    return counts


def _rk_hits_shard_csr(shared, shard) -> float:
    csr, r_index = shared
    count, rng = shard
    hits = 0.0
    for _ in range(count):
        if r_index in RiondatoKornaropoulosSampler._sample_internal_indices(csr, rng):
            hits += 1.0
    return hits


def _rk_hits_shard_dict(shared, shard) -> float:
    sampler, graph, r = shared
    count, rng = shard
    hits = 0.0
    for _ in range(count):
        if r in sampler._sample_internal_vertices(graph, rng):
            hits += 1.0
    return hits
