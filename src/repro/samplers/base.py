"""Common interfaces and result containers for approximate betweenness estimators.

Every estimator in the library — the baselines in this package and the
Metropolis-Hastings samplers in :mod:`repro.mcmc` — reports its output
through the same small dataclasses so the benchmark harness, the analysis
layer and the high-level API can treat them interchangeably.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro._rng import RandomState
from repro.execution import ExecutionPlan, resolve_plan
from repro.graphs.core import Graph, Vertex

__all__ = [
    "SingleEstimate",
    "MapEstimate",
    "SingleVertexEstimator",
    "AllVerticesEstimator",
    "ExecutionPlanMixin",
    "timed",
    "vertex_keyed",
]


class ExecutionPlanMixin:
    """Shared resolution of the execution-engine knobs.

    Estimators that accept the engine knobs store them as ``self.backend``
    / ``self.batch_size`` / ``self.n_jobs`` in their constructors (the
    per-class API surface) and call :meth:`_plan` once per estimate; a
    ``None`` plan means "no knob set" and the estimator must take its
    original sequential path.  Centralised here so a change to plan
    resolution (a new env knob, say) lands in every sampler at once.

    ``mp_context``, ``runtime``, ``shared_graph``, ``kernel`` and
    ``kernel_threads`` are class-level defaults rather than constructor
    parameters: they configure *how* pools run (start method; per-call
    ephemeral vs a session's persistent
    :class:`~repro.execution.runtime.ExecutionContext`; whether the CSR
    snapshot ships as a shared-memory handle; which bit-identical CSR
    kernel rung runs each pass, on how many threads), never what is
    computed, so the session layer attaches them to an existing sampler
    (``sampler.runtime = ctx``, ``sampler.kernel = "compiled"``) instead
    of every constructor growing pass-through arguments.  Samplers that
    ship themselves inside worker payloads stay safe: a runtime context
    pickles to ``None``.
    """

    backend: str = "auto"
    batch_size: Optional[int] = None
    n_jobs: Optional[int] = None
    mp_context: Optional[str] = None
    runtime: Optional[object] = None
    shared_graph: Optional[bool] = None
    kernel: str = "auto"
    kernel_threads: Optional[int] = None

    def _plan(self) -> Optional[ExecutionPlan]:
        return resolve_plan(
            None,
            backend=self.backend,
            batch_size=self.batch_size,
            n_jobs=self.n_jobs,
            mp_context=self.mp_context,
            runtime=self.runtime,
            shared_graph=self.shared_graph,
            kernel=self.kernel,
            kernel_threads=self.kernel_threads,
        )


def vertex_keyed(csr, values) -> Dict[Vertex, float]:
    """Convert a per-index accumulation buffer into a ``{vertex: value}`` dict.

    The result boundary of the samplers in *this package*: estimators
    accumulate into numpy buffers over a
    :class:`~repro.graphs.csr.CSRGraph` and cross back to vertex labels
    once, here, when filling the result containers below.  (Other layers —
    exact, mcmc — convert at their own API boundaries via
    ``CSRGraph.array_to_vertex_map``, which this delegates to.)
    """
    return csr.array_to_vertex_map(values)


@dataclass
class SingleEstimate:
    """Approximation of the betweenness score of one vertex.

    Attributes
    ----------
    vertex:
        The target vertex *r*.
    estimate:
        The estimated betweenness score (in the "paper" normalisation unless
        the producing estimator documents otherwise).
    samples:
        Number of samples drawn (chain length T for MCMC estimators).
    elapsed_seconds:
        Wall-clock time spent producing the estimate.
    method:
        Short name of the estimator that produced the value.
    diagnostics:
        Estimator-specific extras (acceptance rate, effective sample size,
        per-sample traces, theoretical bounds, ...).
    """

    vertex: Vertex
    estimate: float
    samples: int
    elapsed_seconds: float = 0.0
    method: str = ""
    diagnostics: Dict[str, object] = field(default_factory=dict)

    def __float__(self) -> float:
        return float(self.estimate)


@dataclass
class MapEstimate:
    """Approximation of the betweenness scores of many vertices at once."""

    estimates: Dict[Vertex, float]
    samples: int
    elapsed_seconds: float = 0.0
    method: str = ""
    diagnostics: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, vertex: Vertex) -> float:
        return self.estimates[vertex]

    def restricted_to(self, vertices) -> Dict[Vertex, float]:
        """Return the estimates of the requested *vertices* only."""
        return {v: self.estimates[v] for v in vertices}


class SingleVertexEstimator(abc.ABC):
    """Interface of estimators that approximate the betweenness of one vertex."""

    #: Short identifier used in benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def estimate(
        self,
        graph: Graph,
        r: Vertex,
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> SingleEstimate:
        """Return an approximation of ``BC(r)`` using *num_samples* samples."""


class AllVerticesEstimator(abc.ABC):
    """Interface of estimators that approximate the betweenness of every vertex."""

    name: str = "abstract"

    @abc.abstractmethod
    def estimate_all(
        self,
        graph: Graph,
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> MapEstimate:
        """Return approximations of ``BC(v)`` for every vertex using *num_samples* samples."""


class timed:
    """Tiny context manager measuring wall-clock time.

    Example
    -------
    >>> with timed() as clock:
    ...     _ = sum(range(10))
    >>> clock.elapsed >= 0.0
    True
    """

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
