"""Simplified KADABRA-style path sampler (Borassi & Natale 2016).

KADABRA improves on uniform shortest-path sampling in two ways: it samples
the path with a *balanced bidirectional* BFS (touching far fewer edges per
sample on small-diameter graphs), and it decides the number of samples
*adaptively* from empirical Bernstein bounds.  The reproduction implements
the first ingredient faithfully on top of
:mod:`repro.shortest_paths.bidirectional`, and a simplified, optional
adaptive stopping rule based on the empirical Bernstein inequality — enough
to place the baseline correctly in the E1/E2 comparisons without porting the
full engineering of the original C++ code.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro._rng import RandomState, ensure_rng
from repro.errors import ConfigurationError
from repro.execution import interned_payload, plan_snapshot, run_sharded, sample_shards
from repro.graphs.core import Graph, Vertex
from repro.graphs.csr import np, resolve_backend
from repro.samplers.base import (
    AllVerticesEstimator,
    ExecutionPlanMixin,
    MapEstimate,
    SingleEstimate,
    SingleVertexEstimator,
    timed,
    vertex_keyed,
)
from repro.shortest_paths.bfs import _gather_neighbors, bfs_spd
from repro.shortest_paths.bidirectional import sample_path_interior_csr
from repro.shortest_paths.dependencies import csr_spd_builder
from repro.shortest_paths.dijkstra import dijkstra_spd

__all__ = ["KadabraSampler"]


class KadabraSampler(ExecutionPlanMixin, SingleVertexEstimator, AllVerticesEstimator):
    """Bidirectional-BFS shortest-path sampler with optional adaptive stopping.

    Parameters
    ----------
    adaptive:
        When ``True``, :meth:`estimate` keeps sampling until the empirical
        Bernstein radius drops below ``epsilon`` (or ``num_samples`` is
        reached, whichever comes first).  When ``False`` exactly
        ``num_samples`` samples are drawn.
    epsilon, delta:
        Accuracy / confidence targets for the adaptive stopping rule.
    backend:
        ``"auto"`` / ``"dict"`` / ``"csr"``.  The CSR backend runs the
        balanced bidirectional growth and the path SPD on the vectorised
        kernels, drawing pairs by dense index with the same rng stream as
        the dict backend (identical samples for a fixed seed).
    """

    name = "kadabra"

    def __init__(
        self,
        *,
        adaptive: bool = False,
        epsilon: float = 0.01,
        delta: float = 0.1,
        backend: str = "auto",
        batch_size: Optional[int] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        if epsilon <= 0.0:
            raise ConfigurationError("epsilon must be positive")
        if not 0.0 < delta < 1.0:
            raise ConfigurationError("delta must be in (0, 1)")
        self.adaptive = bool(adaptive)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.backend = backend
        #: Execution-engine knobs, with the same semantics as the RK
        #: sampler: ``n_jobs`` shards the sample loop with per-shard child
        #: rng streams (results identical for any ``n_jobs``, but a
        #: different stream than the sequential path); ``batch_size`` is
        #: accepted for uniformity and unused (per-sample rng interleaving).
        #: The adaptive stopping rule is a sequential decision over the
        #: global sample stream, so :meth:`estimate` ignores the engine when
        #: ``adaptive=True``.
        self.batch_size = batch_size
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------
    def _sample_path_interior(self, graph: Graph, rng) -> Tuple[List[Vertex], int]:
        """Sample the interior of one uniform shortest path between a random pair.

        Returns ``(interior_vertices, touched_edges)``; the edge count is the
        work metric reported by benchmark E2 (KADABRA's selling point is a
        smaller value here, not a different estimator).
        """
        vertices = graph.vertices()
        n = len(vertices)
        s = vertices[rng.randrange(n)]
        t = vertices[rng.randrange(n)]
        while t == s:
            t = vertices[rng.randrange(n)]

        # Balanced bidirectional growth to find the meeting level, counting
        # touched edges as the work measure.
        dist_s: Dict[Vertex, float] = {s: 0.0}
        dist_t: Dict[Vertex, float] = {t: 0.0}
        frontier_s, frontier_t = [s], [t]
        touched = 0
        met = False
        while frontier_s and frontier_t and not met:
            work_s = sum(graph.degree(v) for v in frontier_s)
            work_t = sum(graph.degree(v) for v in frontier_t)
            if work_s <= work_t:
                frontier_s, hit = self._expand(graph, frontier_s, dist_s, dist_t)
                touched += work_s
            else:
                frontier_t, hit = self._expand(graph, frontier_t, dist_t, dist_s)
                touched += work_t
            met = hit
        if not met:
            return [], touched

        # For the path itself fall back to the SPD rooted at s: the sampled
        # path must be uniform among all shortest s-t paths, and the SPD
        # gives the sigma values needed for that guarantee.  (The full
        # KADABRA reconstruction stitches the two half-searches; the
        # simplification here changes constants, not the estimator.)
        spd = dijkstra_spd(graph, s) if graph.weighted else bfs_spd(graph, s)
        if not spd.is_reachable(t):
            return [], touched
        interior: List[Vertex] = []
        current = t
        while True:
            parents = spd.parents(current)
            if not parents:
                break
            weights = [spd.sigma[p] for p in parents]
            total = sum(weights)
            pick = rng.random() * total
            cumulative = 0.0
            chosen = parents[-1]
            for parent, weight in zip(parents, weights):
                cumulative += weight
                if pick <= cumulative:
                    chosen = parent
                    break
            if chosen == s:
                break
            interior.append(chosen)
            current = chosen
        return interior, touched

    @staticmethod
    def _expand(graph, frontier, dist, other_dist):
        next_frontier = []
        met = False
        level = dist[frontier[0]]
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = level + 1.0
                    next_frontier.append(v)
                if v in other_dist:
                    met = True
        return next_frontier, met

    # ------------------------------------------------------------------
    def _sample_path_interior_csr(self, csr, rng) -> Tuple[List[int], int]:
        """Index-space twin of :meth:`_sample_path_interior` on a CSR snapshot."""
        n = csr.number_of_vertices()
        s = rng.randrange(n)
        t = rng.randrange(n)
        while t == s:
            t = rng.randrange(n)

        degrees = csr.degrees()
        dist_s = np.full(n, np.inf)
        dist_t = np.full(n, np.inf)
        dist_s[s] = 0.0
        dist_t[t] = 0.0
        frontier_s = np.array([s], dtype=np.int64)
        frontier_t = np.array([t], dtype=np.int64)
        touched = 0
        met = False
        while frontier_s.size and frontier_t.size and not met:
            work_s = int(degrees[frontier_s].sum())
            work_t = int(degrees[frontier_t].sum())
            if work_s <= work_t:
                frontier_s, met = self._expand_csr(csr, frontier_s, dist_s, dist_t)
                touched += work_s
            else:
                frontier_t, met = self._expand_csr(csr, frontier_t, dist_t, dist_s)
                touched += work_t
        if not met:
            return [], touched

        spd = csr_spd_builder(csr)(csr, s)
        if not np.isfinite(spd.dist[t]):
            return [], touched
        return sample_path_interior_csr(spd, s, t, rng), touched

    @staticmethod
    def _expand_csr(csr, frontier, dist, other_dist):
        """Vectorised one-level growth; mirrors :meth:`_expand` (every touched
        neighbour — not just newly discovered ones — can signal a meeting)."""
        level = float(dist[frontier[0]])
        _, nbrs = _gather_neighbors(csr, frontier)
        if nbrs.size == 0:
            return np.empty(0, dtype=np.int64), False
        fresh = nbrs[np.isinf(dist[nbrs])]
        if fresh.size:
            _, first_pos = np.unique(fresh, return_index=True)
            next_frontier = fresh[np.sort(first_pos)]
            dist[next_frontier] = level + 1.0
        else:
            next_frontier = np.empty(0, dtype=np.int64)
        met = bool(np.isfinite(other_dist[nbrs]).any())
        return next_frontier, met

    # ------------------------------------------------------------------
    def estimate_all(
        self,
        graph: Graph,
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> MapEstimate:
        """Estimate the betweenness of all vertices from *num_samples* bb-BFS path samples."""
        if num_samples < 1:
            raise ConfigurationError("num_samples must be at least 1")
        if graph.number_of_vertices() < 2:
            raise ConfigurationError("the graph must have at least two vertices")
        rng = ensure_rng(seed)
        touched_total = 0
        backend = resolve_backend(self.backend)
        plan = self._plan()
        diagnostics: Dict[str, object] = {"backend": backend}
        if plan is not None:
            with timed() as clock:
                shards = sample_shards(num_samples, rng)
                if backend == "csr":
                    csr = plan_snapshot(graph, plan)
                    results = run_sharded(
                        _kadabra_all_shard_csr,
                        shards,
                        n_jobs=plan.n_jobs,
                        plan=plan,
                        shared=interned_payload(
                            plan,
                            ("kadabra-all-csr", id(self), id(csr)),
                            lambda: (self, csr),
                        ),
                    )
                    buffer = np.zeros(csr.number_of_vertices())
                    for shard_buffer, shard_touched in results:
                        buffer += shard_buffer
                        touched_total += shard_touched
                    estimates = vertex_keyed(csr, buffer / num_samples)
                else:
                    results = run_sharded(
                        _kadabra_all_shard_dict,
                        shards,
                        n_jobs=plan.n_jobs,
                        plan=plan,
                        shared=interned_payload(
                            plan,
                            ("kadabra-all-dict", id(self), id(graph), graph.version),
                            lambda: (self, graph),
                        ),
                    )
                    counts = {v: 0.0 for v in graph.vertices()}
                    for shard_counts, shard_touched in results:
                        touched_total += shard_touched
                        for v, c in shard_counts.items():
                            counts[v] += c
                    estimates = {v: c / num_samples for v, c in counts.items()}
            diagnostics.update(n_jobs=plan.n_jobs, batch_size=plan.batch_size)
        elif backend == "csr":
            with timed() as clock:
                csr = graph.csr()
                buffer = np.zeros(csr.number_of_vertices())
                for _ in range(num_samples):
                    interior, touched = self._sample_path_interior_csr(csr, rng)
                    touched_total += touched
                    for i in interior:
                        buffer[i] += 1.0
            estimates = vertex_keyed(csr, buffer / num_samples)
        else:
            counts: Dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
            with timed() as clock:
                for _ in range(num_samples):
                    interior, touched = self._sample_path_interior(graph, rng)
                    touched_total += touched
                    for v in interior:
                        counts[v] += 1.0
            estimates = {v: c / num_samples for v, c in counts.items()}
        diagnostics["touched_edges"] = touched_total
        return MapEstimate(
            estimates=estimates,
            samples=num_samples,
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    def estimate(
        self,
        graph: Graph,
        r: Vertex,
        num_samples: int,
        *,
        seed: RandomState = None,
    ) -> SingleEstimate:
        """Estimate ``BC(r)``; with ``adaptive=True`` sampling may stop early."""
        graph.validate_vertex(r)
        if num_samples < 1:
            raise ConfigurationError("num_samples must be at least 1")
        rng = ensure_rng(seed)
        hits = 0.0
        drawn = 0
        touched_total = 0
        backend = resolve_backend(self.backend)
        plan = self._plan()
        if plan is not None and not self.adaptive:
            with timed() as clock:
                shards = sample_shards(num_samples, rng)
                if backend == "csr":
                    csr = plan_snapshot(graph, plan)
                    results = run_sharded(
                        _kadabra_hits_shard_csr,
                        shards,
                        n_jobs=plan.n_jobs,
                        plan=plan,
                        shared=interned_payload(
                            plan,
                            ("kadabra-hits-csr", id(self), id(csr), csr.index_of(r)),
                            lambda: (self, csr, csr.index_of(r)),
                        ),
                    )
                else:
                    results = run_sharded(
                        _kadabra_hits_shard_dict,
                        shards,
                        n_jobs=plan.n_jobs,
                        plan=plan,
                        shared=interned_payload(
                            plan,
                            ("kadabra-hits-dict", id(self), id(graph), graph.version, r),
                            lambda: (self, graph, r),
                        ),
                    )
                for shard_hits, shard_touched in results:
                    hits += shard_hits
                    touched_total += shard_touched
                drawn = num_samples
            return SingleEstimate(
                vertex=r,
                estimate=hits / drawn,
                samples=drawn,
                elapsed_seconds=clock.elapsed,
                method=self.name,
                diagnostics={
                    "hits": hits,
                    "touched_edges": touched_total,
                    "adaptive": self.adaptive,
                    "backend": backend,
                    "n_jobs": plan.n_jobs,
                    "batch_size": plan.batch_size,
                },
            )
        with timed() as clock:
            csr = graph.csr() if backend == "csr" else None
            r_index = csr.index_of(r) if csr is not None else None
            for i in range(1, num_samples + 1):
                if csr is not None:
                    interior, touched = self._sample_path_interior_csr(csr, rng)
                    hit = r_index in interior
                else:
                    interior, touched = self._sample_path_interior(graph, rng)
                    hit = r in interior
                touched_total += touched
                if hit:
                    hits += 1.0
                drawn = i
                if self.adaptive and i >= 30 and self._bernstein_radius(hits, i) <= self.epsilon:
                    break
        return SingleEstimate(
            vertex=r,
            estimate=hits / drawn,
            samples=drawn,
            elapsed_seconds=clock.elapsed,
            method=self.name,
            diagnostics={
                "hits": hits,
                "touched_edges": touched_total,
                "adaptive": self.adaptive,
                "backend": backend,
            },
        )

    # ------------------------------------------------------------------
    def _bernstein_radius(self, hits: float, n: int) -> float:
        """Empirical Bernstein confidence radius for a Bernoulli mean after *n* samples."""
        mean = hits / n
        variance = mean * (1.0 - mean)
        log_term = math.log(3.0 / self.delta)
        return math.sqrt(2.0 * variance * log_term / n) + 3.0 * log_term / n


# ----------------------------------------------------------------------
# Shard workers (module-level so the multiprocessing pool can pickle them).
# Each shard is a ``(sample_count, shard_rng)`` pair; every worker returns
# ``(accumulator, touched_edges)``.
# ----------------------------------------------------------------------
def _kadabra_all_shard_csr(shared, shard):
    sampler, csr = shared
    count, rng = shard
    buffer = np.zeros(csr.number_of_vertices())
    touched_total = 0
    for _ in range(count):
        interior, touched = sampler._sample_path_interior_csr(csr, rng)
        touched_total += touched
        for i in interior:
            buffer[i] += 1.0
    return buffer, touched_total


def _kadabra_all_shard_dict(shared, shard):
    sampler, graph = shared
    count, rng = shard
    counts: Dict[Vertex, float] = {v: 0.0 for v in graph.vertices()}
    touched_total = 0
    for _ in range(count):
        interior, touched = sampler._sample_path_interior(graph, rng)
        touched_total += touched
        for v in interior:
            counts[v] += 1.0
    return counts, touched_total


def _kadabra_hits_shard_csr(shared, shard):
    sampler, csr, r_index = shared
    count, rng = shard
    hits = 0.0
    touched_total = 0
    for _ in range(count):
        interior, touched = sampler._sample_path_interior_csr(csr, rng)
        touched_total += touched
        if r_index in interior:
            hits += 1.0
    return hits, touched_total


def _kadabra_hits_shard_dict(shared, shard):
    sampler, graph, r = shared
    count, rng = shard
    hits = 0.0
    touched_total = 0
    for _ in range(count):
        interior, touched = sampler._sample_path_interior(graph, rng)
        touched_total += touched
        if r in interior:
            hits += 1.0
    return hits, touched_total
