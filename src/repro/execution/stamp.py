"""The one execution stamp every result surface shares.

Three surfaces attach "what actually ran" provenance to their output: the
CLI's JSON payloads (``repro-bc estimate`` / ``relative`` / ``batch``), the
HTTP daemon's per-response receipts (``repro-bc serve``,
:mod:`repro.serving`), and the benchmark harness's table headers
(``benchmarks/harness.py``).  They used to each assemble their own copy of
the key list, which is exactly how provenance drifts: a knob added to one
surface but not the others silently disappears from the receipts readers
compare.  This module is the single assembly point — the key set, the
diagnostics-to-stamp mapping and the quiet kernel resolution live here and
nowhere else (``tests/test_serving.py`` pins the three surfaces against
each other).
"""

from __future__ import annotations

from typing import Mapping, Optional

__all__ = [
    "EXECUTION_STAMP_KEYS",
    "execution_stamp",
    "format_stamp_lines",
    "resolve_kernel_quiet",
]

#: The keys of every execution stamp, in emission order.  Null values are
#: meaningful — ``jobs`` / ``batch_size`` null means the execution engine
#: was not engaged, ``chains`` / ``rhat`` / ``ess`` null means the
#: multi-chain driver did not run — so every surface emits all of them.
EXECUTION_STAMP_KEYS = (
    "backend",
    "jobs",
    "batch_size",
    "kernel",
    "kernel_threads",
    "chains",
    "rhat",
    "ess",
    "shared_cache",
)


def execution_stamp(
    diagnostics: Mapping[str, object],
    kernel: Optional[str] = None,
    kernel_threads: Optional[int] = None,
) -> dict:
    """Build the execution stamp from a result's ``diagnostics`` mapping.

    *diagnostics* is the dictionary every estimator result carries
    (``SingleEstimate.diagnostics`` / ``RelativeBetweennessEstimate
    .diagnostics``); the stamp renames its internal keys (``n_jobs`` →
    ``jobs``, ``n_chains`` → ``chains``) to the stable receipt vocabulary.
    *kernel* is the resolved CSR kernel rung the caller ran and
    *kernel_threads* the per-kernel thread count (estimator diagnostics
    predate both knobs, so they travel separately).
    """
    return {
        "backend": diagnostics.get("backend"),
        "jobs": diagnostics.get("n_jobs"),
        "batch_size": diagnostics.get("batch_size"),
        "kernel": kernel,
        "kernel_threads": kernel_threads,
        "chains": diagnostics.get("n_chains"),
        "rhat": diagnostics.get("rhat"),
        "ess": diagnostics.get("ess"),
        "shared_cache": diagnostics.get("shared_cache"),
    }


def format_stamp_lines(stamp: Mapping[str, object]) -> str:
    """Render a stamp mapping as ``key: value`` lines (text receipts).

    The benchmark harness stamps its table headers through this so the
    text receipts under ``benchmarks/results/`` spell provenance the same
    way the JSON surfaces do.
    """
    return "\n".join(f"{key}: {value}" for key, value in stamp.items())


def resolve_kernel_quiet(kernel: str) -> str:
    """Resolve a kernel request to the rung that actually runs, silently.

    For stamps only: when ``compiled`` degrades to ``csr`` without numba,
    the run itself already warned once — the stamp just records what ran,
    so the fallback warning is suppressed here.
    """
    import warnings

    from repro.graphs.csr import resolve_kernel

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return resolve_kernel(kernel)
