"""Source-shard scheduler: fixed shards, child rng streams, pool, ordered merge.

The scheduler turns "run this per-source worker over these sources" into a
deterministic parallel computation:

1. :func:`split_shards` cuts the source list into contiguous shards of a
   fixed size (:data:`~repro.execution.plan.DEFAULT_SHARD_SIZE`).  Shard
   boundaries depend only on the list itself — never on ``n_jobs`` — so the
   reduction tree of step 4 is invariant to the degree of parallelism.
2. :func:`shard_rngs` derives one independently-seeded child
   :class:`random.Random` per shard from the caller's stream (via
   :func:`repro._rng.spawn_rng`), so stochastic per-sample workers consume
   per-shard streams that do not depend on which process runs the shard.
3. :func:`run_sharded` executes the worker over every shard — inline when
   ``n_jobs == 1``, else on a worker pool.  Pools are pluggable: the
   default provider creates an ephemeral :mod:`multiprocessing` pool per
   call (the large read-only payload — graph or CSR snapshot — shipped once
   per worker process through the pool initializer instead of once per
   shard), while a
   :class:`~repro.execution.runtime.ExecutionContext` passed as *runtime*
   routes the shards through its **persistent** pool, whose workers and
   installed payloads survive across calls.
4. :func:`merge_ordered` folds the per-shard buffers together strictly in
   shard order (numpy buffers, vertex-keyed dicts, lists or scalars).

Steps 1 + 4 are what make results bit-identical for any ``n_jobs``: every
float lands in the accumulator through the same sequence of additions no
matter how many processes computed the shards.  Which pool provider ran
them — inline, ephemeral or persistent — never enters the reduction.
"""

from __future__ import annotations

import multiprocessing
import warnings
from random import Random
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from repro._rng import spawn_rng
from repro.execution.plan import DEFAULT_SHARD_SIZE

__all__ = ["split_shards", "shard_rngs", "sample_shards", "run_sharded", "merge_ordered"]

T = TypeVar("T")

# Per-process slot for the shared read-only payload (set by the pool
# initializer in workers, passed directly on the inline path).
_WORKER_SHARED: Any = None


def split_shards(items: Sequence[T], shard_size: int = DEFAULT_SHARD_SIZE) -> List[List[T]]:
    """Split *items* into contiguous shards of at most *shard_size* elements.

    The boundaries are a pure function of ``len(items)`` and *shard_size* —
    the determinism contract relies on them being independent of ``n_jobs``.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be a positive integer")
    items = list(items)
    return [items[i : i + shard_size] for i in range(0, len(items), shard_size)]


def shard_rngs(rng: Random, num_shards: int) -> List[Random]:
    """Derive *num_shards* independently-seeded child generators from *rng*.

    The children are a deterministic function of the parent's state and the
    shard index, so shard *i* replays the same stream whether it runs
    inline, first on a pool, or last — and the parent advances by exactly
    *num_shards* spawns regardless of ``n_jobs``.
    """
    return [spawn_rng(rng, i) for i in range(num_shards)]


def sample_shards(num_samples: int, rng: Random):
    """Split a per-sample workload into ``(count, child_rng)`` shard payloads.

    The shape the stochastic path samplers (RK, KADABRA) hand to
    :func:`run_sharded`: sample counts follow the fixed
    :func:`split_shards` boundaries and each shard draws from its own
    :func:`shard_rngs` child stream, so the sampled paths are identical for
    any ``n_jobs``.

    The shard lengths are computed arithmetically — only the *counts* of the
    :func:`split_shards` boundaries matter here, so materialising an
    ``O(num_samples)`` index list (as an earlier revision did) would cost
    memory proportional to the sample budget for nothing.
    """
    if num_samples <= 0:
        return []
    full, remainder = divmod(num_samples, DEFAULT_SHARD_SIZE)
    counts = [DEFAULT_SHARD_SIZE] * full
    if remainder:
        counts.append(remainder)
    return list(zip(counts, shard_rngs(rng, len(counts))))


def _init_worker(shared: Any) -> None:
    global _WORKER_SHARED
    _WORKER_SHARED = shared
    # Pay numba JIT compilation once per pool, not once per shard.  With
    # cache=True and a warm NUMBA_CACHE_DIR this is a disk load; without
    # numba (or with the numpy rung resolved) it is a no-op.
    from repro.shortest_paths.compiled import maybe_warm_up

    maybe_warm_up()


def _call_worker(args):
    fn, shard = args
    return fn(_WORKER_SHARED, shard)


def run_sharded(
    fn: Callable[[Any, Any], Any],
    shards: Sequence[Any],
    *,
    n_jobs: int = 1,
    shared: Any = None,
    plan: Any = None,
    mp_context: Optional[str] = None,
    runtime: Any = None,
) -> List[Any]:
    """Run ``fn(shared, shard)`` for every shard and return results in shard order.

    Parameters
    ----------
    fn:
        A module-level (picklable) worker.  It receives the shared payload
        first and one shard second, and must not mutate the payload in any
        way that can change results.  (Result-neutral mutation — memoizing
        a per-process cache on the payload, as the multi-chain driver does
        with its oracle — is fine, but remember the inline path shares one
        payload instance across every shard and call, while pool workers
        each hold their own copy — which on the persistent provider lives
        across *calls*, so warm caches carry over between requests.)
    shards:
        The shard list from :func:`split_shards` (any per-shard value works;
        stochastic workers typically get ``(sources, shard_rng)`` tuples).
    n_jobs:
        Worker processes.  ``1`` (or a single shard) runs inline with no
        multiprocessing import cost; larger values use a pool of
        ``min(n_jobs, len(shards))`` processes (the persistent provider
        uses its own fixed process count — results are provider-invariant
        by the ordered-merge contract).
    shared:
        Read-only payload shipped once per worker process (the graph or CSR
        snapshot plus the per-call constants).
    plan:
        Optional :class:`~repro.execution.plan.ExecutionPlan` supplying the
        ``mp_context`` / ``runtime`` fields below when the caller has one in
        hand (the explicit keyword arguments win over the plan's fields).
    mp_context:
        Start-method name for the ephemeral pool (``None`` = interpreter
        default), from :attr:`ExecutionPlan.mp_context` — spawn deployments
        configure the pool and the shared-cache arena consistently with it.
    runtime:
        Optional :class:`~repro.execution.runtime.ExecutionContext`.  When
        it has a usable persistent pool, the shards run there — same worker
        signature, same ordered results — and the per-call pool below is
        never created; otherwise (inline context, pool-creation failure)
        the call falls through to the ephemeral paths.

    Results arrive in shard order on every path, so downstream merges are
    deterministic.  If the platform cannot spawn processes (sandboxes,
    restricted containers), the scheduler falls back to the inline path with
    a warning — results are identical by construction, only slower.
    """
    if plan is not None:
        if mp_context is None:
            mp_context = getattr(plan, "mp_context", None)
        if runtime is None:
            runtime = getattr(plan, "runtime", None)
    if n_jobs <= 1 or len(shards) <= 1:
        return [fn(shared, shard) for shard in shards]
    if runtime is not None:
        results = runtime.map_sharded(fn, shards, shared)
        if results is not None:
            return results
    try:
        with multiprocessing.get_context(mp_context).Pool(
            processes=min(n_jobs, len(shards)),
            initializer=_init_worker,
            initargs=(shared,),
        ) as pool:
            return pool.map(_call_worker, [(fn, shard) for shard in shards], chunksize=1)
    except (OSError, PermissionError) as exc:  # pragma: no cover - platform dependent
        warnings.warn(
            f"multiprocessing unavailable ({exc}); running {len(shards)} shards inline",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(shared, shard) for shard in shards]


def merge_ordered(buffers: Sequence[Any]):
    """Fold per-shard buffers together strictly in shard order.

    Supports the three accumulator shapes the estimators use:

    * numpy arrays — element-wise sums, one vector addition per shard;
    * ``{vertex: float}`` dicts — per-key sums, shards applied in order;
    * lists — concatenation (per-source values, e.g. dependency-on-target);
    * floats/ints — plain sequential sums.

    Raises :class:`ValueError` on an empty sequence: the caller knows the
    workload's shape and should handle "no sources" explicitly.
    """
    if not buffers:
        raise ValueError("cannot merge zero buffers; handle the empty workload upstream")
    first = buffers[0]
    if isinstance(first, list):
        merged_list: List[Any] = []
        for buffer in buffers:
            merged_list.extend(buffer)
        return merged_list
    if isinstance(first, dict):
        merged: Dict[Any, float] = dict(first)
        for buffer in buffers[1:]:
            for key, value in buffer.items():
                merged[key] = merged.get(key, 0.0) + value
        return merged
    if isinstance(first, (int, float)):
        total = first
        for buffer in buffers[1:]:
            total += buffer
        return total
    # numpy array (or anything supporting +=): copy to keep inputs intact.
    out = first.copy()
    for buffer in buffers[1:]:
        out += buffer
    return out
