"""Source-sharded parallel execution layer.

Every estimation layer of the library (exact Brandes, the baseline
samplers, the Metropolis-Hastings oracles) reduces to "run many per-source
passes and accumulate".  This package owns *how* those passes are executed:

* :class:`~repro.execution.plan.ExecutionPlan` bundles the three execution
  knobs — traversal ``backend``, batched-kernel ``batch_size`` and
  multiprocessing ``n_jobs`` — and
  :func:`~repro.execution.plan.resolve_plan` resolves them the same way
  :func:`~repro.graphs.csr.resolve_backend` resolves backends (explicit
  arguments win over the ``REPRO_JOBS`` / ``REPRO_BATCH`` environment
  overrides; with nothing set the estimators keep their original
  sequential code paths).
* :mod:`~repro.execution.scheduler` splits a source list into fixed-size
  shards, derives an independently-seeded child rng stream per shard, runs
  shards inline or on a multiprocessing pool, and merges per-shard buffers
  in deterministic shard order — so results are identical for any
  ``n_jobs`` given a fixed seed.
* :mod:`~repro.execution.autotune` calibrates ``batch_size``, ``n_jobs``
  and ``kernel_threads`` from short timed probes (what the respective
  ``"auto"`` values resolve to); safe because the batch kernels are
  bit-identical per source row at any block size, the shard scheduler is
  n_jobs-invariant and the jit-parallel kernels accumulate rows in source
  order at any thread count — timing can never change an estimate.  The
  threads probe composes with ``n_jobs``: candidates are capped so
  ``threads × processes`` never oversubscribes the machine.  A shard-size
  probe ships as a diagnostic only (the shard size is part of the
  determinism contract, never a knob).
* :mod:`~repro.execution.shared_cache` provides the cross-process
  :class:`~repro.execution.shared_cache.SharedDependencyStore` — a
  shared-memory arena of per-source dependency vectors the multi-chain MCMC
  drivers publish into so a Brandes pass paid by one worker process is a
  cache hit for every other (the ``shared_cache`` plan knob /
  ``REPRO_SHARED_CACHE`` override).
* :mod:`~repro.execution.runtime` provides the *persistent* execution
  path: :class:`~repro.execution.runtime.ExecutionContext` owns a reusable
  worker pool (payloads installed once, referenced by token afterwards), a
  payload memo and a cross-request dependency arena guarded by a
  graph-version stamp — the warm state behind the
  :class:`~repro.centrality.session.BetweennessSession` serving API.
"""

from repro.execution.autotune import (
    DEFAULT_BATCH_CANDIDATES,
    calibrate_batch_size,
    calibrate_kernel_threads,
    calibrate_n_jobs,
    default_jobs_candidates,
    default_threads_candidates,
    probe_batch_sizes,
    probe_kernel_threads,
    probe_n_jobs,
    probe_shard_sizes,
)
from repro.execution.plan import (
    DEFAULT_SHARD_SIZE,
    ExecutionPlan,
    resolve_kernel_threads,
    resolve_mp_context,
    resolve_plan,
    resolve_shared_cache,
    resolve_shared_graph,
)
from repro.execution.runtime import (
    ExecutionContext,
    PersistentWorkerPool,
    graph_snapshot,
    interned_payload,
    plan_snapshot,
)
from repro.execution.scheduler import (
    merge_ordered,
    run_sharded,
    sample_shards,
    shard_rngs,
    split_shards,
)
from repro.execution.shared_cache import (
    SharedDependencyStore,
    create_shared_store,
    shared_memory_available,
)
from repro.execution.stamp import (
    EXECUTION_STAMP_KEYS,
    execution_stamp,
    format_stamp_lines,
    resolve_kernel_quiet,
)

__all__ = [
    "ExecutionPlan",
    "resolve_plan",
    "resolve_kernel_threads",
    "resolve_shared_cache",
    "resolve_shared_graph",
    "resolve_mp_context",
    "ExecutionContext",
    "PersistentWorkerPool",
    "interned_payload",
    "graph_snapshot",
    "plan_snapshot",
    "DEFAULT_SHARD_SIZE",
    "DEFAULT_BATCH_CANDIDATES",
    "calibrate_batch_size",
    "probe_batch_sizes",
    "default_jobs_candidates",
    "calibrate_n_jobs",
    "probe_n_jobs",
    "default_threads_candidates",
    "calibrate_kernel_threads",
    "probe_kernel_threads",
    "probe_shard_sizes",
    "split_shards",
    "shard_rngs",
    "sample_shards",
    "run_sharded",
    "merge_ordered",
    "SharedDependencyStore",
    "create_shared_store",
    "shared_memory_available",
    "EXECUTION_STAMP_KEYS",
    "execution_stamp",
    "format_stamp_lines",
    "resolve_kernel_quiet",
]
