"""Persistent execution runtime: reusable worker pool + warm cross-request state.

Every estimator call through :func:`repro.execution.scheduler.run_sharded`
historically paid full cold-start: a :mod:`multiprocessing` pool was created
and destroyed per invocation, the read-only payload (graph or CSR snapshot)
was re-shipped to every fresh worker, and the cross-process dependency arena
of :mod:`repro.execution.shared_cache` lived for exactly one run.  That is
the right default for one-shot scripts — nothing leaks, nothing outlives the
call — but it is the wrong shape for serving many queries against one graph,
where the pool, the shipped snapshot and the computed dependency vectors are
all reusable.

This module provides the *warm* execution path:

* :class:`PersistentWorkerPool` — a pool provider that keeps its worker
  processes alive across :func:`run_sharded` calls.  Large read-only
  payloads are **installed** once per payload (a barrier-synchronised
  broadcast reaches every worker exactly once) and later calls reference
  them by an integer token, so the CSR snapshot crosses the process
  boundary once instead of once per request.  Installed payloads are also
  how per-worker caches (the multi-chain drivers' dependency oracles) stay
  warm between requests.
* :class:`ExecutionContext` — the session-scoped owner of one persistent
  pool, one process-shared lock, a payload memo (so callers can reuse — and
  therefore avoid re-installing — payload objects across requests) and one
  *persistent* :class:`~repro.execution.shared_cache.SharedDependencyStore`
  arena guarded by a graph-version stamp: a dependency vector computed for
  query 1 is a cache hit for queries 2..N, and any graph mutation
  invalidates the arena and every interned payload.

Determinism contract
--------------------
The runtime never changes a result.  ``run_sharded`` keeps its shard
boundaries and ordered merge whatever pool executes the shards; dependency
vectors are bit-identical per source however and wherever they are computed
(the PR 2 kernel contract), so serving one from a warm arena or a warm
worker cache equals recomputing it; and per-request rng streams are derived
from the request's seed, never from context state.  Warm results are
therefore bit-identical to the cold per-call path at a fixed seed — the
receipt is ``benchmarks/bench_e14_session.py``.

Process plumbing
----------------
A process-shared lock may only cross into a worker while the worker is
being set up, never through a task queue.  The persistent pool therefore
owns **one** lock (shipped through the pool initializer) and the payload
broadcast pickles any reference to that lock as a persistent id that the
worker resolves to its own copy — which is how a
:class:`~repro.execution.shared_cache.SharedDependencyStore` handle (whose
guarding lock is the context's lock by construction) can ride inside an
installed payload.  :class:`ExecutionContext` itself deliberately pickles
to ``None``: a context captured inside a payload (say, on a sampler the
payload embeds) must never drag pool handles across the boundary, and a
worker holding ``runtime=None`` simply runs inline — the correct behaviour
inside a worker.
"""

from __future__ import annotations

import io
import multiprocessing
import pickle
import threading
import warnings
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.execution.plan import resolve_mp_context, resolve_plan
from repro.execution.shared_cache import (
    SharedDependencyStore,
    create_shared_store,
    shared_memory_available,
)
from repro.graphs.core import Graph
from repro.graphs.shared import (
    SharedCSRGraph,
    create_shared_graph,
    ensure_shared_graph,
    shared_graph_available,
)

__all__ = [
    "ExecutionContext",
    "PersistentWorkerPool",
    "interned_payload",
    "graph_snapshot",
    "plan_snapshot",
    "DEFAULT_ARENA_BYTES",
    "default_arena_rows",
]

#: Upper bound on payloads kept installed per pool (and memoized per
#: context).  Payloads embed graph snapshots, so the bound caps worker
#: memory; eviction is broadcast with the install that caused it, keeping
#: parent and worker caches in lockstep.
PAYLOAD_CACHE_LIMIT = 8

#: Default byte budget of the persistent dependency arena.  Chosen to fit
#: comfortably inside the 64 MiB ``/dev/shm`` of a default Docker container;
#: :func:`default_arena_rows` converts it into ``(rows, n)`` shapes.
DEFAULT_ARENA_BYTES = 48 * 1024 * 1024

#: Seconds every worker waits on the install barrier before declaring the
#: broadcast broken (a worker died mid-install).
_INSTALL_TIMEOUT = 60.0

#: Persistent id under which the context's process-shared lock travels
#: inside installed payloads (resolved to the worker's own copy on load).
_LOCK_PID = "repro-runtime-shared-lock"


def default_arena_rows(num_vertices: int, budget: int = DEFAULT_ARENA_BYTES) -> int:
    """Return the default arena capacity (rows) for an *num_vertices*-graph.

    Each row costs ``8 * n`` bytes, so the row count adapts to the graph:
    small graphs get every source a row (capacity ``n`` — overflow
    impossible), large graphs get as many rows as the byte budget allows
    (at least one; a full arena degrades to private caches, never breaks).
    """
    if num_vertices < 1:
        return 1
    return max(1, min(num_vertices, budget // (8 * num_vertices)))


# ----------------------------------------------------------------------
# Worker-side state (one copy per persistent worker process)
# ----------------------------------------------------------------------

_WORKER_BARRIER: Any = None
_WORKER_LOCK: Any = None
_WORKER_PAYLOADS: "OrderedDict[int, Any]" = OrderedDict()


def _init_persistent_worker(barrier, lock) -> None:
    global _WORKER_BARRIER, _WORKER_LOCK
    _WORKER_BARRIER = barrier
    _WORKER_LOCK = lock
    _WORKER_PAYLOADS.clear()
    # Persistent pools amortise JIT compilation across the whole session:
    # warm the compiled kernel rung once at worker start (no-op without
    # numba or when the numpy rung is resolved).
    from repro.shortest_paths.compiled import maybe_warm_up

    maybe_warm_up()


class _PayloadPickler(pickle.Pickler):
    """Pickler that ships the pool's shared lock as a persistent id."""

    def __init__(self, buffer, lock) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._shared_lock = lock

    def persistent_id(self, obj):
        if self._shared_lock is not None and obj is self._shared_lock:
            return _LOCK_PID
        return None


class _PayloadUnpickler(pickle.Unpickler):
    """Unpickler that resolves the lock persistent id to the worker's copy."""

    def persistent_load(self, pid):
        if pid == _LOCK_PID:
            if _WORKER_LOCK is None:
                raise pickle.UnpicklingError(
                    "payload references the runtime's shared lock but this "
                    "process is not a persistent-pool worker"
                )
            return _WORKER_LOCK
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def _dumps_payload(payload, lock) -> bytes:
    buffer = io.BytesIO()
    _PayloadPickler(buffer, lock).dump(payload)
    return buffer.getvalue()


def _install_payload(args) -> int:
    """Worker: install one broadcast payload under its token.

    Exactly ``processes`` copies of this task are submitted with
    ``chunksize=1`` and every copy blocks on the pool barrier, so no worker
    can take a second copy before every worker holds one — the broadcast
    reaches each worker exactly once.  *evicted* tokens are dropped here so
    the worker cache follows the parent's eviction decisions (the worker
    never evicts on its own, which would let the two drift apart).
    """
    token, blob, evicted = args
    payload = _PayloadUnpickler(io.BytesIO(blob)).load()
    for old in evicted:
        _WORKER_PAYLOADS.pop(old, None)
    _WORKER_PAYLOADS[token] = payload
    try:
        _WORKER_BARRIER.wait(timeout=_INSTALL_TIMEOUT)
    except threading.BrokenBarrierError:
        raise RuntimeError(
            "persistent-pool payload broadcast failed: a worker did not reach "
            "the install barrier (worker died or is wedged)"
        )
    return token


def _run_installed(args):
    """Worker: run one shard of a task against a previously installed payload."""
    fn, token, shard = args
    try:
        payload = _WORKER_PAYLOADS[token]
    except KeyError:
        raise RuntimeError(
            f"persistent-pool worker has no payload installed under token "
            f"{token}; the install broadcast and the task stream disagree"
        )
    return fn(payload, shard)


def _reduce_to_none():
    return None


class PersistentWorkerPool:
    """A long-lived worker pool with token-addressed payload broadcast.

    The pool provider behind :class:`ExecutionContext`: worker processes are
    created once and reused by every :meth:`run` call.  Payload objects are
    deduplicated by identity — :meth:`run` with a payload the pool has seen
    ships only its integer token per task, so callers that reuse payload
    objects across requests (the context's payload memo exists for exactly
    this) pay the pickling and transfer of the graph snapshot once.

    Parameters
    ----------
    processes:
        Worker process count (>= 1).
    mp_context:
        Start-method name (``None`` = interpreter default), matching
        :attr:`repro.execution.plan.ExecutionPlan.mp_context`.
    lock:
        Optional pre-created process-shared lock (must belong to the same
        start-method context).  The pool ships it to workers through the
        initializer — the only legal channel — and substitutes any
        reference to it inside broadcast payloads with a persistent id.
    """

    def __init__(self, processes: int, *, mp_context: Optional[str] = None, lock=None) -> None:
        if not isinstance(processes, int) or processes < 1:
            raise ConfigurationError(
                f"processes must be a positive integer, got {processes!r}"
            )
        self._mp = multiprocessing.get_context(mp_context)
        self._lock = lock if lock is not None else self._mp.Lock()
        self._barrier = self._mp.Barrier(processes)
        self._processes = processes
        self._pool = self._mp.Pool(
            processes,
            initializer=_init_persistent_worker,
            initargs=(self._barrier, self._lock),
        )
        self._installed: "OrderedDict[int, Any]" = OrderedDict()
        #: Tokens dropped parent-side (LRU or invalidation) whose worker
        #: copies still need dropping; piggybacked on the next broadcast.
        self._pending_drops: List[int] = []
        self._next_token = 0
        self.installs = 0  #: number of payload broadcasts performed
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def processes(self) -> int:
        """Worker process count."""
        return self._processes

    @property
    def shared_lock(self):
        """The pool's process-shared lock (also guards the context's arena)."""
        return self._lock

    def payload_token(self, payload) -> Optional[int]:
        """Return the token *payload* is installed under, or ``None``."""
        for token, installed in self._installed.items():
            if installed is payload:
                return token
        return None

    def ensure_payload(self, payload) -> int:
        """Install *payload* on every worker (idempotent); return its token."""
        self._require_open()
        token = self.payload_token(payload)
        if token is not None:
            # Touch on reuse so eviction is genuinely LRU — without this a
            # hot payload (the interned CSR snapshot) installed first would
            # be the first evicted once the memo fills.
            self._installed.move_to_end(token)
            return token
        token = self._next_token
        self._next_token += 1
        # Pick the LRU overflow without popping yet: if the broadcast
        # fails, nothing may be half-forgotten (a popped token absent from
        # _pending_drops would leak its worker-side copy forever).
        overflow: List[int] = []
        excess = len(self._installed) + 1 - PAYLOAD_CACHE_LIMIT
        if excess > 0:
            overflow = list(self._installed)[:excess]
        evicted = list(self._pending_drops) + overflow
        blob = _dumps_payload(payload, self._lock)
        self._pool.map(
            _install_payload,
            [(token, blob, tuple(evicted))] * self._processes,
            chunksize=1,
        )
        for old in overflow:
            self._installed.pop(old, None)
        self._pending_drops.clear()
        self._installed[token] = payload
        self.installs += 1
        return token

    def invalidate_payloads(self) -> None:
        """Forget every installed payload (graph mutated: all are stale).

        Worker copies are dropped lazily — the tokens ride the next
        install's eviction list — which is safe because a forgotten token
        can never be referenced again: tasks only carry tokens the parent
        memo just resolved.
        """
        self._pending_drops.extend(self._installed.keys())
        self._installed.clear()

    def run(self, fn: Callable[[Any, Any], Any], shards: Sequence[Any], payload) -> List[Any]:
        """Run ``fn(payload, shard)`` over *shards*; results in shard order.

        The persistent twin of the ephemeral pool path in
        :func:`repro.execution.scheduler.run_sharded` — same worker
        signature, same ``chunksize=1`` task grain, same ordered results.
        """
        self._require_open()
        token = self.ensure_payload(payload)
        return self._pool.map(
            _run_installed, [(fn, token, shard) for shard in shards], chunksize=1
        )

    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise ConfigurationError("the persistent worker pool has been closed")

    def close(self) -> None:
        """Terminate the workers and drop every installed payload."""
        if self._closed:
            return
        self._closed = True
        self._pool.terminate()
        self._pool.join()
        self._installed.clear()

    def __reduce__(self):
        raise TypeError(
            "PersistentWorkerPool cannot be pickled; it owns live worker "
            "processes (route payloads through ExecutionContext instead)"
        )


class ExecutionContext:
    """Session-scoped owner of the warm execution state.

    One context bundles everything worth keeping hot between requests
    against one graph:

    * a lazily created :class:`PersistentWorkerPool` of ``n_jobs`` workers
      (``n_jobs <= 1`` keeps everything inline — the context still provides
      the arena and the payload memo);
    * a **payload memo** (:meth:`cached_payload`) returning the same payload
      object for the same key, which is what lets the pool dedupe installs
      across requests;
    * a **persistent dependency arena** (:meth:`dependency_arena`) — one
      :class:`~repro.execution.shared_cache.SharedDependencyStore` stamped
      with ``(id(graph), graph.version)``; any mutation of the graph
      invalidates the arena *and* the payload memo on the next call, so
      stale vectors or snapshots can never serve a request.

    The context never changes results (see the module docstring); it only
    changes where and how often setup and Brandes passes are paid.  Use it
    as a context manager, or call :meth:`close` — worker processes and the
    shared-memory segment are real resources.

    Parameters
    ----------
    n_jobs:
        Worker processes (``None`` consults ``REPRO_JOBS``; resolved once).
    mp_context:
        Pool start method (``None`` consults ``REPRO_MP_CONTEXT``).
    arena_capacity:
        Rows of the persistent arena (``None`` = the
        :func:`default_arena_rows` byte-budget heuristic).
    """

    def __init__(
        self,
        *,
        n_jobs: Optional[int] = None,
        mp_context: Optional[str] = None,
        arena_capacity: Optional[int] = None,
        invalidation: Optional[str] = None,
    ) -> None:
        from repro.incremental import resolve_invalidation

        plan = resolve_plan(None, n_jobs=n_jobs)
        self.n_jobs = plan.n_jobs if plan is not None else 1
        self.mp_context = resolve_mp_context(mp_context)
        #: How graph mutations are consumed: ``"delta"`` reads the change
        #: journal and retains unaffected arena rows, ``"full"`` keeps the
        #: legacy destroy-everything protocol (``None`` consults
        #: ``REPRO_INVALIDATION``; result-identical either way).
        self.invalidation = resolve_invalidation(invalidation)
        if arena_capacity is not None and (
            not isinstance(arena_capacity, int)
            or isinstance(arena_capacity, bool)
            or arena_capacity < 1
        ):
            raise ConfigurationError(
                f"arena_capacity must be a positive integer or None, got {arena_capacity!r}"
            )
        self._mp = multiprocessing.get_context(self.mp_context)
        self._arena_capacity = arena_capacity
        self._lock = None
        self._pool: Optional[PersistentWorkerPool] = None
        self._pool_failed = False
        self._arena: Optional[SharedDependencyStore] = None
        self._arena_attempted = False
        self._shared_graph: Optional[SharedCSRGraph] = None
        self._shared_graph_attempted = False
        # The graph the warm state was built against, held by reference:
        # identity comparison (not id()) because a recycled id after GC
        # could otherwise validate a stale arena against a different graph.
        self._stamped_graph: Optional[Graph] = None
        self._stamped_version: Optional[int] = None
        self._payloads: "OrderedDict[Any, Any]" = OrderedDict()
        # Receipt + affected mask of the most recent invalidation (read by
        # the session layer to scope its own oracle/chain eviction).
        self._last_receipt = None
        self._last_affected = None
        #: Lifetime Brandes-pass count reported through :meth:`record_passes`
        #: by whoever drives the context (the session layer after each
        #: query).  Survives graph mutation — it is work accounting, not
        #: graph state — so observability counters built on it are monotone.
        self._brandes_passes = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Pool
    # ------------------------------------------------------------------
    def _shared_lock(self):
        if self._lock is None:
            self._lock = self._mp.Lock()
        return self._lock

    def worker_pool(self) -> Optional[PersistentWorkerPool]:
        """Return the persistent pool, creating it lazily; ``None`` when inline.

        Pool creation failures (sandboxes that refuse to fork) degrade to
        ``None`` with a warning, exactly like the ephemeral scheduler path —
        every later call runs inline, results unchanged.
        """
        self._require_open()
        if self.n_jobs <= 1 or self._pool_failed:
            return None
        if self._pool is None:
            try:
                self._pool = PersistentWorkerPool(
                    self.n_jobs, mp_context=self.mp_context, lock=self._shared_lock()
                )
            except (OSError, PermissionError) as exc:  # pragma: no cover - platform dependent
                warnings.warn(
                    f"persistent worker pool unavailable ({exc}); the context "
                    "runs every request inline",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._pool_failed = True
                return None
        return self._pool

    def map_sharded(self, fn, shards, shared) -> Optional[List[Any]]:
        """Scheduler hook: run the shards on the persistent pool.

        Returns ``None`` when the context has no usable pool (inline
        configuration, pool-creation failure, or a pool that broke
        mid-session), in which case
        :func:`~repro.execution.scheduler.run_sharded` falls back to its
        own paths.  A broken pool — a worker died and the install
        protocol's barrier or token bookkeeping reported it as a
        :class:`RuntimeError` — is torn down and every later call degrades
        to per-call pools: the same graceful-degradation contract as a
        creation failure, and safe to retry because shard work is
        side-effect-free (arena puts are idempotent fill-once rows).
        """
        pool = self.worker_pool()
        if pool is None:
            return None
        try:
            return pool.run(fn, shards, shared)
        except RuntimeError as exc:
            warnings.warn(
                f"persistent worker pool failed ({exc}); the context falls "
                "back to per-call pools",
                RuntimeWarning,
                stacklevel=2,
            )
            pool.close()
            self._pool = None
            self._pool_failed = True
            return None

    # ------------------------------------------------------------------
    # Payload memo
    # ------------------------------------------------------------------
    def cached_payload(self, key, factory: Callable[[], Any]):
        """Return the memoized payload for *key*, building it via *factory* once.

        The point is object identity across requests: the persistent pool
        dedupes installs by payload identity, so two requests that obtain
        their payload through the same key ship the underlying snapshot to
        the workers once.  Keys should include the graph's version stamp so
        a mutated graph can never resurrect a stale payload.
        """
        self._require_open()
        payload = self._payloads.get(key)
        if payload is None:
            payload = factory()
            self._payloads[key] = payload
            while len(self._payloads) > PAYLOAD_CACHE_LIMIT:
                self._payloads.popitem(last=False)
        else:
            self._payloads.move_to_end(key)
        return payload

    # ------------------------------------------------------------------
    # Graph-version tracking + persistent arena
    # ------------------------------------------------------------------
    def refresh(self, graph: Graph):
        """Re-stamp the context against *graph*, invalidating warm state on change.

        Called at the top of every request (the session API does it; direct
        users should too when the graph may have been mutated).  Returns the
        :class:`~repro.incremental.InvalidationReceipt` describing what the
        call did:

        * ``noop`` — same graph, same version: nothing touched.
        * ``delta`` — same graph, version advanced, and the change journal
          proved an affected-source region: only the affected arena rows
          are tombstoned (:meth:`SharedDependencyStore.invalidate_sources`)
          while the rest keep serving; the payload memo and worker installs
          are still cleared (payloads embed whole-graph snapshots) and the
          shared-graph segment is rebuilt lazily.
        * ``full`` — a different graph object, journal overflow, a fallback
          case of :func:`~repro.incremental.affected_sources`, or
          ``invalidation="full"``: the legacy path, destroying the arena and
          every interned payload (``receipt.reason`` says why).

        The worker pool survives in every mode: its processes hold no graph
        state beyond the payloads, which the memo clearing guarantees are
        rebuilt (under fresh tokens) for the new stamp.  Either way the
        over-approximation contract of :mod:`repro.incremental` holds, so
        the mode can never change a result — only how warm the next request
        starts.
        """
        from repro.incremental import InvalidationReceipt

        self._require_open()
        old_graph = self._stamped_graph
        old_version = self._stamped_version
        if old_graph is None or (old_graph is graph and old_version == graph.version):
            receipt = InvalidationReceipt(
                mode="noop", version_from=graph.version, version_to=graph.version
            )
        elif old_graph is not graph:
            self._invalidate_graph_state()
            self._last_affected = None
            receipt = InvalidationReceipt(
                mode="full",
                reason="graph-replaced",
                version_from=old_version if old_version is not None else -1,
                version_to=graph.version,
            )
        else:
            receipt = self._consume_delta(graph, old_version)
        self._stamped_graph = graph
        # Stamp the *settled* version: inside an open batch_mutations()
        # block the batch's version is still accumulating journal records,
        # and stamping it would make the post-batch refresh see
        # version == stamp and silently retain warm state the rest of the
        # batch invalidated.  The settled (pre-batch) stamp keeps the
        # window pending — each sync re-consumes it, which is idempotent.
        self._stamped_version = graph.settled_version()
        self._last_receipt = receipt
        return receipt

    def _consume_delta(self, graph: Graph, old_version: int):
        """Scope the invalidation of a same-graph version change via the journal."""
        from repro.incremental import InvalidationReceipt, affected_sources

        receipt = InvalidationReceipt(
            mode="full", version_from=old_version, version_to=graph.version
        )
        region = None
        new_csr = None
        if self.invalidation != "delta":
            receipt.reason = "disabled"
        else:
            deltas = graph.journal_since(old_version)
            if deltas is None:
                receipt.reason = "journal-overflow"
            else:
                # The pre-mutation snapshot (for the kernel-path guard
                # below) must be captured before graph.csr() consumes it.
                stale = graph._stale_csr
                old_csr = (
                    stale[0]
                    if stale is not None and stale[1] == old_version
                    else None
                )
                try:
                    new_csr = graph.csr()
                except ConfigurationError:
                    receipt.reason = "no-numpy"
                if new_csr is not None:
                    region = affected_sources(new_csr, deltas)
                    if region.everything:
                        receipt.reason = region.reason
                        region = None
                    else:
                        # The batch kernels pick the sparse-matmul sweep
                        # per snapshot, and the sweep's rows can differ
                        # from the wave kernels in the last ulp.  Rows
                        # retained across a verdict flip would therefore
                        # not be bit-identical to a cold run on the new
                        # snapshot — so a flip (or an unknown pre-mutation
                        # verdict) forces the full path.
                        from repro.shortest_paths.batch import _spmm_suitable

                        if old_csr is None:
                            receipt.reason = "no-prior-snapshot"
                            region = None
                        elif _spmm_suitable(old_csr) != _spmm_suitable(new_csr):
                            receipt.reason = "kernel-path-change"
                            region = None
        if region is None:
            self._invalidate_graph_state()
            self._last_affected = None
            return receipt
        receipt.mode = "delta"
        receipt.affected_sources = region.count()
        receipt.total_sources = new_csr.number_of_vertices()
        receipt.touched_endpoints = len(region.endpoints)
        receipt.payload_entries_evicted = len(self._payloads)
        if self._arena is not None:
            receipt.arena_rows_evicted = self._arena.invalidate_sources(
                region.indices()
            )
            receipt.arena_rows_retained = self._arena.published()
            # Tombstones spend capacity that eviction never returns, so a
            # long-running serving session under sustained delta-mode
            # mutations would otherwise grind the arena down to a
            # permanent "full" while published() stays small.  Compact
            # once eviction has consumed over half the arena, and also
            # whenever the arena is full with any tombstones at all — a
            # full arena refuses re-publication of the rows just evicted,
            # so without reclamation the same small affected set stays
            # permanently cold while tombstones never reach the half-way
            # threshold.
            stats = self._arena.stats()
            if stats["tombstoned"] and (
                stats["full"] or stats["tombstoned"] > self._arena.capacity // 2
            ):
                receipt.arena_rows_compacted = self._arena.compact()
        # Payloads embed whole-graph snapshots (and worker-side installs
        # mirror them), so they are always rebuilt; the shared-graph
        # segment likewise packs the old CSR arrays and is re-created
        # lazily from the patched/rebuilt snapshot.
        self._payloads.clear()
        if self._pool is not None:
            self._pool.invalidate_payloads()
        if self._shared_graph is not None:
            self._shared_graph.destroy()
        self._shared_graph = None
        self._shared_graph_attempted = False
        self._last_affected = region.mask
        return receipt

    @property
    def last_invalidation(self):
        """The receipt of the most recent :meth:`refresh` (``None`` before any)."""
        return self._last_receipt

    def last_affected_mask(self):
        """Boolean per-source mask of the last delta-mode invalidation.

        ``None`` unless the most recent refresh took the delta path; the
        session layer reads it (immediately after :meth:`refresh`, under
        its own serialization) to scope oracle-cache eviction and MH-chain
        continuation to the same region the arena eviction used.
        """
        return self._last_affected

    def _invalidate_graph_state(self) -> None:
        if self._arena is not None:
            self._arena.destroy()
        self._arena = None
        self._arena_attempted = False
        if self._shared_graph is not None:
            self._shared_graph.destroy()
        self._shared_graph = None
        self._shared_graph_attempted = False
        self._payloads.clear()
        if self._pool is not None:
            # Payloads handed to the pool *by identity* (a mutable graph
            # passed straight through run_sharded) would otherwise keep
            # their token and the workers their stale pickled copy.
            self._pool.invalidate_payloads()

    def dependency_arena(
        self, graph: Graph, *, capacity: Optional[int] = None
    ) -> Optional[SharedDependencyStore]:
        """Return the persistent dependency arena for *graph* (or ``None``).

        Created on first use and reused by every later request against the
        same graph version; a vector any request publishes is a hit for all
        subsequent ones.  ``None`` on platforms without working shared
        memory, for empty graphs, or after a creation failure (each request
        then runs with private caches — correct, just colder).
        """
        self._require_open()
        self.refresh(graph)
        if self._arena_attempted:
            return self._arena
        self._arena_attempted = True
        n = graph.number_of_vertices()
        if n < 1 or not shared_memory_available():
            return None
        rows = capacity if capacity is not None else self._arena_capacity
        if rows is None:
            rows = default_arena_rows(n)
        self._arena = create_shared_store(
            n, min(rows, n), context=self._mp, lock=self._shared_lock()
        )
        return self._arena

    def shared_graph(self, graph: Graph) -> Optional[SharedCSRGraph]:
        """Return the persistent shared-memory CSR snapshot of *graph* (or ``None``).

        The graph-payload twin of :meth:`dependency_arena`: created once per
        ``(id(graph), graph.version)`` stamp, reused by every later request,
        destroyed on mutation (via :meth:`refresh`) and on :meth:`close` —
        exactly alongside the dependency arena.  ``None`` on platforms
        without working shared memory or after a creation failure; callers
        degrade to shipping the plain pickled snapshot.
        """
        self._require_open()
        self.refresh(graph)
        if self._shared_graph_attempted:
            return self._shared_graph
        self._shared_graph_attempted = True
        if not shared_graph_available():
            return None
        self._shared_graph = create_shared_graph(graph.csr(), version=graph.version)
        return self._shared_graph

    # ------------------------------------------------------------------
    # Lifecycle + diagnostics
    # ------------------------------------------------------------------
    def record_passes(self, count: int) -> None:
        """Add *count* Brandes passes to the context's lifetime work counter.

        The serving layer's observability hook: the session reports each
        query's evaluation count here, and :meth:`stats` exposes the running
        total, so a metrics exporter can read pass counters and arena
        occupancy from one place.  Monotone by construction (negative or
        bogus counts are ignored rather than corrupting the series).
        """
        if isinstance(count, int) and not isinstance(count, bool) and count > 0:
            self._brandes_passes += count

    def stats(self) -> Dict[str, object]:
        """Return a diagnostics stamp of the warm state (for result payloads)."""
        arena = self._arena.stats() if self._arena is not None else None
        occupancy = None
        if arena is not None and arena.get("capacity"):
            occupancy = arena["published"] / arena["capacity"]
        return {
            "n_jobs": self.n_jobs,
            "mp_context": self.mp_context,
            "pool_active": self._pool is not None,
            "pool_processes": self._pool.processes if self._pool is not None else 0,
            "payload_installs": self._pool.installs if self._pool is not None else 0,
            "cached_payloads": len(self._payloads),
            "brandes_passes": self._brandes_passes,
            "invalidation": self.invalidation,
            "last_invalidation": (
                self._last_receipt.as_dict() if self._last_receipt is not None else None
            ),
            "arena": arena,
            "arena_occupancy": occupancy,
            "shared_graph": (
                self._shared_graph.segment_name if self._shared_graph is not None else None
            ),
        }

    def _require_open(self) -> None:
        if self._closed:
            raise ConfigurationError("the execution context has been closed")

    def close(self) -> None:
        """Terminate the pool and destroy the arena (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._arena is not None:
            self._arena.destroy()
            self._arena = None
        if self._shared_graph is not None:
            self._shared_graph.destroy()
            self._shared_graph = None
        self._payloads.clear()
        self._stamped_graph = None

    def __enter__(self) -> "ExecutionContext":
        self._require_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __reduce__(self):
        # A context captured inside a worker payload (e.g. on a sampler the
        # payload embeds) must not drag pool handles across the process
        # boundary.  Reducing to None is semantically right: inside a
        # worker, "no runtime" is the correct execution mode.
        return (_reduce_to_none, ())


def graph_snapshot(graph: Graph, *, shared_graph: bool = False, runtime=None):
    """Return the CSR snapshot of *graph* a parallel workload should ship.

    With ``shared_graph=False`` this is exactly ``graph.csr()`` — the plain
    snapshot, pickled array-by-array into each worker.  With the knob on,
    the snapshot is wrapped in a zero-copy shared-memory segment
    (:class:`~repro.graphs.shared.SharedCSRGraph`): the *runtime*'s
    persistent per-``(graph, version)`` segment when a runtime is attached,
    the process-wide registry of
    :func:`~repro.graphs.shared.ensure_shared_graph` otherwise — both
    stable objects per graph version, so payloads interned by snapshot
    identity keep deduplicating.  Falls back to the plain snapshot (with a
    warning) where shared memory is unsupported.  Either way the arrays are
    byte-equal, so results never depend on the knob.
    """
    if not shared_graph:
        return graph.csr()
    if runtime is not None:
        shared = runtime.shared_graph(graph)
    else:
        shared = ensure_shared_graph(graph)
    return shared if shared is not None else graph.csr()


def plan_snapshot(graph: Graph, plan):
    """Return the CSR snapshot a planned call site should put in its payload.

    The :class:`~repro.execution.plan.ExecutionPlan` flavour of
    :func:`graph_snapshot`: reads the plan's ``shared_graph`` knob and
    ``runtime`` field (``plan=None`` — the sequential path — always means
    the plain cached snapshot).
    """
    if plan is None:
        return graph.csr()
    return graph_snapshot(
        graph,
        shared_graph=getattr(plan, "shared_graph", False),
        runtime=getattr(plan, "runtime", None),
    )


def interned_payload(plan, key, factory: Callable[[], Any]):
    """Build (or recall) a shared payload through the plan's runtime, if any.

    The one-liner estimator call sites use around their payload
    construction: with no runtime on the plan this is just ``factory()``
    (the cold path allocates per call exactly as before); with a runtime it
    memoizes by *key* so repeated requests hand the persistent pool the
    same object and the snapshot ships to the workers once.
    """
    runtime = getattr(plan, "runtime", None) if plan is not None else None
    if runtime is None:
        return factory()
    return runtime.cached_payload(key, factory)
