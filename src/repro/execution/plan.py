"""The :class:`ExecutionPlan` — the library's three execution knobs in one value.

A plan answers three independent questions for a per-source workload:

* ``backend`` — which traversal kernels run each pass (``"auto"`` /
  ``"dict"`` / ``"csr"``, resolved through
  :func:`~repro.graphs.csr.resolve_backend` at the point of use);
* ``batch_size`` — how many sources each call into the batched CSR kernels
  (:mod:`repro.shortest_paths.batch`) traverses at once;
* ``n_jobs`` — how many worker processes the shard scheduler spreads the
  source shards over.

Resolution mirrors the backend knob: explicit arguments always win, the
``REPRO_JOBS`` and ``REPRO_BATCH`` environment variables fill in anything
left unspecified (one env knob steers every call site, which is how the
benchmark harness runs a whole suite under a given parallelism setting),
and when *neither* an argument nor an env var asks for the execution
engine, :func:`resolve_plan` returns ``None`` and the estimators keep their
original sequential code paths (same loops, same rng discipline, same
accumulation order).

Determinism contract
--------------------
Engaging the engine fixes the floating-point accumulation order once and
for all: per-source results are accumulated sequentially in source order
inside each fixed-size shard (shard boundaries depend only on
:data:`DEFAULT_SHARD_SIZE`, never on ``n_jobs`` or ``batch_size``), and
shard buffers are merged in shard order.  Together with the bit-identical
per-row contract of the batch kernels this makes every estimate
**bit-identical across any** ``n_jobs`` **and** ``batch_size`` for a fixed
seed.  The engine's accumulation order may differ from the legacy
sequential path in the last float ulp (a different association of the same
sums), which is why the legacy path is preserved when no knob is set.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.graphs.csr import BACKENDS

__all__ = ["ExecutionPlan", "resolve_plan", "DEFAULT_SHARD_SIZE"]

#: Number of sources per shard.  A constant (not a knob) on purpose: shard
#: boundaries are part of the determinism contract, so they must not vary
#: with ``n_jobs`` or ``batch_size``.  256 divides evenly by every power-of-
#: two batch size up to 256 and keeps per-shard pickling traffic small.
DEFAULT_SHARD_SIZE = 256


@dataclass(frozen=True)
class ExecutionPlan:
    """How a per-source workload is executed (see the module docstring).

    Attributes
    ----------
    backend:
        Traversal backend name (``"auto"`` / ``"dict"`` / ``"csr"``); kept
        unresolved so each call site resolves it exactly once, next to its
        graph.
    batch_size:
        Sources per batched-kernel call (>= 1; 1 means per-source kernels).
        Ignored by the dict backend, which has no batch kernels.
    n_jobs:
        Worker processes for the shard scheduler (>= 1; 1 means inline).
    """

    backend: str = "auto"
    batch_size: int = 1
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if not isinstance(self.batch_size, int) or self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be a positive integer, got {self.batch_size!r}"
            )
        if not isinstance(self.n_jobs, int) or self.n_jobs < 1:
            raise ConfigurationError(
                f"n_jobs must be a positive integer, got {self.n_jobs!r}"
            )


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be a positive integer, got {raw!r}")
    if value < 1:
        raise ConfigurationError(f"{name} must be a positive integer, got {raw!r}")
    return value


def resolve_plan(
    plan: Optional[ExecutionPlan] = None,
    *,
    backend: str = "auto",
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
) -> Optional[ExecutionPlan]:
    """Resolve the execution knobs of one estimator call.

    Parameters
    ----------
    plan:
        A ready-made :class:`ExecutionPlan`; returned as-is when provided
        (it always wins, like an explicit backend argument).
    backend, batch_size, n_jobs:
        The estimator's individual knobs.  ``None`` for ``batch_size`` /
        ``n_jobs`` means "not requested", in which case the ``REPRO_BATCH``
        / ``REPRO_JOBS`` environment variables are consulted.

    Returns
    -------
    ExecutionPlan or None
        ``None`` when neither an argument nor an env var engages the
        execution engine — the caller should then take its original
        sequential code path, whose behaviour (including float accumulation
        order and rng stream) is preserved exactly.
    """
    if plan is not None:
        return plan
    if batch_size is None:
        batch_size = _env_int("REPRO_BATCH")
    if n_jobs is None:
        n_jobs = _env_int("REPRO_JOBS")
    if batch_size is None and n_jobs is None:
        return None
    return ExecutionPlan(
        backend=backend,
        batch_size=batch_size if batch_size is not None else 1,
        n_jobs=n_jobs if n_jobs is not None else 1,
    )
