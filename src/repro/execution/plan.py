"""The :class:`ExecutionPlan` — the library's three execution knobs in one value.

A plan answers three independent questions for a per-source workload:

* ``backend`` — which traversal kernels run each pass (``"auto"`` /
  ``"dict"`` / ``"csr"``, resolved through
  :func:`~repro.graphs.csr.resolve_backend` at the point of use);
* ``kernel`` — which rung of the CSR kernels runs each pass (``"auto"`` /
  ``"csr"`` / ``"compiled"``, resolved through
  :func:`~repro.graphs.csr.resolve_kernel` at the point of use; the
  compiled rung is bit-identical to the numpy rung, so this knob never
  changes a result);
* ``batch_size`` — how many sources each call into the batched CSR kernels
  (:mod:`repro.shortest_paths.batch`) traverses at once;
* ``n_jobs`` — how many worker processes the shard scheduler spreads the
  source shards over;
* ``shared_cache`` — whether parallel multi-chain MCMC runs publish their
  per-source dependency vectors into a cross-process shared-memory arena
  (:mod:`repro.execution.shared_cache`) instead of each worker keeping a
  private cache.  Consumed by the multi-chain drivers only; per-source
  workloads have nothing to share across processes beyond their inputs.

Resolution mirrors the backend knob: explicit arguments always win, the
``REPRO_JOBS`` and ``REPRO_BATCH`` environment variables fill in anything
left unspecified (``REPRO_SHARED_CACHE`` likewise fills the
``shared_cache`` field — but never *engages* the engine on its own, so the
flag cannot move an estimator off its legacy path; see
:func:`resolve_shared_cache`) (one env knob steers every call site, which is how the
benchmark harness runs a whole suite under a given parallelism setting),
and when *neither* an argument nor an env var asks for the execution
engine, :func:`resolve_plan` returns ``None`` and the estimators keep their
original sequential code paths (same loops, same rng discipline, same
accumulation order).

Determinism contract
--------------------
Engaging the engine fixes the floating-point accumulation order once and
for all: per-source results are accumulated sequentially in source order
inside each fixed-size shard (shard boundaries depend only on
:data:`DEFAULT_SHARD_SIZE`, never on ``n_jobs`` or ``batch_size``), and
shard buffers are merged in shard order.  Together with the bit-identical
per-row contract of the batch kernels this makes every estimate
**bit-identical across any** ``n_jobs`` **and** ``batch_size`` for a fixed
seed.  The engine's accumulation order may differ from the legacy
sequential path in the last float ulp (a different association of the same
sums), which is why the legacy path is preserved when no knob is set.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.graphs.csr import BACKENDS, KERNELS

__all__ = [
    "ExecutionPlan",
    "resolve_plan",
    "resolve_shared_cache",
    "resolve_shared_graph",
    "resolve_mp_context",
    "resolve_kernel_threads",
    "DEFAULT_SHARD_SIZE",
]

#: Number of sources per shard.  A constant (not a knob) on purpose: shard
#: boundaries are part of the determinism contract, so they must not vary
#: with ``n_jobs`` or ``batch_size``.  256 divides evenly by every power-of-
#: two batch size up to 256 and keeps per-shard pickling traffic small.
DEFAULT_SHARD_SIZE = 256


@dataclass(frozen=True)
class ExecutionPlan:
    """How a per-source workload is executed (see the module docstring).

    Attributes
    ----------
    backend:
        Traversal backend name (``"auto"`` / ``"dict"`` / ``"csr"``); kept
        unresolved so each call site resolves it exactly once, next to its
        graph.
    batch_size:
        Sources per batched-kernel call (>= 1; 1 means per-source kernels).
        Ignored by the dict backend, which has no batch kernels.
    n_jobs:
        Worker processes for the shard scheduler (>= 1; 1 means inline).
    shared_cache:
        Whether the multi-chain MCMC drivers share one cross-process
        dependency-vector arena across their workers (CSR-only; ignored by
        every other workload).  Never changes a result — only which process
        pays each Brandes pass.
    shared_graph:
        Whether CSR snapshots travel to workers as zero-copy shared-memory
        handles (:class:`~repro.graphs.shared.SharedCSRGraph`) instead of
        being pickled — O(1) per-worker ship cost and memory instead of
        O(m).  CSR-only (the dict backend has no flat arrays to share) and
        warn-and-fallback where shared memory is unsupported.  Never changes
        a result: the attached arrays are byte-equal to the pickled ones.
    mp_context:
        Multiprocessing start method for the scheduler's pools (``"fork"`` /
        ``"spawn"`` / ``"forkserver"``; ``None`` keeps the interpreter
        default).  :mod:`repro.execution.shared_cache` already accepted a
        context knob, so exposing the same knob here lets spawn deployments
        configure the pool and the shared arena consistently.  Never changes
        a result — the scheduler's determinism contract is start-method
        independent.
    runtime:
        Optional :class:`~repro.execution.runtime.ExecutionContext` the
        scheduler routes its pool work through — a *persistent* worker pool
        plus warm payload/arena state reused across calls instead of a
        per-call pool.  Never changes a result; like ``shared_cache`` it
        only moves where (and how often) work is paid for.  The context
        deliberately pickles to ``None`` so a plan or sampler captured
        inside a worker payload can never smuggle pool handles across
        process boundaries.
    kernel:
        CSR kernel rung (``"auto"`` / ``"csr"`` / ``"compiled"``); kept
        unresolved so each call site resolves it exactly once
        (:func:`~repro.graphs.csr.resolve_kernel` — ``"auto"`` honours the
        ``REPRO_KERNEL`` env override, then picks the compiled rung when
        numba imports).  The compiled twins replay the numpy rung's exact
        float summation order, so the knob never changes a result — only
        how fast each pass runs.  Ignored by the dict backend.
    kernel_threads:
        Threads for the ``prange`` variants of the compiled batch kernels
        (>= 1; 1 keeps the sequential kernels).  Consumed only where a
        compiled batched wave actually runs — every other path ignores it
        — and result-neutral by construction: threads stride independent
        per-source rows, so no row's float summation order can change.
        Composes with ``n_jobs``: each worker process runs its kernels on
        this many threads, so keep ``n_jobs × kernel_threads`` within the
        machine (``"auto"`` calibration in :mod:`repro.execution.autotune`
        enforces exactly that).
    """

    backend: str = "auto"
    batch_size: int = 1
    n_jobs: int = 1
    shared_cache: bool = False
    shared_graph: bool = False
    mp_context: Optional[str] = None
    runtime: Optional[object] = None
    kernel: str = "auto"
    kernel_threads: int = 1

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; expected one of {KERNELS}"
            )
        if not isinstance(self.batch_size, int) or self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be a positive integer, got {self.batch_size!r}"
            )
        if not isinstance(self.n_jobs, int) or self.n_jobs < 1:
            raise ConfigurationError(
                f"n_jobs must be a positive integer, got {self.n_jobs!r}"
            )
        if not isinstance(self.kernel_threads, int) or self.kernel_threads < 1:
            raise ConfigurationError(
                f"kernel_threads must be a positive integer, got {self.kernel_threads!r}"
            )
        if not isinstance(self.shared_cache, bool):
            raise ConfigurationError(
                f"shared_cache must be a boolean, got {self.shared_cache!r}"
            )
        if not isinstance(self.shared_graph, bool):
            raise ConfigurationError(
                f"shared_graph must be a boolean, got {self.shared_graph!r}"
            )
        if self.mp_context is not None:
            _validate_mp_context(self.mp_context)


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be a positive integer, got {raw!r}")
    if value < 1:
        raise ConfigurationError(f"{name} must be a positive integer, got {raw!r}")
    return value


def _env_flag(name: str) -> Optional[bool]:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ConfigurationError(f"{name} must be a boolean flag (0/1), got {raw!r}")


def _validate_mp_context(value: str) -> str:
    methods = multiprocessing.get_all_start_methods()
    if value not in methods:
        raise ConfigurationError(
            f"unknown multiprocessing start method {value!r}; expected one of "
            f"{methods}"
        )
    return value


def resolve_plan(
    plan: Optional[ExecutionPlan] = None,
    *,
    backend: str = "auto",
    batch_size: Optional[int] = None,
    n_jobs: Optional[int] = None,
    shared_cache: Optional[bool] = None,
    shared_graph: Optional[bool] = None,
    mp_context: Optional[str] = None,
    runtime: Optional[object] = None,
    kernel: str = "auto",
    kernel_threads: Optional[int] = None,
) -> Optional[ExecutionPlan]:
    """Resolve the execution knobs of one estimator call.

    Parameters
    ----------
    plan:
        A ready-made :class:`ExecutionPlan`; returned as-is when provided
        (it always wins, like an explicit backend argument).
    backend, batch_size, n_jobs, shared_cache:
        The estimator's individual knobs.  ``None`` for ``batch_size`` /
        ``n_jobs`` / ``shared_cache`` means "not requested", in which case
        the ``REPRO_BATCH`` / ``REPRO_JOBS`` / ``REPRO_SHARED_CACHE``
        environment variables are consulted.
    kernel:
        CSR kernel rung, carried into the plan like ``backend``: left
        unresolved here (``REPRO_KERNEL`` is honoured by
        :func:`~repro.graphs.csr.resolve_kernel` at each point of use) and
        — like ``shared_cache`` — never engages the engine by itself, since
        the rungs are bit-identical and the legacy sequential paths resolve
        the same knob on their own.
    kernel_threads:
        Compiled-kernel thread count; ``None`` consults
        ``REPRO_KERNEL_THREADS`` (:func:`resolve_kernel_threads`).  Like
        ``kernel`` it never engages the engine by itself — it is
        result-neutral, so it only fills the field of a plan the other
        knobs engaged.

    Returns
    -------
    ExecutionPlan or None
        ``None`` when neither an argument nor an env var engages the
        execution engine — the caller should then take its original
        sequential code path, whose behaviour (including float accumulation
        order and rng stream) is preserved exactly.
    """
    if plan is not None:
        return plan
    if batch_size is None:
        batch_size = _env_int("REPRO_BATCH")
    if n_jobs is None:
        n_jobs = _env_int("REPRO_JOBS")
    # shared_cache / shared_graph / mp_context / runtime / kernel_threads
    # deliberately do NOT engage the engine: an engaged plan switches
    # estimators onto the sharded/prefetch disciplines (different rng
    # consumption, different — though equally valid — estimates), and all
    # five knobs are documented to never change a result.  They only fill
    # the fields of a plan the other knobs engaged; standalone consumers
    # (the multi-chain drivers) read them through resolve_shared_cache() /
    # resolve_shared_graph() / resolve_mp_context() /
    # resolve_kernel_threads().
    if batch_size is None and n_jobs is None:
        return None
    return ExecutionPlan(
        backend=backend,
        batch_size=batch_size if batch_size is not None else 1,
        n_jobs=n_jobs if n_jobs is not None else 1,
        shared_cache=resolve_shared_cache(shared_cache),
        shared_graph=resolve_shared_graph(shared_graph),
        mp_context=resolve_mp_context(mp_context),
        runtime=runtime,
        kernel=kernel,
        kernel_threads=resolve_kernel_threads(kernel_threads),
    )


def resolve_shared_cache(shared_cache: Optional[bool] = None) -> bool:
    """Resolve the ``shared_cache`` knob on its own.

    Explicit ``True`` / ``False`` wins; ``None`` consults the
    ``REPRO_SHARED_CACHE`` environment override (unset means off).  Kept
    separate from :func:`resolve_plan` engagement so the flag can never
    flip an estimator off its legacy sequential code path — it selects a
    cache-sharing policy for runs that already parallelise, not an
    execution discipline.
    """
    if shared_cache is not None:
        return shared_cache
    return bool(_env_flag("REPRO_SHARED_CACHE"))


def resolve_shared_graph(shared_graph: Optional[bool] = None) -> bool:
    """Resolve the ``shared_graph`` knob on its own.

    Explicit ``True`` / ``False`` wins; ``None`` consults the
    ``REPRO_SHARED_GRAPH`` environment override (unset means off).  Like
    ``shared_cache`` this never engages the execution engine by itself: it
    selects how CSR snapshots travel to workers that already exist, never
    whether an estimator parallelises — so the flag can never move an
    estimator off its legacy sequential code path.
    """
    if shared_graph is not None:
        return shared_graph
    return bool(_env_flag("REPRO_SHARED_GRAPH"))


def resolve_kernel_threads(kernel_threads: Optional[int] = None) -> int:
    """Resolve the compiled-kernel thread-count knob on its own.

    An explicit positive integer wins; ``None`` consults the
    ``REPRO_KERNEL_THREADS`` environment override (unset means 1 —
    today's sequential kernels).  Like ``shared_cache`` this never
    engages the execution engine by itself: the knob is result-neutral
    (threads stride independent per-source rows of the compiled batch
    kernels), so it only selects how fast batches already running on the
    compiled rung finish.  ``"auto"`` calibration lives at the API/CLI
    boundary (:func:`repro.execution.autotune.calibrate_kernel_threads`),
    not here — resolution must stay cheap and deterministic.
    """
    if kernel_threads is None:
        resolved = _env_int("REPRO_KERNEL_THREADS")
        return 1 if resolved is None else resolved
    if not isinstance(kernel_threads, int) or kernel_threads < 1:
        raise ConfigurationError(
            f"kernel_threads must be a positive integer, got {kernel_threads!r}"
        )
    return kernel_threads


def resolve_mp_context(mp_context: Optional[str] = None) -> Optional[str]:
    """Resolve the multiprocessing start-method knob on its own.

    An explicit name wins; ``None`` consults the ``REPRO_MP_CONTEXT``
    environment override (unset means the interpreter default).  Like
    ``shared_cache`` this never engages the execution engine by itself —
    it configures *how* pools that already exist are started, which is why
    the scheduler and :func:`~repro.execution.shared_cache.create_shared_store`
    both accept the resolved value (spawn deployments must configure the
    two consistently: a fork-context lock cannot enter a spawn-context
    process).
    """
    if mp_context is None:
        mp_context = os.environ.get("REPRO_MP_CONTEXT") or None
    if mp_context is None:
        return None
    return _validate_mp_context(mp_context)
