"""Adaptive batch-size selection: calibrate the batched-kernel block size.

The best ``batch_size`` for :func:`repro.shortest_paths.batch.
batch_source_dependencies` depends on the graph (frontier width, whether the
scipy sparse-matmul sweep engages) and on the machine — the fixed 8/64
defaults the benchmarks used historically leave real speedup on the table.
This module replaces the guess with a short timed probe: run a handful of
real batched sweeps at each candidate size and keep the fastest.

Timing is inherently nondeterministic, but the choice it produces cannot
leak into results: the batch kernels are bit-identical per source row for
*any* batch composition (the execution engine's determinism contract), so
the calibrated size changes wall-clock only, never an estimate.  The probe
itself costs ``repeats × len(candidates) × probe_sources`` Brandes passes —
size it against the workload it is meant to speed up.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.graphs.core import Graph
from repro.graphs.csr import resolve_backend

__all__ = ["DEFAULT_BATCH_CANDIDATES", "probe_batch_sizes", "calibrate_batch_size"]

#: Candidate block sizes the probe sweeps (1 = the per-source kernels).
DEFAULT_BATCH_CANDIDATES = (1, 8, 16, 32, 64)


def _csr_of(graph):
    """Accept either a mutable :class:`Graph` or a ready CSR snapshot."""
    if isinstance(graph, Graph):
        return graph.csr()
    return graph


def probe_batch_sizes(
    graph,
    *,
    backend: str = "auto",
    candidates: Sequence[int] = DEFAULT_BATCH_CANDIDATES,
    probe_sources: int = 32,
    repeats: int = 1,
) -> List[Tuple[int, float]]:
    """Time one batched dependency sweep per candidate; return ``[(size, seconds)]``.

    The probe runs ``probe_sources`` real Brandes passes per candidate (the
    best of *repeats* timings is kept) after one untimed warm-up sweep, so
    first-touch costs — the CSR snapshot, the cached scipy adjacency — are
    not billed to whichever candidate happens to run first.  Candidates
    larger than the source budget are dropped rather than timed: a batch
    that cannot be filled runs the exact same kernel call as the budget-
    sized one, so its timing would be pure noise and could crown a block
    size the probe never actually measured.  (If every candidate exceeds
    the budget, the smallest is kept as the only honest option.)  On the
    dict backend, which has no batch kernels, the probe is skipped and
    ``[(1, 0.0)]`` returned.
    """
    if not candidates:
        raise ConfigurationError("candidates must be a non-empty sequence")
    for candidate in candidates:
        if not isinstance(candidate, int) or isinstance(candidate, bool) or candidate < 1:
            raise ConfigurationError(
                f"batch-size candidates must be positive integers, got {candidate!r}"
            )
    if probe_sources < 1:
        raise ConfigurationError("probe_sources must be a positive integer")
    if repeats < 1:
        raise ConfigurationError("repeats must be a positive integer")
    if resolve_backend(backend) != "csr":
        return [(1, 0.0)]
    from repro.shortest_paths.batch import batch_source_dependencies

    csr = _csr_of(graph)
    sources = list(range(min(probe_sources, csr.number_of_vertices())))
    if not sources:
        return [(1, 0.0)]
    eligible = [c for c in candidates if c <= len(sources)]
    if not eligible:
        eligible = [min(candidates)]

    def sweep(batch: int) -> None:
        for begin in range(0, len(sources), batch):
            batch_source_dependencies(csr, sources[begin : begin + batch])

    sweep(eligible[0])  # warm-up, untimed
    timings: List[Tuple[int, float]] = []
    for batch in eligible:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            sweep(batch)
            best = min(best, time.perf_counter() - start)
        timings.append((batch, best))
    return timings


def calibrate_batch_size(
    graph,
    *,
    backend: str = "auto",
    candidates: Sequence[int] = DEFAULT_BATCH_CANDIDATES,
    probe_sources: int = 32,
    repeats: int = 1,
) -> int:
    """Return the candidate batch size whose probe sweep ran fastest.

    Ties go to the smaller size (less peak memory for the same speed).  This
    is what ``batch_size="auto"`` resolves to at the API and CLI layers.
    """
    timings = probe_batch_sizes(
        graph,
        backend=backend,
        candidates=candidates,
        probe_sources=probe_sources,
        repeats=repeats,
    )
    best_size, best_seconds = timings[0]
    for size, seconds in timings[1:]:
        if seconds < best_seconds or (seconds == best_seconds and size < best_size):
            best_size, best_seconds = size, seconds
    return best_size
