"""Adaptive execution tuning: timed probes for batch size and worker count.

The best ``batch_size`` for :func:`repro.shortest_paths.batch.
batch_source_dependencies` depends on the graph (frontier width, whether the
scipy sparse-matmul sweep engages) and on the machine — the fixed 8/64
defaults the benchmarks used historically leave real speedup on the table.
The same goes for ``n_jobs``: pool spin-up and per-shard pickling make extra
workers a net loss on small workloads, and the break-even point is a machine
property no constant can capture.  This module replaces both guesses with
short timed probes: run a handful of real sweeps at each candidate setting
and keep the fastest.

Timing is inherently nondeterministic, but the choice it produces cannot
leak into results: the batch kernels are bit-identical per source row for
*any* batch composition, and the shard scheduler merges per-shard buffers
in shard order with shard boundaries fixed by
:data:`~repro.execution.plan.DEFAULT_SHARD_SIZE` (the execution engine's
determinism contract) — so a calibrated batch size or worker count changes
wall-clock only, never an estimate.  :func:`probe_shard_sizes` exists for
the remaining dimension, but *only* as a diagnostic: the shard size is part
of the determinism contract itself (it fixes both the reduction association
and the per-shard rng streams), so it is a constant, never a knob, and no
``calibrate_shard_size`` is offered.  Each probe costs real Brandes passes —
size it against the workload it is meant to speed up.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.graphs.core import Graph
from repro.graphs.csr import resolve_backend

__all__ = [
    "DEFAULT_BATCH_CANDIDATES",
    "probe_batch_sizes",
    "calibrate_batch_size",
    "default_jobs_candidates",
    "probe_n_jobs",
    "calibrate_n_jobs",
    "default_threads_candidates",
    "probe_kernel_threads",
    "calibrate_kernel_threads",
    "probe_shard_sizes",
]

#: Candidate block sizes the probe sweeps (1 = the per-source kernels).
DEFAULT_BATCH_CANDIDATES = (1, 8, 16, 32, 64)


def _csr_of(graph):
    """Accept either a mutable :class:`Graph` or a ready CSR snapshot."""
    if isinstance(graph, Graph):
        return graph.csr()
    return graph


def probe_batch_sizes(
    graph,
    *,
    backend: str = "auto",
    candidates: Sequence[int] = DEFAULT_BATCH_CANDIDATES,
    probe_sources: int = 32,
    repeats: int = 1,
) -> List[Tuple[int, float]]:
    """Time one batched dependency sweep per candidate; return ``[(size, seconds)]``.

    The probe runs ``probe_sources`` real Brandes passes per candidate (the
    best of *repeats* timings is kept) after one untimed warm-up sweep, so
    first-touch costs — the CSR snapshot, the cached scipy adjacency — are
    not billed to whichever candidate happens to run first.  Candidates
    larger than the source budget are dropped rather than timed: a batch
    that cannot be filled runs the exact same kernel call as the budget-
    sized one, so its timing would be pure noise and could crown a block
    size the probe never actually measured.  (If every candidate exceeds
    the budget, the smallest is kept as the only honest option.)  On the
    dict backend, which has no batch kernels, the probe is skipped and
    ``[(1, 0.0)]`` returned.
    """
    if not candidates:
        raise ConfigurationError("candidates must be a non-empty sequence")
    for candidate in candidates:
        if not isinstance(candidate, int) or isinstance(candidate, bool) or candidate < 1:
            raise ConfigurationError(
                f"batch-size candidates must be positive integers, got {candidate!r}"
            )
    if probe_sources < 1:
        raise ConfigurationError("probe_sources must be a positive integer")
    if repeats < 1:
        raise ConfigurationError("repeats must be a positive integer")
    if resolve_backend(backend) != "csr":
        return [(1, 0.0)]
    from repro.shortest_paths.batch import batch_source_dependencies

    csr = _csr_of(graph)
    sources = list(range(min(probe_sources, csr.number_of_vertices())))
    if not sources:
        return [(1, 0.0)]
    eligible = [c for c in candidates if c <= len(sources)]
    if not eligible:
        eligible = [min(candidates)]

    def sweep(batch: int) -> None:
        for begin in range(0, len(sources), batch):
            batch_source_dependencies(csr, sources[begin : begin + batch])

    sweep(eligible[0])  # warm-up, untimed
    timings: List[Tuple[int, float]] = []
    for batch in eligible:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            sweep(batch)
            best = min(best, time.perf_counter() - start)
        timings.append((batch, best))
    return timings


def calibrate_batch_size(
    graph,
    *,
    backend: str = "auto",
    candidates: Sequence[int] = DEFAULT_BATCH_CANDIDATES,
    probe_sources: int = 32,
    repeats: int = 1,
) -> int:
    """Return the candidate batch size whose probe sweep ran fastest.

    Ties go to the smaller size (less peak memory for the same speed).  This
    is what ``batch_size="auto"`` resolves to at the API and CLI layers.
    """
    timings = probe_batch_sizes(
        graph,
        backend=backend,
        candidates=candidates,
        probe_sources=probe_sources,
        repeats=repeats,
    )
    best_size, best_seconds = timings[0]
    for size, seconds in timings[1:]:
        if seconds < best_seconds or (seconds == best_seconds and size < best_size):
            best_size, best_seconds = size, seconds
    return best_size


def default_jobs_candidates() -> Tuple[int, ...]:
    """Return the worker counts the n_jobs probe sweeps on this machine.

    Powers of two from 1 up to the CPU count (the count itself is appended
    when it is not a power of two): ``(1, 2, 4, 6)`` on a 6-core box,
    ``(1,)`` on a single core.  Small by design — each candidate costs a
    real pool spin-up to time honestly.
    """
    try:
        cores = multiprocessing.cpu_count()
    except NotImplementedError:  # pragma: no cover - exotic platforms
        cores = 1
    candidates = []
    jobs = 1
    while jobs <= cores:
        candidates.append(jobs)
        jobs *= 2
    if candidates[-1] != cores:
        candidates.append(cores)
    return tuple(candidates)


def probe_n_jobs(
    graph,
    *,
    backend: str = "auto",
    candidates: Sequence[int] = (),
    probe_sources: int = 64,
    repeats: int = 1,
    batch_size: int = 1,
) -> List[Tuple[int, float]]:
    """Time one sharded dependency sweep per worker count; return ``[(n_jobs, seconds)]``.

    Each candidate runs the real sharded pipeline —
    :func:`~repro.execution.scheduler.run_sharded` over
    :func:`~repro.shortest_paths.dependencies.dependency_sum_shard_csr` —
    including pool spin-up, so the timings reflect exactly the cost an
    engaged plan would pay (spin-up is how parallelism loses on small
    workloads, so it must be billed).  The scheduler's determinism contract
    makes every candidate produce the same buffer bit-for-bit; only
    wall-clock differs, so the calibrated count can never change an
    estimate.  On the dict backend or a single-core machine the probe is
    skipped and ``[(1, 0.0)]`` returned.
    """
    if probe_sources < 1:
        raise ConfigurationError("probe_sources must be a positive integer")
    if repeats < 1:
        raise ConfigurationError("repeats must be a positive integer")
    if not isinstance(batch_size, int) or isinstance(batch_size, bool) or batch_size < 1:
        raise ConfigurationError(
            f"batch_size must be a positive integer, got {batch_size!r}"
        )
    if not candidates:
        candidates = default_jobs_candidates()
    for candidate in candidates:
        if not isinstance(candidate, int) or isinstance(candidate, bool) or candidate < 1:
            raise ConfigurationError(
                f"n_jobs candidates must be positive integers, got {candidate!r}"
            )
    if resolve_backend(backend) != "csr":
        return [(1, 0.0)]
    if max(candidates) == 1:
        return [(1, 0.0)]
    from repro.execution.scheduler import run_sharded, split_shards
    from repro.shortest_paths.dependencies import dependency_sum_shard_csr

    csr = _csr_of(graph)
    sources = list(range(min(probe_sources, csr.number_of_vertices())))
    if not sources:
        return [(1, 0.0)]
    shards = split_shards(sources)
    shared = (csr, batch_size)

    def sweep(jobs: int) -> None:
        run_sharded(dependency_sum_shard_csr, shards, n_jobs=jobs, shared=shared)

    sweep(1)  # warm-up, untimed (snapshot + cached adjacency first touch)
    timings: List[Tuple[int, float]] = []
    for jobs in candidates:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            sweep(jobs)
            best = min(best, time.perf_counter() - start)
        timings.append((jobs, best))
    return timings


def calibrate_n_jobs(
    graph,
    *,
    backend: str = "auto",
    candidates: Sequence[int] = (),
    probe_sources: int = 64,
    repeats: int = 1,
    batch_size: int = 1,
) -> int:
    """Return the candidate worker count whose probe sweep ran fastest.

    Ties go to the smaller count (fewer idle processes for the same speed).
    This is what ``n_jobs="auto"`` resolves to at the API and CLI layers —
    and the resolved count **always engages** the execution engine (it is a
    concrete integer, never ``None``), because only the engine's sharded
    discipline guarantees n_jobs-invariant results; auto-tuning the legacy
    sequential path against the engine would let a timing pick between two
    differently-ordered accumulations.
    """
    timings = probe_n_jobs(
        graph,
        backend=backend,
        candidates=candidates,
        probe_sources=probe_sources,
        repeats=repeats,
        batch_size=batch_size,
    )
    best_jobs, best_seconds = timings[0]
    for jobs, seconds in timings[1:]:
        if seconds < best_seconds or (seconds == best_seconds and jobs < best_jobs):
            best_jobs, best_seconds = jobs, seconds
    return best_jobs


def default_threads_candidates(n_jobs: int = 1) -> Tuple[int, ...]:
    """Return the kernel-thread counts the threads probe sweeps on this machine.

    Powers of two from 1 up to ``cpu_count // n_jobs`` — the thread budget
    composes with worker processes (each of the ``n_jobs`` workers runs its
    own prange team), so candidates are capped where ``threads × n_jobs``
    would oversubscribe the machine.  Always contains at least ``(1,)``.
    """
    if not isinstance(n_jobs, int) or isinstance(n_jobs, bool) or n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be a positive integer, got {n_jobs!r}"
        )
    try:
        cores = multiprocessing.cpu_count()
    except NotImplementedError:  # pragma: no cover - exotic platforms
        cores = 1
    budget = max(1, cores // n_jobs)
    candidates = []
    threads = 1
    while threads <= budget:
        candidates.append(threads)
        threads *= 2
    return tuple(candidates)


def probe_kernel_threads(
    graph,
    *,
    backend: str = "auto",
    kernel: str = "auto",
    candidates: Sequence[int] = (),
    probe_sources: int = 32,
    repeats: int = 1,
    batch_size: int = 32,
    n_jobs: int = 1,
) -> List[Tuple[int, float]]:
    """Time one batched dependency sweep per thread count; return ``[(threads, seconds)]``.

    Kernel threads only engage inside the numba ``prange`` batch kernels,
    so the probe is skipped — ``[(1, 0.0)]`` — whenever they could not run:
    dict backend, numpy kernel rung, or numba not importable (where the
    knob is accepted but inert).  Otherwise each candidate times the real
    compiled batched sweep; the per-source rows are computed independently
    and accumulated in source order regardless of the thread count, so the
    timed choice can never change an estimate — the same contract as the
    batch-size and n_jobs probes.  *n_jobs* is the worker-process count the
    caller intends to combine the threads with: the default candidate list
    is capped so ``threads × n_jobs`` never exceeds the CPU count.
    """
    if probe_sources < 1:
        raise ConfigurationError("probe_sources must be a positive integer")
    if repeats < 1:
        raise ConfigurationError("repeats must be a positive integer")
    if not isinstance(batch_size, int) or isinstance(batch_size, bool) or batch_size < 1:
        raise ConfigurationError(
            f"batch_size must be a positive integer, got {batch_size!r}"
        )
    if not candidates:
        candidates = default_threads_candidates(n_jobs)
    for candidate in candidates:
        if not isinstance(candidate, int) or isinstance(candidate, bool) or candidate < 1:
            raise ConfigurationError(
                f"kernel-thread candidates must be positive integers, got {candidate!r}"
            )
    if resolve_backend(backend) != "csr":
        return [(1, 0.0)]
    from repro.execution.stamp import resolve_kernel_quiet
    from repro.graphs.csr import compiled_kernels_available

    if resolve_kernel_quiet(kernel) != "compiled" or not compiled_kernels_available():
        return [(1, 0.0)]
    if max(candidates) == 1:
        return [(1, 0.0)]
    from repro.shortest_paths.batch import batch_source_dependencies

    csr = _csr_of(graph)
    sources = list(range(min(probe_sources, csr.number_of_vertices())))
    if not sources:
        return [(1, 0.0)]

    def sweep(threads: int) -> None:
        for begin in range(0, len(sources), batch_size):
            batch_source_dependencies(
                csr,
                sources[begin : begin + batch_size],
                kernel="compiled",
                kernel_threads=threads,
            )

    sweep(candidates[0])  # warm-up, untimed (jit compilation + snapshot touch)
    timings: List[Tuple[int, float]] = []
    for threads in candidates:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            sweep(threads)
            best = min(best, time.perf_counter() - start)
        timings.append((threads, best))
    return timings


def calibrate_kernel_threads(
    graph,
    *,
    backend: str = "auto",
    kernel: str = "auto",
    candidates: Sequence[int] = (),
    probe_sources: int = 32,
    repeats: int = 1,
    batch_size: int = 32,
    n_jobs: int = 1,
) -> int:
    """Return the candidate thread count whose probe sweep ran fastest.

    Ties go to the smaller count (fewer idle threads for the same speed).
    This is what ``kernel_threads="auto"`` resolves to at the API and CLI
    layers; without numba (or on the numpy rung) it resolves to 1 without
    probing, since the knob could not engage anything.
    """
    timings = probe_kernel_threads(
        graph,
        backend=backend,
        kernel=kernel,
        candidates=candidates,
        probe_sources=probe_sources,
        repeats=repeats,
        batch_size=batch_size,
        n_jobs=n_jobs,
    )
    best_threads, best_seconds = timings[0]
    for threads, seconds in timings[1:]:
        if seconds < best_seconds or (seconds == best_seconds and threads < best_threads):
            best_threads, best_seconds = threads, seconds
    return best_threads


def probe_shard_sizes(
    graph,
    *,
    backend: str = "auto",
    candidates: Sequence[int] = (64, 128, 256, 512),
    n_jobs: int = 1,
    probe_sources: int = 64,
    repeats: int = 1,
) -> List[Tuple[int, float]]:
    """Time a sharded sweep per shard size — **diagnostic only, never a knob**.

    Unlike batch size and worker count, the shard size is *part of* the
    determinism contract (:data:`~repro.execution.plan.DEFAULT_SHARD_SIZE`):
    it fixes where per-shard buffers begin and end, hence the association
    order of the final merge and the per-shard rng streams of the stochastic
    samplers.  Changing it changes results in the last float ulp, so there
    is deliberately no ``calibrate_shard_size`` and no ``shard_size="auto"``
    — this probe exists so maintainers can check, on a given machine, how
    far the constant sits from the optimum before proposing a (contract-
    breaking, major-version) change.
    """
    if probe_sources < 1:
        raise ConfigurationError("probe_sources must be a positive integer")
    if repeats < 1:
        raise ConfigurationError("repeats must be a positive integer")
    if not candidates:
        raise ConfigurationError("candidates must be a non-empty sequence")
    for candidate in candidates:
        if not isinstance(candidate, int) or isinstance(candidate, bool) or candidate < 1:
            raise ConfigurationError(
                f"shard-size candidates must be positive integers, got {candidate!r}"
            )
    if resolve_backend(backend) != "csr":
        return [(min(candidates), 0.0)]
    from repro.execution.scheduler import run_sharded, split_shards
    from repro.shortest_paths.dependencies import dependency_sum_shard_csr

    csr = _csr_of(graph)
    sources = list(range(min(probe_sources, csr.number_of_vertices())))
    if not sources:
        return [(min(candidates), 0.0)]
    shared = (csr, 1)

    def sweep(shard_size: int) -> None:
        shards = split_shards(sources, shard_size=shard_size)
        run_sharded(dependency_sum_shard_csr, shards, n_jobs=n_jobs, shared=shared)

    sweep(candidates[0])  # warm-up, untimed
    timings: List[Tuple[int, float]] = []
    for shard_size in candidates:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            sweep(shard_size)
            best = min(best, time.perf_counter() - start)
        timings.append((shard_size, best))
    return timings
