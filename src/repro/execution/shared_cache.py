"""Cross-process shared dependency-vector cache for multi-chain MCMC runs.

The multi-chain drivers of :mod:`repro.mcmc.multichain` spread K chains over
worker processes, and every worker keeps a *private*
:class:`~repro.mcmc.estimates.DependencyOracle` cache.  On few-core machines
that duplication is the dominant residual cost: the chains propose sources
from the same distribution, so each worker ends up re-running Brandes passes
another worker already paid for (up to K copies of every popular source).

:class:`SharedDependencyStore` removes the duplication.  It is a
fixed-capacity, cross-process, *fill-once* cache of per-source dependency
vectors, backed by one :mod:`multiprocessing.shared_memory` segment:

* a pre-sized ``(capacity, n)`` ``float64`` **arena** holding the cached
  vectors, one CSR source per claimed row;
* a **claim table** — an ``int64`` array of length ``n`` mapping a source's
  CSR index to its arena row (``-1`` = not cached) plus a next-free-row
  counter;
* a process-shared :class:`multiprocessing.Lock` guarding both.

A vector computed by *any* worker is published once (:meth:`put`) and read
by every chain (:meth:`get`), whatever process it runs in.  Rows are
write-once: when the arena fills, :meth:`put` refuses and the caller simply
keeps the vector in its private per-process cache — the store degrades to
"whatever fits", it never churns.  Delta-scoped invalidation tombstones
rows (:meth:`invalidate_sources`), whose spent capacity :meth:`compact`
reclaims once eviction has consumed enough of the arena.

Determinism
-----------
Sharing the cache can never change a chain.  The dependency kernels are
bit-identical per source (the PR 2 batch-composition contract), so the row a
worker reads from the arena equals — bit for bit — the vector it would have
computed itself; only the *number* of Brandes passes (a work counter, not a
result) depends on who computed what first.  Races are benign for the same
reason: two workers that miss the same source concurrently both compute the
identical vector and the second :meth:`put` is a no-op.

Process plumbing
----------------
The store must travel to pool workers through the **initializer** path of
:func:`repro.execution.scheduler.run_sharded` (the ``shared`` payload): the
process-shared lock can be inherited or pickled only while a worker process
is being set up, not through a task queue.  Under the default ``fork`` start
method the object is inherited as-is; under ``spawn`` it pickles down to
``(segment name, shape, lock)`` and re-attaches lazily in the worker
(:meth:`__getstate__` / :meth:`__setstate__`).

Use :func:`create_shared_store` rather than the constructor when a private
cache is an acceptable fallback: it returns ``None`` with a warning when the
platform cannot provide shared memory (no ``/dev/shm``, sandboxed
containers, numpy missing) instead of raising.
"""

from __future__ import annotations

import multiprocessing
import warnings
from typing import Optional

from repro.errors import ConfigurationError
from repro.graphs.csr import np

try:  # pragma: no cover - exercised implicitly on unsupported platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

__all__ = [
    "SharedDependencyStore",
    "create_shared_store",
    "shared_memory_available",
]

#: int64 header slots preceding the claim table: the next-free-row counter
#: and the tombstoned-row counter (rows evicted by delta-scoped
#: invalidation; their arena space is spent but they no longer serve reads).
_HEADER_SLOTS = 2

#: Memoized result of the :func:`shared_memory_available` allocation probe.
#: The probe allocates, closes and unlinks a real shm segment — three
#: syscalls plus a resource-tracker round-trip — and its answer cannot
#: change within a process lifetime, so paying it once per process (instead
#: of once per store creation) is free accuracy.
_PROBE_RESULT: Optional[bool] = None


def shared_memory_available(*, refresh: bool = False) -> bool:
    """Return whether this platform can allocate shared-memory segments.

    Probes with a minimal allocation: the module importing is not enough —
    sandboxed containers routinely expose :mod:`multiprocessing.shared_memory`
    while refusing the underlying ``shm_open``.  The probe result is
    memoized at module level (pass ``refresh=True`` to force a re-probe);
    the cheap numpy/module preconditions are re-checked on every call so a
    monkeypatched test environment is still honoured.
    """
    global _PROBE_RESULT
    if np is None or _shared_memory is None:
        return False
    if _PROBE_RESULT is None or refresh:
        _PROBE_RESULT = _probe_shared_memory()
    return _PROBE_RESULT


def _probe_shared_memory() -> bool:
    try:
        probe = _shared_memory.SharedMemory(create=True, size=8)
    except (OSError, PermissionError):  # pragma: no cover - platform dependent
        return False
    probe.close()
    try:  # pragma: no cover - platform dependent
        probe.unlink()
    except (OSError, FileNotFoundError):
        pass
    return True


def _attach(name: str):
    """Attach to an existing segment without re-registering it for cleanup.

    Python 3.13 grew ``track=False`` for exactly this: an attaching process
    must not hand the segment to its own resource tracker, whose exit-time
    leak sweep would unlink the segment behind the creator's back.  On older
    interpreters the attach is wrapped with the standard workaround —
    registration suppressed for the duration of the call — so spawned
    workers are safe there too (the creator remains the sole owner of the
    unlink).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        try:
            resource_tracker.register = lambda *args, **kwargs: None
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


class SharedDependencyStore:
    """Fixed-capacity cross-process cache of per-source dependency vectors.

    Parameters
    ----------
    num_vertices:
        ``n`` — the CSR vertex count of the graph the vectors belong to.
        Keys of :meth:`get` / :meth:`put` are CSR source indices in
        ``[0, n)`` and every cached vector is a dense ``float64`` array of
        this length (the store is CSR-only by construction; the dict
        backend's vertex-keyed dicts have no fixed-width row to share).
    capacity:
        Number of arena rows — the most vectors the store can ever hold.
        Sizing it at ``min(n, total proposals + chains)`` makes overflow
        impossible for a known budget; a smaller arena stays correct and
        simply stops absorbing new vectors once full.

    context:
        Optional :mod:`multiprocessing` context the guarding lock is created
        in.  It must match the start method of the processes the store is
        shipped to (Python refuses to move a fork-context lock into a
        spawn-context process); the default — the interpreter's default
        context — is what :func:`repro.execution.scheduler.run_sharded`
        pools use, so drivers never need to pass it.  Callers that
        configure the pool start method through
        :attr:`repro.execution.plan.ExecutionPlan.mp_context` pass the same
        resolved context here.
    lock:
        Optional pre-existing process-shared lock to guard the arena with
        instead of creating a fresh one.  The persistent runtime
        (:mod:`repro.execution.runtime`) owns exactly one lock per
        :class:`~repro.execution.runtime.ExecutionContext` and shares it
        between its worker pool and its arena, so store handles can travel
        to long-lived workers by segment name with the lock substituted on
        arrival rather than pickled (a process-shared lock may only cross
        at worker setup).

    The creating process owns the segment: it must call :meth:`destroy`
    (or :meth:`close` + :meth:`unlink`) when the run is over.  Workers that
    attach through pickling only ever :meth:`close`.
    """

    def __init__(
        self, num_vertices: int, capacity: int, *, context=None, lock=None
    ) -> None:
        if np is None or _shared_memory is None:
            raise ConfigurationError(
                "SharedDependencyStore requires numpy and multiprocessing.shared_memory"
            )
        if not isinstance(num_vertices, int) or num_vertices < 1:
            raise ConfigurationError(
                f"num_vertices must be a positive integer, got {num_vertices!r}"
            )
        if not isinstance(capacity, int) or capacity < 1:
            raise ConfigurationError(
                f"capacity must be a positive integer, got {capacity!r}"
            )
        self.num_vertices = num_vertices
        self.capacity = capacity
        if lock is not None:
            self._lock = lock
        else:
            self._lock = (context if context is not None else multiprocessing).Lock()
        self._owner = True
        self._shm = _shared_memory.SharedMemory(create=True, size=self._nbytes())
        self._map_views()
        self._meta[0] = 0
        self._meta[1] = 0
        self._slots[:] = -1

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _nbytes(self) -> int:
        header = 8 * (_HEADER_SLOTS + self.num_vertices)
        return header + 8 * self.capacity * self.num_vertices

    def _map_views(self) -> None:
        buf = self._shm.buf
        self._meta = np.ndarray((_HEADER_SLOTS,), dtype=np.int64, buffer=buf)
        self._slots = np.ndarray(
            (self.num_vertices,), dtype=np.int64, buffer=buf, offset=8 * _HEADER_SLOTS
        )
        self._arena = np.ndarray(
            (self.capacity, self.num_vertices),
            dtype=np.float64,
            buffer=buf,
            offset=8 * (_HEADER_SLOTS + self.num_vertices),
        )

    # ------------------------------------------------------------------
    # Pickling: workers re-attach by segment name (spawn); under fork the
    # object is inherited without passing through here.
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {
            "num_vertices": self.num_vertices,
            "capacity": self.capacity,
            "name": self._shm.name,
            "lock": self._lock,
        }

    def __setstate__(self, state) -> None:
        self.num_vertices = state["num_vertices"]
        self.capacity = state["capacity"]
        self._lock = state["lock"]
        self._owner = False
        self._shm = _attach(state["name"])
        self._map_views()

    # ------------------------------------------------------------------
    # Cache protocol
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The shared-memory segment name (attach key)."""
        return self._shm.name

    def get(self, index: int):
        """Return a private copy of the cached vector of CSR source *index*.

        ``None`` on a miss.  The copy decouples the caller from the
        segment's lifetime — the returned array stays valid after the run's
        owner unlinks the arena.
        """
        with self._lock:
            slot = int(self._slots[index])
            if slot < 0:
                return None
            return self._arena[slot].copy()

    def contains(self, index: int) -> bool:
        """Return whether source *index* is published (no row copy)."""
        with self._lock:
            return bool(self._slots[index] >= 0)

    def put(self, index: int, vector) -> bool:
        """Publish *vector* as the dependency row of CSR source *index*.

        Returns whether the vector is available in the store after the call:
        ``True`` when this call claimed a row **or** another worker already
        published the source (the race loser's vector is bit-identical, so
        dropping it loses nothing); ``False`` when the arena is full — the
        caller keeps the vector in its private cache and the run proceeds on
        the private path for this source.

        The row copy happens under the lock: it is a ~``8n``-byte memcpy,
        negligible next to the Brandes pass that produced the vector, and it
        keeps the protocol two-state (absent / published) with no
        half-written rows for readers to worry about.
        """
        with self._lock:
            if self._slots[index] >= 0:
                return True
            slot = int(self._meta[0])
            if slot >= self.capacity:
                return False
            self._arena[slot, :] = vector
            self._slots[index] = slot
            self._meta[0] = slot + 1
            return True

    def invalidate_sources(self, indices) -> int:
        """Tombstone the rows of the given CSR source *indices*; return evicted count.

        The delta-scoped eviction primitive: a mutation's affected-source
        region maps to claim-table entries reset to ``-1`` under the lock,
        so every process sees the rows disappear atomically — eviction
        stays a broadcast, exactly like publication, with no per-reader
        coherence protocol.  The arena space of a tombstoned row stays
        spent (a re-publish of the source claims a fresh row) until
        :meth:`compact` reclaims it; without compaction, sustained
        eviction would monotonically exhaust the arena even while
        :meth:`published` stays small.
        """
        with self._lock:
            evicted = 0
            for index in indices:
                if self._slots[index] >= 0:
                    self._slots[index] = -1
                    evicted += 1
            self._meta[1] += evicted
            return evicted

    def compact(self) -> int:
        """Reclaim the arena space of tombstoned rows; return rows reclaimed.

        Live rows are moved down over the tombstoned gaps (ascending row
        order, so no live row is overwritten before it has moved) and the
        claim table is rewritten to the new positions — all under the
        process-shared lock, so the relocation is one atomic broadcast:
        every reader copies rows under the same lock and can never observe
        a half-moved arena.  Rows therefore stay write-once *between*
        compactions; a compaction is a new epoch that every attached
        process enters together.  Without this, a long-running delta-mode
        session would grind the write-once arena down to permanently
        "full" (tombstones spend capacity that eviction never returns).
        """
        with self._lock:
            tombstoned = int(self._meta[1])
            if tombstoned == 0:
                return 0
            live = np.flatnonzero(self._slots >= 0)
            order = np.argsort(self._slots[live], kind="stable")
            dest = 0
            for source in live[order]:
                row = int(self._slots[source])
                if row != dest:
                    self._arena[dest, :] = self._arena[row]
                    self._slots[source] = dest
                dest += 1
            self._meta[0] = dest
            self._meta[1] = 0
            return tombstoned

    def published(self) -> int:
        """Return the number of vectors currently published (live rows)."""
        with self._lock:
            return int(self._meta[0]) - int(self._meta[1])

    def tombstoned(self) -> int:
        """Return the number of rows spent by delta-scoped eviction."""
        with self._lock:
            return int(self._meta[1])

    def stats(self) -> dict:
        """Return ``{capacity, published, tombstoned, full}`` for diagnostics stamps."""
        with self._lock:
            claimed = int(self._meta[0])
            tombstoned = int(self._meta[1])
        return {
            "capacity": self.capacity,
            "published": claimed - tombstoned,
            "tombstoned": tombstoned,
            "full": claimed >= self.capacity,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (the numpy views die with it)."""
        self._meta = self._slots = self._arena = None
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system (owner only; call after close)."""
        if self._owner:
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover - already gone
                pass

    def destroy(self) -> None:
        """Close and (when owner) unlink — the one call a driver's ``finally`` needs."""
        try:
            self.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass
        self.unlink()


def create_shared_store(
    num_vertices: int, capacity: int, *, context=None, lock=None
) -> Optional[SharedDependencyStore]:
    """Build a :class:`SharedDependencyStore`, or ``None`` where unsupported.

    The graceful-fallback factory the multi-chain drivers use: on platforms
    without working shared memory (or without numpy) it warns once and
    returns ``None``, and the caller runs with private per-worker caches —
    exactly the pre-shared-cache behaviour, just slower.  *context* / *lock*
    are forwarded to the constructor (see there).
    """
    if np is None or _shared_memory is None:
        warnings.warn(
            "shared dependency cache unavailable (numpy or "
            "multiprocessing.shared_memory missing); falling back to private "
            "per-worker caches",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    try:
        return SharedDependencyStore(num_vertices, capacity, context=context, lock=lock)
    except (OSError, PermissionError) as exc:  # pragma: no cover - platform dependent
        warnings.warn(
            f"could not allocate the shared dependency arena ({exc}); falling "
            "back to private per-worker caches",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
