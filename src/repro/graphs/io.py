"""Graph serialisation: edge lists, adjacency lists and JSON.

These formats cover the common ways betweenness benchmarks distribute
graphs (SNAP-style edge lists, adjacency dumps) so a user can drop in a real
trace when one is available, even though the offline reproduction ships only
synthetic datasets.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, TextIO, Union

from repro.errors import GraphError
from repro.graphs.core import Graph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "parse_edge_list",
    "format_edge_list",
    "to_dict",
    "from_dict",
    "write_json",
    "read_json",
    "to_networkx",
    "from_networkx",
]

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Edge lists
# ----------------------------------------------------------------------
def format_edge_list(graph: Graph, *, with_weights: Optional[bool] = None) -> str:
    """Return the graph as edge-list text, one ``u v [w]`` line per edge."""
    if with_weights is None:
        with_weights = graph.weighted
    lines: List[str] = []
    for u, v, w in graph.edges(data=True):
        if with_weights:
            lines.append(f"{u} {v} {w:g}")
        else:
            lines.append(f"{u} {v}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_edge_list(graph: Graph, path: PathLike, *, with_weights: Optional[bool] = None) -> None:
    """Write *graph* to *path* in edge-list format."""
    Path(path).write_text(format_edge_list(graph, with_weights=with_weights), encoding="utf-8")


def parse_edge_list(
    lines: Iterable[str],
    *,
    directed: bool = False,
    weighted: bool = False,
    comment: str = "#",
    vertex_type: type = int,
) -> Graph:
    """Parse an iterable of edge-list *lines* into a :class:`Graph`.

    Lines starting with *comment* and blank lines are skipped.  Each data
    line must contain two vertex tokens and, for weighted graphs, an optional
    third weight token (missing weights default to 1).
    """
    graph = Graph(directed=directed, weighted=weighted)
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(comment):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphError(f"line {lineno}: expected at least two tokens, got {line!r}")
        try:
            u = vertex_type(parts[0])
            v = vertex_type(parts[1])
        except ValueError as exc:
            raise GraphError(f"line {lineno}: cannot parse vertices from {line!r}") from exc
        weight = 1.0
        if weighted and len(parts) >= 3:
            try:
                weight = float(parts[2])
            except ValueError as exc:
                raise GraphError(f"line {lineno}: cannot parse weight from {line!r}") from exc
        if u == v:
            # Real-world edge lists often contain self-loops; the paper's
            # model is loop-free, so they are silently dropped on ingest.
            continue
        graph.add_edge(u, v, weight)
    return graph


def read_edge_list(
    path: PathLike,
    *,
    directed: bool = False,
    weighted: bool = False,
    comment: str = "#",
    vertex_type: type = int,
) -> Graph:
    """Read an edge-list file from *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_edge_list(
            handle, directed=directed, weighted=weighted, comment=comment, vertex_type=vertex_type
        )


# ----------------------------------------------------------------------
# JSON / dict round trip
# ----------------------------------------------------------------------
def to_dict(graph: Graph) -> dict:
    """Return a JSON-serialisable dictionary describing *graph*."""
    return {
        "directed": graph.directed,
        "weighted": graph.weighted,
        "vertices": list(graph.vertices()),
        "edges": [[u, v, w] for u, v, w in graph.edges(data=True)],
    }


def from_dict(data: dict) -> Graph:
    """Rebuild a :class:`Graph` from :func:`to_dict` output."""
    try:
        graph = Graph(directed=bool(data["directed"]), weighted=bool(data["weighted"]))
        graph.add_vertices_from(data["vertices"])
        for u, v, w in data["edges"]:
            graph.add_edge(u, v, w)
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"malformed graph dictionary: {exc}") from exc
    return graph


def write_json(graph: Graph, path: PathLike) -> None:
    """Write *graph* to *path* as JSON."""
    Path(path).write_text(json.dumps(to_dict(graph)), encoding="utf-8")


def read_json(path: PathLike) -> Graph:
    """Read a JSON graph written by :func:`write_json`."""
    return from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# networkx interoperability (optional, used by tests as an oracle)
# ----------------------------------------------------------------------
def to_networkx(graph: Graph):
    """Convert to a :mod:`networkx` graph (requires networkx to be installed)."""
    import networkx as nx  # imported lazily: networkx is an optional dependency

    nx_graph = nx.DiGraph() if graph.directed else nx.Graph()
    nx_graph.add_nodes_from(graph.vertices())
    for u, v, w in graph.edges(data=True):
        nx_graph.add_edge(u, v, weight=w)
    return nx_graph


def from_networkx(nx_graph, *, weighted: bool = False) -> Graph:
    """Convert a :mod:`networkx` graph into a :class:`Graph`."""
    directed = bool(nx_graph.is_directed())
    graph = Graph(directed=directed, weighted=weighted)
    graph.add_vertices_from(nx_graph.nodes())
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            continue
        weight = float(data.get("weight", 1.0)) if weighted else 1.0
        graph.add_edge(u, v, weight)
    return graph
