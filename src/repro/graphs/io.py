"""Graph serialisation: edge lists, adjacency lists and JSON.

These formats cover the common ways betweenness benchmarks distribute
graphs (SNAP-style edge lists, adjacency dumps) so a user can drop in a real
trace when one is available, even though the offline reproduction ships only
synthetic datasets.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Union

from repro.errors import ConfigurationError, GraphError, NegativeWeightError
from repro.graphs.core import Graph
from repro.graphs.csr import CSRGraph, np

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "parse_edge_list",
    "format_edge_list",
    "read_edge_list_csr",
    "parse_edge_list_csr",
    "to_dict",
    "from_dict",
    "write_json",
    "read_json",
    "to_networkx",
    "from_networkx",
]

PathLike = Union[str, Path]

#: Lines buffered per write in :func:`write_edge_list` and edges buffered
#: per numpy flush in :func:`parse_edge_list_csr` — the unit of "O(chunk)
#: memory" for streaming import/export.
EDGE_LIST_CHUNK = 1 << 16


# ----------------------------------------------------------------------
# Edge lists
# ----------------------------------------------------------------------
def _edge_list_lines(graph: Graph, with_weights: bool) -> Iterator[str]:
    """Yield the edge-list lines of *graph* one at a time (no trailing newline)."""
    if with_weights:
        for u, v, w in graph.edges(data=True):
            yield f"{u} {v} {w:g}"
    else:
        for u, v in graph.edges():
            yield f"{u} {v}"


def format_edge_list(graph: Graph, *, with_weights: Optional[bool] = None) -> str:
    """Return the graph as edge-list text, one ``u v [w]`` line per edge."""
    if with_weights is None:
        with_weights = graph.weighted
    lines = list(_edge_list_lines(graph, with_weights))
    return "\n".join(lines) + ("\n" if lines else "")


def write_edge_list(graph: Graph, path: PathLike, *, with_weights: Optional[bool] = None) -> None:
    """Write *graph* to *path* in edge-list format.

    Lines are streamed to the file handle in batches of
    :data:`EDGE_LIST_CHUNK`, so exporting a multi-million-edge graph costs
    O(chunk) memory instead of materialising the whole file as one string.
    The bytes written are identical to :func:`format_edge_list` output.
    """
    if with_weights is None:
        with_weights = graph.weighted
    with open(path, "w", encoding="utf-8") as handle:
        batch: List[str] = []
        for line in _edge_list_lines(graph, with_weights):
            batch.append(line)
            if len(batch) >= EDGE_LIST_CHUNK:
                handle.write("\n".join(batch) + "\n")
                batch.clear()
        if batch:
            handle.write("\n".join(batch) + "\n")


def parse_edge_list(
    lines: Iterable[str],
    *,
    directed: bool = False,
    weighted: bool = False,
    comment: str = "#",
    vertex_type: type = int,
) -> Graph:
    """Parse an iterable of edge-list *lines* into a :class:`Graph`.

    Lines starting with *comment* and blank lines are skipped.  Each data
    line must contain two vertex tokens and, for weighted graphs, an optional
    third weight token (missing weights default to 1).
    """
    graph = Graph(directed=directed, weighted=weighted)
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(comment):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphError(f"line {lineno}: expected at least two tokens, got {line!r}")
        try:
            u = vertex_type(parts[0])
            v = vertex_type(parts[1])
        except ValueError as exc:
            raise GraphError(f"line {lineno}: cannot parse vertices from {line!r}") from exc
        if u == v:
            # Real-world edge lists often contain self-loops; the paper's
            # model is loop-free, so they are silently dropped on ingest —
            # before the weight token is even looked at, so a malformed
            # weight on a skipped line cannot raise.
            continue
        weight = 1.0
        if weighted and len(parts) >= 3:
            try:
                weight = float(parts[2])
            except ValueError as exc:
                raise GraphError(f"line {lineno}: cannot parse weight from {line!r}") from exc
        graph.add_edge(u, v, weight)
    return graph


def read_edge_list(
    path: PathLike,
    *,
    directed: bool = False,
    weighted: bool = False,
    comment: str = "#",
    vertex_type: type = int,
) -> Graph:
    """Read an edge-list file from *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_edge_list(
            handle, directed=directed, weighted=weighted, comment=comment, vertex_type=vertex_type
        )


def parse_edge_list_csr(
    lines: Iterable[str],
    *,
    directed: bool = False,
    weighted: bool = False,
    comment: str = "#",
    vertex_type: type = int,
    chunk_edges: int = EDGE_LIST_CHUNK,
) -> CSRGraph:
    """Parse edge-list *lines* straight into a :class:`CSRGraph`.

    The streaming twin of ``parse_edge_list(...).csr()`` for SNAP-scale
    files: instead of materialising a dict-of-dicts :class:`Graph` (two
    Python dict entries per edge) and converting, tokens are parsed into
    flat index/weight buffers flushed to numpy arrays every *chunk_edges*
    edges, and the CSR arrays are assembled in vectorised passes —
    duplicate collapse, adjacency ordering and ``indptr`` construction all
    happen in numpy.  Peak overhead beyond the output arrays is O(chunk) +
    one label-interning dict of size ``n``.

    Semantics match :func:`parse_edge_list` exactly — comment/blank
    skipping, self-loops dropped before the weight token is inspected,
    per-line error reporting, last-duplicate-wins weights — and the
    resulting arrays are byte-identical to what the dict route's
    ``graph.csr()`` would build, including vertex first-appearance order.
    """
    if np is None:
        raise ConfigurationError(
            "parsing straight to CSR requires numpy, which is not installed; "
            "use parse_edge_list() for the pure-Python route"
        )
    index: Dict[object, int] = {}
    src_parts: List = []
    dst_parts: List = []
    w_parts: List = []
    srcs: List[int] = []
    dsts: List[int] = []
    ws: List[float] = []

    def flush() -> None:
        src_parts.append(np.asarray(srcs, dtype=np.int64))
        dst_parts.append(np.asarray(dsts, dtype=np.int64))
        w_parts.append(np.asarray(ws, dtype=np.float64))
        srcs.clear()
        dsts.clear()
        ws.clear()

    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(comment):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphError(f"line {lineno}: expected at least two tokens, got {line!r}")
        try:
            u = vertex_type(parts[0])
            v = vertex_type(parts[1])
        except ValueError as exc:
            raise GraphError(f"line {lineno}: cannot parse vertices from {line!r}") from exc
        if u == v:
            continue
        weight = 1.0
        if weighted and len(parts) >= 3:
            try:
                weight = float(parts[2])
            except ValueError as exc:
                raise GraphError(f"line {lineno}: cannot parse weight from {line!r}") from exc
        if weighted and weight <= 0.0:
            raise NegativeWeightError(u, v, weight)
        iu = index.get(u)
        if iu is None:
            iu = index[u] = len(index)
        iv = index.get(v)
        if iv is None:
            iv = index[v] = len(index)
        srcs.append(iu)
        dsts.append(iv)
        ws.append(weight)
        if len(srcs) >= chunk_edges:
            flush()
    flush()

    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    w = np.concatenate(w_parts)
    n = len(index)
    vertices = list(index)

    if not directed:
        # Each undirected input edge is two arcs, interleaved in the order
        # Graph.add_edge inserts them (u->v then v->u) so first-appearance
        # positions match the dict route.
        arc_src = np.empty(2 * src.shape[0], dtype=np.int64)
        arc_dst = np.empty_like(arc_src)
        arc_w = np.empty(2 * src.shape[0], dtype=np.float64)
        arc_src[0::2] = src
        arc_src[1::2] = dst
        arc_dst[0::2] = dst
        arc_dst[1::2] = src
        arc_w[0::2] = w
        arc_w[1::2] = w
    else:
        arc_src, arc_dst, arc_w = src, dst, w

    indptr = np.zeros(n + 1, dtype=np.int64)
    if arc_src.shape[0] == 0:
        return CSRGraph(
            indptr,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            vertices,
            directed=directed,
            weighted=weighted,
        )

    # Collapse duplicate arcs: the dict adjacency keeps an arc at its
    # *first* insertion position with its *last* assigned weight.
    seq = np.arange(arc_src.shape[0], dtype=np.int64)
    key = arc_src * np.int64(n) + arc_dst
    order = np.lexsort((seq, key))
    sorted_key = key[order]
    first_mask = np.empty(sorted_key.shape[0], dtype=bool)
    first_mask[0] = True
    np.not_equal(sorted_key[1:], sorted_key[:-1], out=first_mask[1:])
    last_mask = np.empty_like(first_mask)
    last_mask[-1] = True
    np.not_equal(sorted_key[1:], sorted_key[:-1], out=last_mask[:-1])
    first_idx = order[first_mask]
    last_idx = order[last_mask]

    row_src = arc_src[first_idx]
    row_dst = arc_dst[first_idx]
    row_w = arc_w[last_idx]
    row_seq = seq[first_idx]

    # Rows grouped by source, arcs within a row in first-insertion order —
    # exactly the dict backend's neighbour iteration order.
    final = np.lexsort((row_seq, row_src))
    flat_indices = np.ascontiguousarray(row_dst[final])
    flat_weights = np.ascontiguousarray(row_w[final])
    np.cumsum(np.bincount(row_src, minlength=n), out=indptr[1:])
    return CSRGraph(
        indptr,
        flat_indices,
        flat_weights,
        vertices,
        directed=directed,
        weighted=weighted,
    )


def read_edge_list_csr(
    path: PathLike,
    *,
    directed: bool = False,
    weighted: bool = False,
    comment: str = "#",
    vertex_type: type = int,
    chunk_edges: int = EDGE_LIST_CHUNK,
) -> CSRGraph:
    """Read an edge-list file straight into a :class:`CSRGraph`.

    See :func:`parse_edge_list_csr` for semantics; equivalent to (but much
    lighter than) ``read_edge_list(path, ...).csr()`` on large files.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return parse_edge_list_csr(
            handle,
            directed=directed,
            weighted=weighted,
            comment=comment,
            vertex_type=vertex_type,
            chunk_edges=chunk_edges,
        )


# ----------------------------------------------------------------------
# JSON / dict round trip
# ----------------------------------------------------------------------
def to_dict(graph: Graph) -> dict:
    """Return a JSON-serialisable dictionary describing *graph*."""
    return {
        "directed": graph.directed,
        "weighted": graph.weighted,
        "vertices": list(graph.vertices()),
        "edges": [[u, v, w] for u, v, w in graph.edges(data=True)],
    }


def from_dict(data: dict) -> Graph:
    """Rebuild a :class:`Graph` from :func:`to_dict` output."""
    try:
        graph = Graph(directed=bool(data["directed"]), weighted=bool(data["weighted"]))
        graph.add_vertices_from(data["vertices"])
        for u, v, w in data["edges"]:
            graph.add_edge(u, v, w)
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"malformed graph dictionary: {exc}") from exc
    return graph


def write_json(graph: Graph, path: PathLike) -> None:
    """Write *graph* to *path* as JSON."""
    Path(path).write_text(json.dumps(to_dict(graph)), encoding="utf-8")


def read_json(path: PathLike) -> Graph:
    """Read a JSON graph written by :func:`write_json`."""
    return from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# networkx interoperability (optional, used by tests as an oracle)
# ----------------------------------------------------------------------
def to_networkx(graph: Graph):
    """Convert to a :mod:`networkx` graph (requires networkx to be installed)."""
    import networkx as nx  # imported lazily: networkx is an optional dependency

    nx_graph = nx.DiGraph() if graph.directed else nx.Graph()
    nx_graph.add_nodes_from(graph.vertices())
    for u, v, w in graph.edges(data=True):
        nx_graph.add_edge(u, v, weight=w)
    return nx_graph


def from_networkx(nx_graph, *, weighted: bool = False) -> Graph:
    """Convert a :mod:`networkx` graph into a :class:`Graph`."""
    directed = bool(nx_graph.is_directed())
    graph = Graph(directed=directed, weighted=weighted)
    graph.add_vertices_from(nx_graph.nodes())
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            continue
        weight = float(data.get("weight", 1.0)) if weighted else 1.0
        graph.add_edge(u, v, weight)
    return graph
