"""Connected-component utilities.

These back two parts of the reproduction:

* the precondition check of the paper (Section 2 assumes connected graphs);
* Theorem 2, which reasons about the connected components of ``G \\ r`` and
  characterises when the constant :math:`\\mu(r)` exists — the benchmark E4
  uses :func:`components_without_vertex` and :func:`is_balanced_separator`
  directly.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from repro.errors import VertexNotFoundError
from repro.graphs.core import Graph, Vertex

__all__ = [
    "connected_components",
    "is_connected",
    "largest_connected_component",
    "component_of",
    "components_without_vertex",
    "is_vertex_separator",
    "is_balanced_separator",
]


def connected_components(graph: Graph) -> List[Set[Vertex]]:
    """Return the connected components of *graph* as a list of vertex sets.

    For directed graphs this computes *weakly* connected components (edge
    directions are ignored), which is the notion needed by the algorithms in
    this library.
    """
    seen: Set[Vertex] = set()
    components: List[Set[Vertex]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        component = _bfs_component(graph, start)
        seen.update(component)
        components.append(component)
    return components


def _bfs_component(graph: Graph, start: Vertex) -> Set[Vertex]:
    """Return the set of vertices reachable from *start* ignoring direction."""
    component = {start}
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in component:
                component.add(v)
                queue.append(v)
        if graph.directed:
            for v in graph.predecessors(u):
                if v not in component:
                    component.add(v)
                    queue.append(v)
    return component


def is_connected(graph: Graph) -> bool:
    """Return ``True`` if *graph* is (weakly) connected and non-empty."""
    n = graph.number_of_vertices()
    if n == 0:
        return False
    start = next(iter(graph))
    return len(_bfs_component(graph, start)) == n


def largest_connected_component(graph: Graph) -> Graph:
    """Return the induced subgraph on the largest connected component.

    The dataset builders use this to guarantee the connectivity assumption of
    the paper after random generation.
    """
    components = connected_components(graph)
    if not components:
        return graph.copy()
    largest = max(components, key=len)
    return graph.subgraph(largest)


def component_of(graph: Graph, vertex: Vertex) -> Set[Vertex]:
    """Return the vertex set of the component containing *vertex*."""
    graph.validate_vertex(vertex)
    return _bfs_component(graph, vertex)


def components_without_vertex(graph: Graph, vertex: Vertex) -> List[Set[Vertex]]:
    """Return the connected components of ``G \\ vertex``.

    This is the set :math:`C = \\{C_1, \\dots, C_l\\}` used by Theorem 2.
    """
    if not graph.has_vertex(vertex):
        raise VertexNotFoundError(vertex)
    reduced = graph.without_vertex(vertex)
    return connected_components(reduced)


def is_vertex_separator(graph: Graph, vertex: Vertex) -> bool:
    """Return ``True`` if *vertex* is a vertex separator of *graph*.

    Following the paper: *x* is a separator if ``G \\ x`` has at least two
    components (there exist vertices in distinct components), or if
    ``G \\ x`` contains fewer than two vertices.
    """
    components = components_without_vertex(graph, vertex)
    total = sum(len(c) for c in components)
    if total < 2:
        return True
    return len(components) >= 2


def is_balanced_separator(
    graph: Graph, vertex: Vertex, fraction: float = 0.1
) -> bool:
    """Return ``True`` if *vertex* is a *balanced* vertex separator.

    The paper calls a separator balanced when at least two components of
    ``G \\ x`` contain :math:`\\Theta(|V(G)|)` vertices.  Asymptotic notation
    cannot be checked on a single finite graph, so *fraction* operationalises
    it: a component "counts" when it holds at least ``fraction * |V(G)|``
    vertices.  The default of 10% matches the examples in the paper (barbell
    bridges, star centres, community connectors).
    """
    if not 0.0 < fraction <= 0.5:
        raise ValueError("fraction must be in (0, 0.5]")
    n = graph.number_of_vertices()
    threshold = fraction * n
    components = components_without_vertex(graph, vertex)
    big = sum(1 for c in components if len(c) >= threshold)
    return big >= 2


def component_size_profile(graph: Graph, vertex: Vertex) -> Dict[str, float]:
    """Summarise the component structure of ``G \\ vertex``.

    Returns a dictionary with the number of components, the largest and
    second-largest component sizes and the fraction of vertices outside the
    largest component.  Benchmark E4 reports this next to the measured
    :math:`\\mu(r)` so the reader can see how separator balance drives the
    sample-size bound.
    """
    components = components_without_vertex(graph, vertex)
    sizes = sorted((len(c) for c in components), reverse=True)
    n_removed = graph.number_of_vertices() - 1
    largest = sizes[0] if sizes else 0
    second = sizes[1] if len(sizes) > 1 else 0
    outside = (n_removed - largest) / n_removed if n_removed > 0 else 0.0
    return {
        "num_components": float(len(sizes)),
        "largest": float(largest),
        "second_largest": float(second),
        "fraction_outside_largest": outside,
    }


__all__.append("component_size_profile")
