"""Compressed-sparse-row (CSR) view of a :class:`~repro.graphs.core.Graph`.

Every estimator in this library pays one shortest-path-DAG construction per
sample (Section 2.1 of the paper), so the traversal substrate dominates the
runtime.  The dict-of-dicts adjacency of :class:`Graph` is convenient for
mutation and for hashable vertex labels, but it is the wrong shape for a hot
loop: every edge visit pays a hash lookup and the working set is scattered
across the heap.  :class:`CSRGraph` is the standard flat-array alternative —
the whole adjacency packed into three numpy arrays — on top of which the
``*_csr`` kernels in :mod:`repro.shortest_paths` run level-synchronous,
vectorised traversals.

Immutability / invalidation contract
------------------------------------
A :class:`CSRGraph` is an **immutable snapshot**: it never observes later
mutations of the :class:`Graph` it was built from.  The canonical way to
obtain one is ``graph.csr()``, which caches the view on the graph and
*invalidates* the cache on every mutating operation (``add_vertex``,
``add_edge``, ``remove_edge``, ``remove_vertex``).  Holding on to a
:class:`CSRGraph` across a mutation is safe — the arrays still describe the
old snapshot — but a fresh ``graph.csr()`` call is needed to see the new
structure.  Algorithms therefore take the snapshot once at their entry point
and index into it for their whole run.

Vertex ↔ index mapping
----------------------
Vertices keep their arbitrary hashable labels at the API boundary; inside the
kernels they are dense integers ``0..n-1`` in **insertion order** (the same
order as ``graph.vertices()``).  The bidirectional mapper —
:meth:`CSRGraph.index_of` and :meth:`CSRGraph.vertex_at` — is how results
cross the boundary back to vertex-keyed dictionaries.  Keeping insertion
order means that index-based random draws consume the *same* rng stream as
label-based draws from ``graph.vertices()``, which is what makes the dict and
CSR backends produce identical estimates for a fixed seed.

numpy gating
------------
numpy is an optional dependency at import time: when it is missing this
module still imports (``np is None``) and :func:`resolve_backend` degrades
``"auto"`` to ``"dict"`` so the pure-Python code paths keep working.

Kernel rungs
------------
On top of the backend pair sits the ``kernel`` knob, resolved by
:func:`resolve_kernel` the same way :func:`resolve_backend` resolves
backends: the CSR code paths run either the numpy wave kernels
(``"csr"``) or their numba-compiled twins
(:mod:`repro.shortest_paths.compiled`, ``"compiled"``).  ``"auto"`` picks
the compiled rung exactly when numba is importable, the ``REPRO_KERNEL``
environment variable overrides it process-wide, and requesting
``"compiled"`` without numba warns and falls back to ``"csr"`` — the two
rungs are bit-identical, so the knob can never change a result.
"""

from __future__ import annotations

import importlib.util
import os
import warnings
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, VertexNotFoundError

try:  # pragma: no cover - exercised implicitly on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.core import Graph, Vertex

__all__ = [
    "CSRGraph",
    "BACKENDS",
    "KERNELS",
    "resolve_backend",
    "resolve_kernel",
    "compiled_kernels_available",
    "np",
]

#: The accepted backend names for every ``backend=`` knob in the library.
BACKENDS = ("auto", "dict", "csr")

#: The accepted kernel-rung names for every ``kernel=`` knob in the library.
KERNELS = ("auto", "csr", "compiled")

#: Memoized verdict of :func:`compiled_kernels_available` (``None`` =
#: not probed yet).  Module-level so the test-suite can monkeypatch the
#: availability either way regardless of what the host actually has.
_COMPILED_OK: Optional[bool] = None


def resolve_backend(backend: str) -> str:
    """Resolve a ``backend=`` argument to a concrete ``"dict"`` or ``"csr"``.

    ``"auto"`` picks ``"csr"`` whenever numpy is importable (the graph
    snapshot taken by ``graph.csr()`` is static by construction, see the
    module docstring) and falls back to ``"dict"`` otherwise.  Requesting
    ``"csr"`` explicitly without numpy raises :class:`ConfigurationError`.

    The ``REPRO_BACKEND`` environment variable (``"dict"`` or ``"csr"``)
    overrides what ``"auto"`` resolves to — a process-wide switch used by
    the benchmark harness so one env knob steers every ``backend="auto"``
    call site without threading a parameter through each of them.
    Explicit ``"dict"`` / ``"csr"`` arguments always win over the env var.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        override = os.environ.get("REPRO_BACKEND")
        if override:
            if override not in ("dict", "csr"):
                raise ConfigurationError(
                    f"REPRO_BACKEND must be 'dict' or 'csr', got {override!r}"
                )
            return resolve_backend(override)
        return "csr" if np is not None else "dict"
    if backend == "csr" and np is None:
        raise ConfigurationError("backend='csr' requires numpy, which is not installed")
    return backend


def compiled_kernels_available() -> bool:
    """Return whether the compiled kernel rung can actually run here.

    True exactly when numpy is importable (the kernels operate on CSR
    arrays) and :mod:`repro.shortest_paths.compiled` managed to import
    numba.  The verdict is probed once per process and memoized; the
    probe imports the compiled module lazily, so processes that never
    touch a kernel knob never pay the numba import.
    """
    global _COMPILED_OK
    if _COMPILED_OK is None:
        if np is None or importlib.util.find_spec("numba") is None:
            _COMPILED_OK = False
        else:
            from repro.shortest_paths.compiled import NUMBA_AVAILABLE

            _COMPILED_OK = bool(NUMBA_AVAILABLE)
    return _COMPILED_OK


def resolve_kernel(kernel: str = "auto") -> str:
    """Resolve a ``kernel=`` argument to a concrete ``"csr"`` or ``"compiled"``.

    The traversal-kernel twin of :func:`resolve_backend`: ``"auto"`` picks
    the numba-compiled rung (:mod:`repro.shortest_paths.compiled`)
    whenever numba is importable and quietly degrades to the numpy wave
    kernels otherwise.  The ``REPRO_KERNEL`` environment variable
    (``"csr"`` or ``"compiled"``) overrides what ``"auto"`` resolves to —
    one process-wide switch for every ``kernel="auto"`` call site, exactly
    like ``REPRO_BACKEND`` — and explicit arguments always win over it.

    Unlike ``backend="csr"`` without numpy (an error: the dict and CSR
    backends differ in last-ulp accumulation order, so silently swapping
    them would change results), requesting ``"compiled"`` without numba
    only **warns** and falls back to ``"csr"``: the two rungs are
    bit-identical by construction, so the fallback cannot change any
    result — only wall-clock.
    """
    if kernel not in KERNELS:
        raise ConfigurationError(
            f"unknown kernel {kernel!r}; expected one of {KERNELS}"
        )
    if kernel == "auto":
        override = os.environ.get("REPRO_KERNEL")
        if override:
            if override not in ("csr", "compiled"):
                raise ConfigurationError(
                    f"REPRO_KERNEL must be 'csr' or 'compiled', got {override!r}"
                )
            return resolve_kernel(override)
        return "compiled" if compiled_kernels_available() else "csr"
    if kernel == "compiled" and not compiled_kernels_available():
        warnings.warn(
            "kernel='compiled' requested but numba is not importable; "
            "falling back to the numpy CSR kernels (results are unchanged, "
            "install the 'compiled' extra for the speedup)",
            RuntimeWarning,
            stacklevel=2,
        )
        return "csr"
    return kernel


class CSRGraph:
    """Immutable flat-array snapshot of a :class:`Graph` (see module docstring).

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; the out-edges of vertex index
        ``i`` occupy ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        ``int64`` array of length ``m`` holding neighbour indices, in the
        same order the dict adjacency iterates them (so traversals visit
        edges in the same order on both backends).
    weights:
        ``float64`` array of length ``m`` with the matching edge weights
        (all ``1.0`` for unweighted graphs).
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "directed",
        "weighted",
        "_vertices",
        "_index_of",
        "_scipy_forward",
        "_scipy_backward",
        "_spmm_ok",
        "_dijkstra_adj",
    )

    def __init__(
        self,
        indptr,
        indices,
        weights,
        vertices: Sequence["Vertex"],
        *,
        directed: bool,
        weighted: bool,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.directed = bool(directed)
        self.weighted = bool(weighted)
        self._vertices: Tuple["Vertex", ...] = tuple(vertices)
        self._index_of: Dict["Vertex", int] = {v: i for i, v in enumerate(vertices)}
        self._scipy_forward = None
        self._scipy_backward = None
        # Lazily-computed verdict of repro.shortest_paths.batch on whether
        # the sparse-matmul sweep suits this snapshot (small depth).  Cached
        # here so the decision is a pure per-graph property — never a
        # function of batch composition, which would break the engine's
        # batch_size invariance.
        self._spmm_ok = None
        # Lazily-built list-of-(neighbour, weight) adjacency view for the
        # interpreter Dijkstra rung (repro.shortest_paths.dijkstra); one
        # build per snapshot, shared by every source.
        self._dijkstra_adj = None

    # ------------------------------------------------------------------
    def __getstate__(self):
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        # Per-process lazy caches are rebuilt on demand; shipping them to
        # worker processes would multiply the payload size for no benefit.
        state["_scipy_forward"] = None
        state["_scipy_backward"] = None
        state["_dijkstra_adj"] = None
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: "Graph") -> "CSRGraph":
        """Build a CSR snapshot of *graph* (vertex indices in insertion order)."""
        if np is None:
            raise ConfigurationError(
                "building a CSR view requires numpy, which is not installed"
            )
        vertices = graph.vertices()
        index = {v: i for i, v in enumerate(vertices)}
        n = len(vertices)
        # Preallocate from degree counts instead of growing Python lists and
        # converting at the end: one O(m) fill pass, no list reallocation
        # churn and no transient second copy of the edge arrays.  The
        # per-vertex fill visits neighbours in dict iteration order, so the
        # arrays are byte-identical to the appending builder's.
        indptr = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum([graph.degree(v) for v in vertices], out=indptr[1:])
        m = int(indptr[n]) if n else 0
        flat_indices = np.empty(m, dtype=np.int64)
        flat_weights = np.empty(m, dtype=np.float64)
        for i, v in enumerate(vertices):
            adj = graph.adjacency(v)
            if adj:
                start, stop = indptr[i], indptr[i + 1]
                flat_indices[start:stop] = [index[u] for u in adj]
                flat_weights[start:stop] = list(adj.values())
        return cls(
            indptr,
            flat_indices,
            flat_weights,
            vertices,
            directed=graph.directed,
            weighted=graph.weighted,
        )

    def patched(self, updates) -> "CSRGraph":
        """Return a new snapshot with the given weight-only *updates* applied.

        *updates* yields ``(u, v, weight)`` triples over existing edges
        (vertex labels, not indices).  The structure is untouched, so the
        returned snapshot **shares** this snapshot's ``indptr`` / ``indices``
        arrays and vertex mapping and only copies the O(m) weights array —
        the delta-scoped alternative to the full :meth:`from_graph` rebuild
        when a mutation journal shows nothing but weight changes.  Both
        directions of an undirected edge are patched.  The result is
        byte-identical to a fresh ``from_graph`` on the mutated graph
        (updating an existing adjacency key preserves dict order).

        Raises
        ------
        EdgeNotFoundError
            If an update names an edge absent from the snapshot.
        """
        from repro.errors import EdgeNotFoundError

        weights = self.weights.copy()
        for u, v, weight in updates:
            patched_any = False
            ui = self._index_of.get(u)
            vi = self._index_of.get(v)
            if ui is not None and vi is not None:
                start, stop = int(self.indptr[ui]), int(self.indptr[ui + 1])
                hits = np.nonzero(self.indices[start:stop] == vi)[0]
                if hits.size:
                    weights[start + hits] = float(weight)
                    patched_any = True
                if not self.directed:
                    start, stop = int(self.indptr[vi]), int(self.indptr[vi + 1])
                    back = np.nonzero(self.indices[start:stop] == ui)[0]
                    if back.size:
                        weights[start + back] = float(weight)
            if not patched_any:
                raise EdgeNotFoundError(u, v)
        clone = CSRGraph.__new__(CSRGraph)
        clone.indptr = self.indptr
        clone.indices = self.indices
        clone.weights = weights
        clone.directed = self.directed
        clone.weighted = self.weighted
        clone._vertices = self._vertices
        clone._index_of = self._index_of
        clone._scipy_forward = None
        clone._scipy_backward = None
        clone._spmm_ok = self._spmm_ok
        # The pair view caches weights, which this clone just changed.
        clone._dijkstra_adj = None
        return clone

    # ------------------------------------------------------------------
    # Sizes and mapping
    # ------------------------------------------------------------------
    def number_of_vertices(self) -> int:
        """Return ``|V|`` of the snapshot."""
        return len(self._vertices)

    def number_of_edges(self) -> int:
        """Return ``|E|`` (each undirected edge counted once)."""
        m = int(self.indices.shape[0])
        return m if self.directed else m // 2

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CSRGraph with {self.number_of_vertices()} vertices and "
            f"{self.number_of_edges()} edges>"
        )

    @property
    def vertices(self) -> Tuple["Vertex", ...]:
        """The vertex labels in index order (insertion order of the source graph)."""
        return self._vertices

    def index_of(self, vertex: "Vertex") -> int:
        """Return the dense index of *vertex* (raises :class:`VertexNotFoundError`)."""
        try:
            return self._index_of[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def find_index(self, vertex: "Vertex") -> Optional[int]:
        """Return the dense index of *vertex*, or ``None`` when absent.

        The lenient twin of :meth:`index_of`, for callers whose dict-backed
        contract treats unknown vertices as "no data" rather than an error.
        """
        return self._index_of.get(vertex)

    def vertex_at(self, index: int) -> "Vertex":
        """Return the vertex label stored at dense *index*."""
        return self._vertices[index]

    # ------------------------------------------------------------------
    # Structure queries (index space)
    # ------------------------------------------------------------------
    def degree_of(self, index: int) -> int:
        """Return the (out-)degree of the vertex at *index*."""
        return int(self.indptr[index + 1] - self.indptr[index])

    def degrees(self):
        """Return the ``int64`` array of (out-)degrees of all vertices."""
        return self.indptr[1:] - self.indptr[:-1]

    def neighbors_of(self, index: int):
        """Return the neighbour-index array of the vertex at *index* (a view)."""
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    def weights_of(self, index: int):
        """Return the edge-weight array matching :meth:`neighbors_of` (a view)."""
        return self.weights[self.indptr[index] : self.indptr[index + 1]]

    def array_to_vertex_map(self, values) -> Dict["Vertex", float]:
        """Convert a per-index array into a ``{vertex: value}`` dict (boundary helper)."""
        return {v: float(values[i]) for i, v in enumerate(self._vertices)}

    # ------------------------------------------------------------------
    # Optional scipy views (cached; the snapshot is immutable)
    # ------------------------------------------------------------------
    def scipy_adjacency(self, *, transpose: bool = False):
        """Return the cached ``scipy.sparse.csr_matrix`` view of the snapshot.

        With ``transpose=False`` rows are out-adjacencies (the orientation
        the Brandes back-propagation spreads along); ``transpose=True``
        yields in-adjacencies (what a forward BFS wave gathers over) — the
        two coincide for undirected graphs, so the transpose is only
        materialised for directed ones.  Used by the sparse-matmul fast path
        of :mod:`repro.shortest_paths.batch`; callers must gate on scipy
        being importable (it is an optional dependency, like numpy).
        """
        from scipy.sparse import csr_matrix

        if self._scipy_forward is None:
            n = self.number_of_vertices()
            self._scipy_forward = csr_matrix(
                (self.weights, self.indices, self.indptr), shape=(n, n)
            )
            self._scipy_backward = (
                self._scipy_forward.T.tocsr() if self.directed else self._scipy_forward
            )
        return self._scipy_backward if transpose else self._scipy_forward
